"""Shared-memory parallel six-step transforms: :class:`ThreadedSixStepProgram`.

The paper's parallel FT-FFTW distributes the classical six-step algorithm
(``N = p * q``: transpose, ``q`` ``p``-point FFTs, twiddle, transpose, ``p``
``q``-point FFTs, transpose) over MPI ranks.  This module is the
shared-memory analogue over the compiled executor: the same decomposition,
with the row-FFT, twiddle, transpose, and column-FFT phases executed as
*chunked batches* of the cached half-size :class:`~repro.fftlib.executor.
StageProgram` objects on the process-wide :mod:`~repro.runtime.pool`.

Phase structure for one ``n = m * k`` vector (``x2 = x.reshape(m, k)``):

* **phase A** (transpose 1 + FFT 1 + twiddle, fused per chunk): each worker
  takes a contiguous slice of the ``k`` columns, gathers them transposed
  into a contiguous ``(cols, m)`` block, runs the cached ``m``-point program
  over the block's last axis, multiplies by its slice of the
  ``omega_N^{j2 n2}`` twiddle table, and stores the block into the shared
  ``(k, m)`` intermediate;
* **barrier** (the transpose-2 analogue: phase B reads every phase-A row);
* **phase B** (FFT 2 + output transpose, fused per chunk): each worker takes
  a slice of the ``m`` intermediate columns, gathers them transposed into a
  contiguous ``(cols, k)`` block, runs the cached ``k``-point program, and
  scatters the block into natural output order.

Every heavy operation inside a chunk (``np.matmul`` combines, elementwise
twiddles) releases the GIL, so the chunks genuinely overlap on multicore
hosts; each worker computes on the executor's *thread-local* ping-pong
buffers, so no scratch memory is ever shared.

Determinism: the chunk layout depends only on ``(n, threads)`` - never on
the pool size or scheduling order - and chunks write disjoint slices, so a
threaded execution is bitwise identical to running the same chunks
sequentially (``parallel=False``), and repeated executions are bitwise
identical to each other.

Batched inputs parallelise over the *batch* axis instead (each worker runs
the vectorized six-step over its slice of rows), which is also what the
chunk-parallel protected batches of :class:`~repro.core.ftplan.FTPlan`
build on.

Sizes that cannot profit - primes (no balanced split), tiny transforms
(dispatch-bound), or a resolved thread count of 1 - fall back to the plain
serial :class:`StageProgram` so every size stays valid.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.executor import StageProgram, _cached_program, get_program
from repro.fftlib.twiddle import get_global_cache
from repro.runtime.pool import WorkerPool, get_pool, resolve_thread_count, split_ranges

__all__ = [
    "MIN_THREADED_SIZE",
    "ThreadedSixStepProgram",
    "threading_profitable",
    "get_threaded_program",
]

#: Below this size the per-chunk Python dispatch dominates the BLAS work and
#: threading cannot win; the planner and the program itself fall back to the
#: serial compiled program.
MIN_THREADED_SIZE = 1 << 12


def threading_profitable(n: int, threads: Optional[int]) -> bool:
    """Whether the six-step threaded lowering can beat the serial program.

    The ESTIMATE-mode heuristic: a resolved thread count above 1, a size
    large enough that chunk dispatch amortises, and a non-trivial balanced
    split (primes have none).  MEASURE-mode planners time the two lowerings
    instead of trusting this (see :meth:`repro.fftlib.planner.Planner.plan`).
    """

    n = int(n)
    if resolve_thread_count(threads) <= 1 or n < MIN_THREADED_SIZE:
        return False
    _, k = factorization.balanced_split(n)
    return k >= 2


class ThreadedSixStepProgram:
    """A compiled six-step transform whose phases run chunked on the pool.

    Immutable after construction and safe to share across threads, like
    :class:`StageProgram`; the ``threads`` parameter fixes the chunk layout
    (and is part of the program-cache key), while the executing pool is
    looked up per call.
    """

    __slots__ = (
        "n",
        "m",
        "k",
        "threads",
        "serial",
        "row_program",
        "col_program",
        "twiddle",
        "_col_ranges",
        "_mid_ranges",
    )

    def __init__(self, n: int, threads: Optional[int] = 0) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        self.threads = resolve_thread_count(threads)
        if not threading_profitable(self.n, self.threads):
            # Primes, tiny sizes, or a single thread: the serial compiled
            # program is the right tool and keeps every size valid.
            self.serial: Optional[StageProgram] = get_program(self.n)
            self.m, self.k = self.n, 1
            self.row_program = self.col_program = None
            self.twiddle = None
            self._col_ranges = self._mid_ranges = ()
            return
        self.serial = None
        self.m, self.k = factorization.balanced_split(self.n)
        self.row_program = get_program(self.m)
        self.col_program = get_program(self.k)
        # The (m, k) table omega_N^{j2 n2}, stored transposed (k, m) so the
        # phase-A blocks (rows indexed by n2) multiply a contiguous slice.
        self.twiddle = np.ascontiguousarray(get_global_cache().stage(self.m, self.k).T)
        self._col_ranges = split_ranges(self.k, self.threads)
        self._mid_ranges = split_ranges(self.m, self.threads)

    # ------------------------------------------------------------------
    def execute(
        self,
        x: np.ndarray,
        *,
        parallel: bool = True,
        pool: Optional[WorkerPool] = None,
    ) -> np.ndarray:
        """Forward DFT along the last axis of ``x`` (batched, out-of-place).

        ``parallel=False`` runs the identical chunk list sequentially on the
        calling thread - the bitwise reference for the threaded execution.
        """

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        n = self.n
        if x.shape[-1] != n:
            raise ValueError(
                f"program of size {n} applied to array with last axis {x.shape[-1]}"
            )
        if self.serial is not None:
            return self.serial.execute(x)
        shape = x.shape
        batch = x.size // n
        if batch == 0:
            # Empty batch: match the serial program (empty result, no work).
            return x.copy()
        xs = x.reshape(batch, n)
        if not xs.flags.c_contiguous:
            xs = np.ascontiguousarray(xs)
        runner = (pool or get_pool()) if parallel else None
        if batch > 1:
            out = np.empty((batch, n), dtype=np.complex128)
            tasks = [
                (lambda lo=lo, hi=hi: out.__setitem__(
                    slice(lo, hi), self._sixstep_batch(xs[lo:hi])
                ))
                for lo, hi in split_ranges(batch, self.threads)
            ]
            self._run(runner, tasks)
            return out.reshape(shape)
        out = np.empty(n, dtype=np.complex128)
        self._execute_single(xs[0], out, runner)
        return out.reshape(shape)

    # ------------------------------------------------------------------
    def _run(self, pool: Optional[WorkerPool], tasks) -> None:
        if pool is None:
            for task in tasks:
                task()
        else:
            pool.run_tasks(tasks)

    # ------------------------------------------------------------------
    def _execute_single(
        self, x: np.ndarray, out: np.ndarray, pool: Optional[WorkerPool]
    ) -> None:
        """The chunked six-step phases for one length-``n`` vector."""

        m, k = self.m, self.k
        work = x.reshape(m, k)
        mid = np.empty((k, m), dtype=np.complex128)

        def phase_a(lo: int, hi: int) -> None:
            # transpose 1 + FFT 1 + twiddle for columns [lo, hi)
            block = np.ascontiguousarray(work[:, lo:hi].T)
            block = self.row_program.execute(block)
            np.multiply(block, self.twiddle[lo:hi, :], out=mid[lo:hi, :])

        self._run(pool, [(lambda lo=lo, hi=hi: phase_a(lo, hi)) for lo, hi in self._col_ranges])

        out2 = out.reshape(k, m)

        def phase_b(lo: int, hi: int) -> None:
            # transpose 2 + FFT 2 + transpose 3 for intermediate columns [lo, hi)
            block = np.ascontiguousarray(mid[:, lo:hi].T)
            block = self.col_program.execute(block)
            out2[:, lo:hi] = block.T

        self._run(pool, [(lambda lo=lo, hi=hi: phase_b(lo, hi)) for lo, hi in self._mid_ranges])

    # ------------------------------------------------------------------
    def _sixstep_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized (unchunked) six-step over a ``(batch, n)`` slice.

        Used when the parallelism comes from the batch axis: each worker
        runs this whole pipeline over its own row slice.
        """

        b = rows.shape[0]
        m, k = self.m, self.k
        # (b, k, m): row n2 of each batch entry holds the stride-k subsequence
        blocks = np.ascontiguousarray(rows.reshape(b, m, k).transpose(0, 2, 1))
        inner = self.row_program.execute(blocks)
        inner *= self.twiddle[None, :, :]
        mid = np.ascontiguousarray(inner.transpose(0, 2, 1))  # (b, m, k)
        outer = self.col_program.execute(mid)
        return np.ascontiguousarray(outer.transpose(0, 2, 1)).reshape(b, self.n)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (decomposition, chunking, sub-programs)."""

        if self.serial is not None:
            return (
                f"ThreadedSixStep(n={self.n}, serial fallback -> "
                f"{self.serial.describe()})"
            )
        return (
            f"ThreadedSixStep(n={self.n} = {self.m} x {self.k}, "
            f"threads={self.threads}, row={self.row_program.describe()}, "
            f"col={self.col_program.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def get_threaded_program(n: int, threads: Optional[int] = 0):
    """The (cached) threaded six-step program for ``n`` and a thread count.

    Shares the executor's program LRU (keys are tagged with the resolved
    thread count, since the chunk layout is part of the program's identity).
    A resolved count of 1 returns the plain serial :func:`get_program`.
    """

    n = int(n)
    nthreads = resolve_thread_count(threads)
    if nthreads <= 1:
        return get_program(n)
    return _cached_program(
        ("sixstep", n, nthreads), lambda: ThreadedSixStepProgram(n, nthreads)
    )

"""Shared-memory parallel six-step transforms: :class:`ThreadedSixStepProgram`.

The paper's parallel FT-FFTW distributes the classical six-step algorithm
(``N = p * q``: transpose, ``q`` ``p``-point FFTs, twiddle, transpose, ``p``
``q``-point FFTs, transpose) over MPI ranks.  This module is the
shared-memory analogue over the compiled executor: the same decomposition,
with the row-FFT, twiddle, transpose, and column-FFT phases executed as
*chunked batches* of the cached half-size :class:`~repro.fftlib.executor.
StageProgram` objects on the process-wide :mod:`~repro.runtime.pool`.

Phase structure for one ``n = m * k`` vector (``x2 = x.reshape(m, k)``):

* **phase A** (transpose 1 + FFT 1 + twiddle, fused per chunk): each worker
  takes a contiguous slice of the ``k`` columns, gathers them transposed
  into a contiguous ``(cols, m)`` block, runs the cached ``m``-point program
  over the block's last axis, multiplies by its slice of the
  ``omega_N^{j2 n2}`` twiddle table, and stores the block into the shared
  ``(k, m)`` intermediate;
* **barrier** (the transpose-2 analogue: phase B reads every phase-A row);
* **phase B** (FFT 2 + output transpose, fused per chunk): each worker takes
  a slice of the ``m`` intermediate columns, gathers them transposed into a
  contiguous ``(cols, k)`` block, runs the cached ``k``-point program, and
  scatters the block into natural output order.

Every heavy operation inside a chunk (``np.matmul`` combines, elementwise
twiddles) releases the GIL, so the chunks genuinely overlap on multicore
hosts; each worker computes on the executor's *thread-local* ping-pong
buffers, so no scratch memory is ever shared.

Determinism: the chunk layout depends only on ``(n, threads)`` - never on
the pool size or scheduling order - and chunks write disjoint slices, so a
threaded execution is bitwise identical to running the same chunks
sequentially (``parallel=False``), and repeated executions are bitwise
identical to each other.

Batched inputs parallelise over the *batch* axis instead (each worker runs
the vectorized six-step over its slice of rows), which is also what the
chunk-parallel protected batches of :class:`~repro.core.ftplan.FTPlan`
build on.

Sizes that cannot profit - primes (no balanced split), tiny transforms
(dispatch-bound), or a resolved thread count of 1 - fall back to the plain
serial :class:`StageProgram` so every size stays valid.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.executor import (
    StageProgram,
    _cached_program,
    get_program,
    get_stockham_program,
    stockham_supported,
)
from repro.fftlib.twiddle import get_global_cache
from repro.runtime.pool import WorkerPool, get_pool, resolve_thread_count, split_ranges
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

__all__ = [
    "MIN_THREADED_SIZE",
    "ThreadedSixStepProgram",
    "threading_profitable",
    "get_threaded_program",
]

#: Below this size the per-chunk Python dispatch dominates the BLAS work and
#: threading cannot win; the planner and the program itself fall back to the
#: serial compiled program.
MIN_THREADED_SIZE = 1 << 12


def threading_profitable(n: int, threads: Optional[int]) -> bool:
    """Whether the six-step threaded lowering can beat the serial program.

    The ESTIMATE-mode heuristic: a resolved thread count above 1, a size
    large enough that chunk dispatch amortises, and a non-trivial balanced
    split (primes have none).  MEASURE-mode planners time the two lowerings
    instead of trusting this (see :meth:`repro.fftlib.planner.Planner.plan`).
    """

    n = int(n)
    if resolve_thread_count(threads) <= 1 or n < MIN_THREADED_SIZE:
        return False
    _, k = factorization.balanced_split(n)
    return k >= 2


class ThreadedSixStepProgram:
    """A compiled six-step transform whose phases run chunked on the pool.

    Immutable after construction and safe to share across threads, like
    :class:`StageProgram`; the ``threads`` parameter fixes the chunk layout
    (and is part of the program-cache key), while the executing pool is
    looked up per call.
    """

    __slots__ = (
        "n",
        "m",
        "k",
        "threads",
        "inplace",
        "native",
        "serial",
        "row_program",
        "col_program",
        "row_stockham",
        "col_stockham",
        "twiddle",
        "fallback_reason",
        "_col_ranges",
        "_mid_ranges",
    )

    def __init__(
        self,
        n: int,
        threads: Optional[int] = 0,
        *,
        inplace: bool = False,
        native: bool = False,
    ) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        self.threads = resolve_thread_count(threads)
        self.inplace = bool(inplace)
        #: native kernel stage bodies: the row/column sub-programs dispatch
        #: to generated C, whose ctypes calls release the GIL - so the
        #: chunked phases genuinely overlap instead of serialising on the
        #: interpreter lock (silent pure-NumPy fallback as everywhere).
        self.native = bool(native)
        if not threading_profitable(self.n, self.threads):
            # Primes, tiny sizes, or a single thread: the serial compiled
            # program is the right tool and keeps every size valid.  An
            # in-place request keeps its Stockham lowering through the
            # fallback when the size supports one.
            if self.threads <= 1:
                self.fallback_reason = "single thread"
            elif self.n < MIN_THREADED_SIZE:
                self.fallback_reason = "size below threaded threshold"
            else:
                self.fallback_reason = "no balanced split for this factorization"
            _metrics.inc(
                "capability_fallbacks", kind="threads", reason=self.fallback_reason
            )
            if _trace.active:
                _trace.emit(
                    "fallback", kind="threads", n=self.n, reason=self.fallback_reason
                )
            if self.inplace and stockham_supported(self.n):
                self.serial = get_stockham_program(self.n, native=self.native)
            else:
                self.serial: Optional[StageProgram] = get_program(
                    self.n, native=self.native
                )
            self.m, self.k = self.n, 1
            self.row_program = self.col_program = None
            self.row_stockham = self.col_stockham = None
            self.twiddle = None
            self._col_ranges = self._mid_ranges = ()
            return
        self.serial = None
        self.fallback_reason = None
        self.m, self.k = factorization.balanced_split(self.n)
        self.row_program = get_program(self.m, native=self.native)
        self.col_program = get_program(self.k, native=self.native)
        # In-place mode: the workers' gathered blocks are transformed with
        # the Stockham programs (each worker's block plus a thread-local
        # half-block scratch) instead of the ping-pong executor - the
        # stage bodies of the six-step then never allocate a second
        # block-sized buffer.  Sizes without a Stockham lowering keep the
        # ping-pong stage bodies.
        self.row_stockham = self.col_stockham = None
        if self.inplace:
            if stockham_supported(self.m):
                self.row_stockham = get_stockham_program(self.m, native=self.native)
            if stockham_supported(self.k):
                self.col_stockham = get_stockham_program(self.k, native=self.native)
        # The (m, k) table omega_N^{j2 n2}, stored transposed (k, m) so the
        # phase-A blocks (rows indexed by n2) multiply a contiguous slice.
        self.twiddle = np.ascontiguousarray(get_global_cache().stage(self.m, self.k).T)
        self._col_ranges = split_ranges(self.k, self.threads)
        self._mid_ranges = split_ranges(self.m, self.threads)

    # ------------------------------------------------------------------
    def execute(
        self,
        x: np.ndarray,
        *,
        parallel: bool = True,
        pool: Optional[WorkerPool] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward DFT along the last axis of ``x`` (batched).

        ``parallel=False`` runs the identical chunk list sequentially on the
        calling thread - the bitwise reference for the threaded execution.
        ``out`` receives the result instead of a fresh allocation; it may be
        ``x``'s own buffer (the six-step phases consume the input into the
        transpose intermediate before the output region is written), which
        is how :meth:`execute_inplace` overwrites the caller's buffer.
        """

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        n = self.n
        if x.shape[-1] != n:
            raise ValueError(
                f"program of size {n} applied to array with last axis {x.shape[-1]}"
            )
        if out is not None and (
            not isinstance(out, np.ndarray)
            or out.shape != x.shape
            or out.dtype != np.complex128
            or not out.flags.c_contiguous
            or not out.flags.writeable
        ):
            raise ValueError(
                "out must be a writeable C-contiguous complex128 array with "
                "the input's shape"
            )
        if self.serial is not None:
            if out is None:
                return self.serial.execute(x)
            np.copyto(out, self.serial.execute(x))
            return out
        shape = x.shape
        batch = x.size // n
        if batch == 0:
            # Empty batch: match the serial program (empty result, no work).
            return x.copy() if out is None else out  # reprolint: alloc-ok - zero-size copy
        xs = x.reshape(batch, n)
        if not xs.flags.c_contiguous:
            xs = np.ascontiguousarray(xs)  # reprolint: alloc-ok - non-contiguous fallback
        runner = (pool or get_pool()) if parallel else None
        if out is None:
            # reprolint: alloc-ok - the result array itself (out=None contract)
            target = np.empty((batch, n), dtype=np.complex128)
        else:
            target = out.reshape(batch, n)
        if batch > 1:
            tasks = [
                (lambda lo=lo, hi=hi: target.__setitem__(
                    slice(lo, hi), self._sixstep_batch(xs[lo:hi])
                ))
                for lo, hi in split_ranges(batch, self.threads)
            ]
            self._run(runner, tasks)
            return target.reshape(shape) if out is None else out
        self._execute_single(xs[0], target.reshape(n), runner)
        return target.reshape(shape) if out is None else out

    def execute_inplace(self, buf: np.ndarray) -> np.ndarray:
        """Forward DFT overwriting ``buf`` (C-contiguous complex128).

        The input is consumed into the six-step transpose intermediate
        during phase A, so phase B can write the spectrum straight back
        into the caller's buffer.  Unlike the serial Stockham program the
        six-step decomposition keeps its full-size ``(k, m)`` intermediate;
        in-place here buys the *output* allocation back and (with the
        Stockham stage bodies) halves each worker's block scratch.
        """

        buf = np.asarray(buf)
        if (
            buf.dtype != np.complex128
            or not buf.flags.c_contiguous
            or not buf.flags.writeable
        ):
            raise ValueError(
                "in-place execution requires a writeable C-contiguous "
                "complex128 buffer"
            )
        if self.serial is not None and hasattr(self.serial, "execute_inplace"):
            return self.serial.execute_inplace(buf)
        return self.execute(buf, out=buf)

    def execute_inverse_inplace(self, buf: np.ndarray) -> np.ndarray:
        """Normalised inverse DFT overwriting ``buf`` (conjugation identity)."""

        buf = np.asarray(buf)
        np.conj(buf, out=buf)
        self.execute_inplace(buf)
        np.conj(buf, out=buf)
        buf *= 1.0 / self.n
        return buf

    # ------------------------------------------------------------------
    def _run(self, pool: Optional[WorkerPool], tasks) -> None:
        if pool is None:
            for task in tasks:
                task()
        else:
            pool.run_tasks(tasks)

    # ------------------------------------------------------------------
    def _execute_single(
        self, x: np.ndarray, out: np.ndarray, pool: Optional[WorkerPool]
    ) -> None:
        """The chunked six-step phases for one length-``n`` vector."""

        m, k = self.m, self.k
        work = x.reshape(m, k)
        # reprolint: alloc-ok - the six-step transpose intermediate; the
        # decomposition's documented full-size working set (class docstring)
        mid = np.empty((k, m), dtype=np.complex128)

        def phase_a(lo: int, hi: int) -> None:
            # transpose 1 + FFT 1 + twiddle for columns [lo, hi); in-place
            # mode transforms the gathered block with the Stockham program
            # (block + thread-local half-block scratch, no ping-pong pair).
            # reprolint: alloc-ok - per-chunk transpose gather (strided
            # columns must be materialised before the row transform)
            block = np.ascontiguousarray(work[:, lo:hi].T)
            if self.row_stockham is not None:
                self.row_stockham.execute_inplace(block)
            else:
                block = self.row_program.execute(block)
            np.multiply(block, self.twiddle[lo:hi, :], out=mid[lo:hi, :])

        self._run(pool, [(lambda lo=lo, hi=hi: phase_a(lo, hi)) for lo, hi in self._col_ranges])

        out2 = out.reshape(k, m)

        def phase_b(lo: int, hi: int) -> None:
            # transpose 2 + FFT 2 + transpose 3 for intermediate columns [lo, hi)
            # reprolint: alloc-ok - per-chunk transpose gather, as in phase A
            block = np.ascontiguousarray(mid[:, lo:hi].T)
            if self.col_stockham is not None:
                self.col_stockham.execute_inplace(block)
            else:
                block = self.col_program.execute(block)
            out2[:, lo:hi] = block.T

        self._run(pool, [(lambda lo=lo, hi=hi: phase_b(lo, hi)) for lo, hi in self._mid_ranges])

    # ------------------------------------------------------------------
    def _sixstep_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized (unchunked) six-step over a ``(batch, n)`` slice.

        Used when the parallelism comes from the batch axis: each worker
        runs this whole pipeline over its own row slice.
        """

        b = rows.shape[0]
        m, k = self.m, self.k
        # (b, k, m): row n2 of each batch entry holds the stride-k subsequence
        blocks = np.ascontiguousarray(rows.reshape(b, m, k).transpose(0, 2, 1))
        if self.row_stockham is not None:
            inner = self.row_stockham.execute_inplace(blocks)
        else:
            inner = self.row_program.execute(blocks)
        inner *= self.twiddle[None, :, :]
        mid = np.ascontiguousarray(inner.transpose(0, 2, 1))  # (b, m, k)
        if self.col_stockham is not None:
            outer = self.col_stockham.execute_inplace(mid)
        else:
            outer = self.col_program.execute(mid)
        return np.ascontiguousarray(outer.transpose(0, 2, 1)).reshape(b, self.n)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (decomposition, chunking, sub-programs)."""

        if self.serial is not None:
            return (
                f"ThreadedSixStep(n={self.n}, serial fallback "
                f"({self.fallback_reason}) -> {self.serial.describe()})"
            )
        row = (self.row_stockham or self.row_program).describe()
        col = (self.col_stockham or self.col_program).describe()
        inplace = ", inplace" if self.inplace else ""
        return (
            f"ThreadedSixStep(n={self.n} = {self.m} x {self.k}, "
            f"threads={self.threads}{inplace}, row={row}, col={col})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def get_threaded_program(
    n: int,
    threads: Optional[int] = 0,
    *,
    inplace: bool = False,
    native: bool = False,
):
    """The (cached) threaded six-step program for ``n`` and a thread count.

    Shares the executor's program LRU (keys are tagged with the resolved
    thread count and the in-place flag, since the chunk layout and the
    stage-body lowering are part of the program's identity; native-tier
    lowerings live under separate ``("native", ...)`` keys).  A resolved
    count of 1 returns the plain serial :func:`get_program` (or the
    in-place :func:`get_stockham_program` when requested and supported).
    """

    n = int(n)
    nthreads = resolve_thread_count(threads)
    inplace = bool(inplace)
    native = bool(native)
    if nthreads <= 1:
        if inplace and stockham_supported(n):
            return get_stockham_program(n, native=native)
        return get_program(n, native=native)
    key = ("sixstep", n, nthreads, inplace)
    if native:
        key = ("native", key)
    return _cached_program(
        key,
        lambda: ThreadedSixStepProgram(n, nthreads, inplace=inplace, native=native),
    )

"""Shared-memory parallel runtime: the worker pool and threaded programs.

``pool``
    The process-wide, lazily-started, reusable worker pool (sized by
    ``REPRO_THREADS``), with ``cache_info()``-style counters and a clean
    ``atexit`` shutdown.  All threaded execution paths share it.
``threaded``
    :class:`ThreadedSixStepProgram` - the six-step ``n = m * k``
    decomposition whose row-FFT, twiddle, transpose, and column-FFT phases
    execute the cached half-size compiled :class:`~repro.fftlib.executor.
    StageProgram` objects over chunked batches on the pool.

The runtime is threaded through the stack via the ``threads`` knobs:
``plan_fft(n, threads=...)`` / :class:`~repro.fftlib.plan.Plan`,
:class:`~repro.core.config.FTConfig` (name suffix ``+t{N}``),
:meth:`~repro.core.ftplan.FTPlan.execute_many` (chunk-parallel batches with
per-chunk ABFT), and the CLI's ``--threads``.
"""

from repro.runtime.pool import (
    PoolInfo,
    WorkerPool,
    configure_pool,
    default_thread_count,
    get_pool,
    pool_info,
    resolve_thread_count,
    shutdown_pool,
    split_ranges,
)
from repro.runtime.threaded import (
    MIN_THREADED_SIZE,
    ThreadedSixStepProgram,
    get_threaded_program,
    threading_profitable,
)

__all__ = [
    "PoolInfo",
    "WorkerPool",
    "configure_pool",
    "default_thread_count",
    "get_pool",
    "pool_info",
    "resolve_thread_count",
    "shutdown_pool",
    "split_ranges",
    "MIN_THREADED_SIZE",
    "ThreadedSixStepProgram",
    "get_threaded_program",
    "threading_profitable",
]

"""The process-wide worker pool behind every threaded execution path.

The paper's headline results are *parallel* protected FFTs; the compiled
:class:`~repro.fftlib.executor.StageProgram` path is CPU-bound numpy/BLAS
code whose heavy kernels (``np.matmul`` contractions, elementwise twiddle
multiplies) release the GIL, so a plain thread pool gives real shared-memory
speedup without any serialization of the input arrays.

Design points (mirroring the plan/program caches elsewhere in the repo):

* **one pool per process** - :func:`get_pool` lazily creates a single
  :class:`WorkerPool` sized by the ``REPRO_THREADS`` environment variable
  (default: the machine's core count).  Every threaded program and every
  chunk-parallel :class:`~repro.core.ftplan.FTPlan` batch shares it, so the
  process never oversubscribes the machine no matter how many plans exist;
* **lazy start, idle safe** - no thread is created until the first parallel
  task list is actually submitted, and an idle pool costs nothing but the
  parked executor threads;
* **counters** - :meth:`WorkerPool.info` exposes ``cache_info()``-style
  statistics (tasks submitted / completed / run inline) so tests and
  benchmarks can assert that work really went through the pool;
* **clean shutdown** - the process pool is torn down via ``atexit`` so
  interpreter shutdown never races the executor's worker threads;
* **no nested blocking** - tasks submitted *from inside a pool worker* run
  inline on that worker.  A bounded pool whose workers wait on sub-tasks of
  their own pool can deadlock; running nested task lists inline keeps any
  composition of threaded programs safe by construction.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "PoolInfo",
    "WorkerPool",
    "default_thread_count",
    "resolve_thread_count",
    "split_ranges",
    "get_pool",
    "configure_pool",
    "pool_info",
    "shutdown_pool",
    "in_worker",
]

#: environment variable sizing the process-wide pool (and the ``threads=0``
#: automatic knob of plans and configs)
THREADS_ENV_VAR = "REPRO_THREADS"


def default_thread_count() -> int:
    """Worker count of the process pool: ``REPRO_THREADS`` or the core count."""

    value = os.environ.get(THREADS_ENV_VAR)
    if value:
        try:
            parsed = int(value)
        except ValueError as exc:
            raise ValueError(
                f"{THREADS_ENV_VAR} must be an integer, got {value!r}"
            ) from exc
        if parsed > 0:
            return parsed
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cores = os.cpu_count() or 1
    return max(1, cores)


def resolve_thread_count(threads: Optional[int]) -> int:
    """Normalise a user-facing ``threads`` knob to a concrete worker count.

    ``None`` means serial (1), ``0`` means automatic (the
    :func:`default_thread_count`), any positive integer is taken literally.
    """

    if threads is None:
        return 1
    threads = int(threads)
    if threads < 0:
        raise ValueError(f"threads must be >= 0 (0 = automatic), got {threads}")
    if threads == 0:
        return default_thread_count()
    return threads


def split_ranges(total: int, parts: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``range(total)`` into at most ``parts`` contiguous chunks.

    The layout depends only on ``(total, parts)`` - never on the pool size or
    scheduling order - which is what makes threaded executions bitwise
    reproducible: the same chunks produce the same BLAS calls whether they
    run on one worker or eight.
    """

    total = int(total)
    if total <= 0:
        return ()
    parts = max(1, min(int(parts), total))
    base, extra = divmod(total, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return tuple(ranges)


class PoolInfo(NamedTuple):
    """``cache_info()``-style counters of one :class:`WorkerPool`."""

    workers: int
    submitted: int
    completed: int
    inline: int
    started: bool


_tls = threading.local()


def in_worker() -> bool:
    """Whether the calling thread is one of a :class:`WorkerPool`'s workers."""

    return bool(getattr(_tls, "is_worker", False))


def _mark_worker() -> None:
    _tls.is_worker = True


class WorkerPool:
    """A lazily-started, reusable thread pool for array-chunk task lists.

    The executor is created on first use and reused for the life of the
    pool; :meth:`run_tasks` is the only execution entry point - it submits a
    list of thunks, waits for all of them, and returns their results in task
    order (so callers can treat it as a parallel ``[t() for t in tasks]``).
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._submitted = 0
        self._completed = 0
        self._inline = 0

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-worker",
                    initializer=_mark_worker,
                )
            return self._executor

    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run every thunk in ``tasks``; return their results in task order.

        Runs inline (sequentially, on the calling thread) when the pool has
        one worker, when there is at most one task, or when called from
        inside a pool worker (nested parallelism; see the module docstring).
        All tasks are always completed before an exception is re-raised, so
        tasks that write into disjoint slices of a shared output array never
        leave half of it unwritten silently.
        """

        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1 or in_worker():
            with self._lock:
                self._inline += len(tasks)
            return [task() for task in tasks]
        executor = self._ensure_executor()
        with self._lock:
            self._submitted += len(tasks)
        futures = [executor.submit(task) for task in tasks]
        results: List[object] = []
        first_error: Optional[BaseException] = None
        done = 0
        for future in futures:
            try:
                results.append(future.result())
                done += 1
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)
                if first_error is None:
                    first_error = exc
        with self._lock:
            self._completed += done
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    def info(self) -> PoolInfo:
        """Counters: workers, tasks submitted/completed/inlined, started."""

        with self._lock:
            return PoolInfo(
                workers=self.workers,
                submitted=self._submitted,
                completed=self._completed,
                inline=self._inline,
                started=self._executor is not None,
            )

    def shutdown(self) -> None:
        """Join and discard the executor (a later task list restarts it)."""

        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)


# ----------------------------------------------------------------------
# the process-wide pool
# ----------------------------------------------------------------------

_global_lock = threading.Lock()
_global_pool: Optional[WorkerPool] = None


def get_pool() -> WorkerPool:
    """The shared process-wide pool (created on first call, reused after)."""

    global _global_pool
    with _global_lock:
        if _global_pool is None:
            _global_pool = WorkerPool(default_thread_count())
        return _global_pool


def configure_pool(workers: int) -> WorkerPool:
    """Resize the process-wide pool to ``workers`` threads.

    A no-op when the pool already has that size (counters are kept);
    otherwise the old executor is shut down cleanly and a fresh pool takes
    its place.  ``workers=0`` restores the automatic size.
    """

    workers = resolve_thread_count(int(workers) if workers else 0)
    global _global_pool
    with _global_lock:
        current = _global_pool
        if current is not None and current.workers == workers:
            return current
        _global_pool = WorkerPool(workers)
        replaced = current
        fresh = _global_pool
    if replaced is not None:
        replaced.shutdown()
    return fresh


def pool_info() -> PoolInfo:
    """Counters of the process-wide pool (creating it if necessary)."""

    return get_pool().info()


def shutdown_pool() -> None:
    """Shut down the process-wide pool's executor (idempotent)."""

    with _global_lock:
        pool = _global_pool
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_pool)

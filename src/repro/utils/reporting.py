"""Plain-text table rendering for benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures and prints
its rows in the same layout as the paper (scheme x problem-size grids).  The
rendering is deliberately dependency-free so the harnesses run in minimal
environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_float", "Table", "render_table"]

Cell = Union[str, float, int, None]


def format_float(value: float, *, digits: int = 3) -> str:
    """Format a float compactly (scientific notation for tiny magnitudes)."""

    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 0.01 or abs(value) >= 10 ** (-digits):
        return f"{value:.{digits}f}"
    return f"{value:.2e}"


def _stringify(cell: Cell, digits: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, str):
        return cell
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, int):
        return str(cell)
    return format_float(float(cell), digits=digits)


@dataclass
class Table:
    """A small column-aligned table builder."""

    title: str
    columns: Sequence[str]
    digits: int = 3
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell, **named: Cell) -> None:
        if named:
            if cells:
                raise ValueError("pass either positional or named cells, not both")
            cells = tuple(named.get(col) for col in self.columns)
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_stringify(c, self.digits) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows, notes=self.notes)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[str]],
    *,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Render a list of string rows under ``columns`` as an aligned table."""

    rows = [list(r) for r in rows]
    widths = [len(str(c)) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))

    lines = [title, "=" * max(len(title), 8)]
    lines.append(fmt_row(columns))
    lines.append(fmt_row(["-" * w for w in widths]))
    for row in rows:
        lines.append(fmt_row(row))
    for note in notes or []:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def dict_rows(
    columns: Sequence[str], records: Iterable[Dict[str, Cell]], digits: int = 3
) -> List[List[str]]:
    """Convert dict records into string rows following ``columns`` order."""

    out: List[List[str]] = []
    for record in records:
        out.append([_stringify(record.get(col), digits) for col in columns])
    return out

"""Timing helpers used by benchmarks and the virtual-time machinery.

The benchmark harnesses report both wall-clock measurements of the Python
implementations and the analytic predictions of :mod:`repro.perfmodel`.  The
tiny classes here keep the measurement code identical across harnesses.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Timer", "Stopwatch", "measure"]


@dataclass
class Timer:
    """Accumulating timer keyed by label.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("fft"):
    ...     pass
    >>> "fft" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: Optional[str] = None) -> float:
        if label is None:
            return sum(self.totals.values())
        return self.totals.get(label, 0.0)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)


class Stopwatch:
    """Simple start/stop stopwatch returning elapsed seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def measure(fn: Callable[[], object], *, repeats: int = 3, warmup: int = 1) -> Dict[str, float]:
    """Measure ``fn`` and return ``{"best": ..., "mean": ..., "times": ...}``.

    The paper averages 9 (sequential) or 20 (parallel) runs; benchmarks here
    default to a smaller repeat count but expose the same statistics.
    """

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(0, warmup)):
        fn()
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "best": min(times),
        "mean": sum(times) / len(times),
        "times": times,
    }

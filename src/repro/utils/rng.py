"""Random number management.

Reproducibility matters for the fault-injection experiments (Tables 1-3, 5, 6
of the paper): a campaign must be re-runnable bit-for-bit.  All randomness in
the repository flows through :class:`RandomSource`, which wraps a seeded
:class:`numpy.random.Generator` and can spawn independent child streams for
per-rank or per-trial use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["RandomSource", "default_rng", "spawn_rngs"]

_DEFAULT_SEED = 20170930  # arbitrary but fixed; SC'17 camera-ready month.


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a seeded :class:`numpy.random.Generator`.

    ``seed=None`` still produces a deterministic generator (with the module
    default seed) because the experiments in this repository are meant to be
    reproducible by default; pass an explicit seed to vary runs.
    """

    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def spawn_rngs(count: int, seed: Optional[int] = None) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators."""

    if count <= 0:
        raise ValueError("count must be positive")
    seq = np.random.SeedSequence(_DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


@dataclass
class RandomSource:
    """A reproducible random source with named sampling helpers.

    The helpers mirror the input distributions used in the paper's
    evaluation: uniform U(-1, 1) and standard normal N(0, 1) for both the real
    and imaginary parts of the FFT input (Section 9.4).
    """

    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = default_rng(self.seed)

    @property
    def generator(self) -> np.random.Generator:
        return self._rng

    def spawn(self, count: int) -> List["RandomSource"]:
        """Return ``count`` independent child sources."""

        seq = np.random.SeedSequence(_DEFAULT_SEED if self.seed is None else self.seed)
        children = seq.spawn(count)
        sources: List[RandomSource] = []
        for child in children:
            src = RandomSource(seed=None)
            src._rng = np.random.default_rng(child)
            sources.append(src)
        return sources

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def uniform_complex(self, n: int, low: float = -1.0, high: float = 1.0) -> np.ndarray:
        """Complex vector with i.i.d. U(low, high) real and imaginary parts."""

        re = self._rng.uniform(low, high, size=n)
        im = self._rng.uniform(low, high, size=n)
        return re + 1j * im

    def normal_complex(self, n: int, scale: float = 1.0) -> np.ndarray:
        """Complex vector with i.i.d. N(0, scale^2) real and imaginary parts."""

        re = self._rng.normal(0.0, scale, size=n)
        im = self._rng.normal(0.0, scale, size=n)
        return re + 1j * im

    def signal_with_tones(self, n: int, tones: Sequence[float], noise: float = 0.0) -> np.ndarray:
        """A sum-of-sinusoids test signal (used by the examples)."""

        t = np.arange(n)
        x = np.zeros(n, dtype=np.complex128)
        for freq in tones:
            x += np.exp(2j * np.pi * freq * t / n)
        if noise > 0.0:
            x += noise * self.normal_complex(n)
        return x

    # ------------------------------------------------------------------
    # real-valued counterparts (rfft workloads: sensor/audio-style data)
    # ------------------------------------------------------------------
    def uniform_real(self, n: int, low: float = -1.0, high: float = 1.0) -> np.ndarray:
        """Real vector with i.i.d. U(low, high) samples."""

        return self._rng.uniform(low, high, size=n)

    def normal_real(self, n: int, scale: float = 1.0) -> np.ndarray:
        """Real vector with i.i.d. N(0, scale^2) samples."""

        return self._rng.normal(0.0, scale, size=n)

    def real_signal_with_tones(
        self, n: int, tones: Sequence[float], noise: float = 0.0
    ) -> np.ndarray:
        """A real sum-of-cosines test signal (rfft demos)."""

        t = np.arange(n)
        x = np.zeros(n, dtype=np.float64)
        for freq in tones:
            x += np.cos(2.0 * np.pi * freq * t / n)
        if noise > 0.0:
            x += noise * self.normal_real(n)
        return x

    def integers(self, low: int, high: int, size=None):
        return self._rng.integers(low, high, size=size)

    def choice(self, seq, size=None, replace: bool = True):
        return self._rng.choice(seq, size=size, replace=replace)

    def uniform(self, low: float, high: float, size=None):
        return self._rng.uniform(low, high, size=size)

"""Input validation helpers.

Every public entry point of the library funnels its array arguments through
the helpers in this module so that error messages are uniform and so that the
numerical kernels can assume contiguous ``complex128`` data.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

__all__ = [
    "as_complex_vector",
    "as_complex_matrix",
    "ensure_positive_int",
    "ensure_power_of",
    "is_power_of_two",
    "split_size",
]


def as_complex_vector(x, *, copy: bool = False, name: str = "x") -> np.ndarray:
    """Return ``x`` as a 1-D contiguous ``complex128`` array.

    Parameters
    ----------
    x:
        Array-like input.  Real inputs are promoted to complex.
    copy:
        When ``True`` the returned array never aliases the input.  Schemes
        that mutate their working buffer (in-place plans, fault injection)
        request a copy explicitly.
    name:
        Name used in error messages.
    """

    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    result = np.ascontiguousarray(arr, dtype=np.complex128)
    if copy and result is arr:
        result = result.copy()
    elif copy and np.shares_memory(result, arr):
        result = result.copy()
    return result


def as_complex_matrix(x, *, name: str = "x") -> np.ndarray:
    """Return ``x`` as a 2-D contiguous ``complex128`` array."""

    arr = np.asarray(x)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {arr.shape}")
    return np.ascontiguousarray(arr, dtype=np.complex128)


def ensure_positive_int(value, *, name: str = "value") -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""

    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def is_power_of_two(n: int) -> bool:
    """Return ``True`` when ``n`` is a positive power of two."""

    return n > 0 and (n & (n - 1)) == 0


def ensure_power_of(n: int, base: int, *, name: str = "n") -> int:
    """Validate that ``n`` is a positive power of ``base``."""

    n = ensure_positive_int(n, name=name)
    base = ensure_positive_int(base, name="base")
    if base < 2:
        raise ValueError("base must be >= 2")
    value = n
    while value % base == 0:
        value //= base
    if value != 1:
        raise ValueError(f"{name}={n} is not a power of {base}")
    return n


def split_size(n: int) -> Tuple[int, int]:
    """Split ``n`` into two factors ``(m, k)`` with ``m * k == n``.

    This mirrors FFTW's behaviour for the highest level of a Cooley-Tukey
    decomposition: the factors are chosen as close to ``sqrt(n)`` as possible
    so both sub-problems are of size :math:`\\Theta(\\sqrt{N})`, which is what
    the paper's online ABFT scheme relies on for cheap recomputation.
    """

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return 1, 1
    best = (1, n)
    root = int(np.sqrt(n))
    for candidate in range(root, 0, -1):
        if n % candidate == 0:
            best = (n // candidate, candidate)
            break
    m, k = best
    # Convention used throughout the repository: the transform of size N is
    # computed as k FFTs of size m followed by m FFTs of size k (N = m * k),
    # with m >= k.
    if m < k:
        m, k = k, m
    return m, k


def iter_chunks(total: int, chunk: int) -> Iterable[Tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(total)`` in chunks."""

    total = ensure_positive_int(total, name="total")
    chunk = ensure_positive_int(chunk, name="chunk")
    start = 0
    while start < total:
        stop = min(start + chunk, total)
        yield start, stop
        start = stop

"""Shared utilities for the FT-FFT reproduction.

This package deliberately contains only small, dependency-free helpers that
are used across the substrate packages (:mod:`repro.fftlib`,
:mod:`repro.core`, :mod:`repro.simmpi`, ...): input validation, seeded random
number management, wall-clock timing, and plain-text report/table rendering
used by the benchmark harnesses.
"""

from repro.utils.validation import (
    as_complex_vector,
    as_complex_matrix,
    ensure_positive_int,
    ensure_power_of,
    is_power_of_two,
    split_size,
)
from repro.utils.rng import RandomSource, default_rng, spawn_rngs
from repro.utils.timing import Stopwatch, Timer, measure
from repro.utils.reporting import Table, format_float, render_table

__all__ = [
    "as_complex_vector",
    "as_complex_matrix",
    "ensure_positive_int",
    "ensure_power_of",
    "is_power_of_two",
    "split_size",
    "RandomSource",
    "default_rng",
    "spawn_rngs",
    "Stopwatch",
    "Timer",
    "measure",
    "Table",
    "format_float",
    "render_table",
]

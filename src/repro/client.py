"""Blocking client for the transform server.

:class:`Client` speaks the frame protocol of :mod:`repro.server.protocol`
over one keep-alive HTTP/1.1 connection (TCP or unix socket) using nothing
but the stdlib ``socket`` module, so scripts and load generators need no
HTTP dependency::

    from repro.client import Client

    with Client(("127.0.0.1", 8791)) as client:
        reply = client.transform(x, config="opt-online+mem")
        spectrum = reply.output          # packed complex128 spectrum
        assert not reply.uncorrectable   # per-row ABFT outcome

Addresses: a ``(host, port)`` tuple, ``"host:port"``, ``"unix:/path"``, or
a bare filesystem path to a unix socket.  The connection is established
lazily and re-established once per request if the server closed an idle
keep-alive connection.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.server import protocol
from repro.server.protocol import DEFAULT_CONFIG, FRAME_CONTENT_TYPE, ProtocolError

__all__ = ["Address", "Client", "ProtocolError", "ServerError", "TransformReply"]

Address = Union[str, Tuple[str, int]]


class ServerError(RuntimeError):
    """The server rejected or failed a request (carries status and kind)."""

    def __init__(self, message: str, *, status: int = 500, kind: str = "error") -> None:
        super().__init__(message)
        self.status = int(status)
        self.kind = str(kind)


@dataclass
class TransformReply:
    """One transform response: the spectrum plus its fault-tolerance summary."""

    output: np.ndarray
    meta: Dict[str, Any]

    @property
    def report(self) -> Dict[str, Any]:
        return self.meta.get("report", {})

    @property
    def detected(self) -> bool:
        return bool(self.report.get("detected"))

    @property
    def corrected(self) -> bool:
        return bool(self.report.get("corrected"))

    @property
    def uncorrectable(self) -> bool:
        return bool(self.report.get("uncorrectable"))

    @property
    def scheme(self) -> str:
        return str(self.meta.get("scheme", ""))

    @property
    def batch_size(self) -> int:
        return int(self.meta.get("batch_size", 1))

    @property
    def batch_index(self) -> int:
        return int(self.meta.get("batch_index", 0))


def _parse_address(address: Address) -> Tuple[int, Union[str, Tuple[str, int]]]:
    """Normalise an address to ``(socket family, connect target)``."""

    if isinstance(address, tuple):
        host, port = address
        return socket.AF_INET, (str(host), int(port))
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:") :]
    if "/" in address:
        return socket.AF_UNIX, address
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(f"address {address!r} is neither host:port nor a unix socket path")
    return socket.AF_INET, (host, int(port))


class Client:
    """A synchronous transform-server client over one keep-alive connection."""

    def __init__(self, address: Address, *, timeout: float = 60.0) -> None:
        self._family, self._target = _parse_address(address)
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(self._family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        if self._family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.connect(self._target)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        """Close the connection (the next request reconnects)."""

        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: bytes = b"", content_type: str = "application/json"
    ) -> Tuple[int, bytes]:
        """One round trip; retries once through a fresh connection if the
        server closed the idle keep-alive socket under us."""

        for attempt in (0, 1):
            try:
                self._connect()
                assert self._sock is not None and self._file is not None
                head = (
                    f"{method} {path} HTTP/1.1\r\n"
                    "Host: repro\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                ).encode("latin-1")
                self._sock.sendall(head + body)
                return self._read_response()
            except (BrokenPipeError, ConnectionResetError, ConnectionAbortedError, EOFError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _read_response(self) -> Tuple[int, bytes]:
        assert self._file is not None
        status_line = self._file.readline()
        if not status_line:
            raise EOFError("server closed the connection")
        parts = status_line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServerError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length = 0
        close = False
        while True:
            header = self._file.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                close = True
        payload = self._file.read(length) if length else b""
        if payload is None or len(payload) != length:
            raise EOFError("server closed the connection mid-response")
        if close:
            self.close()
        return status, payload

    @staticmethod
    def _raise_for_error(status: int, payload: bytes) -> None:
        try:
            body = json.loads(payload)
        except ValueError:
            body = {}
        raise ServerError(
            str(body.get("error", f"server answered HTTP {status}")),
            status=status,
            kind=str(body.get("kind", "error")),
        )

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def transform(
        self,
        x: np.ndarray,
        config: str = DEFAULT_CONFIG,
        *,
        inject: Optional[Dict[str, Any]] = None,
    ) -> TransformReply:
        """Protected transform of one row on the server.

        ``config`` uses the scheme-name grammar of
        :meth:`repro.core.config.FTConfig.from_name` (``"opt-online+mem"``,
        ``"...+real"``, ...).  ``inject`` is an optional fault-injection
        spec (``site``/``kind``/``magnitude``/``bit``/``index``/``element``)
        executed live on the server through the scalar protected path.
        """

        frame = protocol.encode_request(x, config, inject)
        status, payload = self._request(
            "POST", "/v1/transform", frame, content_type=FRAME_CONTENT_TYPE
        )
        return self._transform_reply(status, payload)

    def submit(
        self,
        x: np.ndarray,
        config: str = DEFAULT_CONFIG,
        *,
        inject: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Send one transform request without waiting for the reply.

        The sending half of :meth:`transform`, for callers that multiplex
        several connections from one thread (one ``Client`` per
        connection: ``submit`` on each, then :meth:`collect` on each) so
        their requests land at the server together and can share a
        micro-batch.  Each ``submit`` must be matched by exactly one
        ``collect`` on the same client before the next ``submit``; the
        server answers one request per connection at a time.  Unlike
        :meth:`transform` there is no transparent reconnect - a dead
        connection surfaces on ``collect``.
        """

        frame = protocol.encode_request(x, config, inject)
        self._connect()
        assert self._sock is not None
        head = (
            "POST /v1/transform HTTP/1.1\r\n"
            "Host: repro\r\n"
            f"Content-Type: {FRAME_CONTENT_TYPE}\r\n"
            f"Content-Length: {len(frame)}\r\n"
            "\r\n"
        ).encode("latin-1")
        self._sock.sendall(head + frame)

    def collect(self) -> TransformReply:
        """Read the reply to the oldest outstanding :meth:`submit`."""

        status, payload = self._read_response()
        return self._transform_reply(status, payload)

    def _transform_reply(self, status: int, payload: bytes) -> TransformReply:
        if status != 200:
            self._raise_for_error(status, payload)
        meta, spectrum = protocol.parse_response(payload)
        if not meta.get("ok") or spectrum is None:
            raise ServerError(str(meta.get("error", "transform failed")), status=status)
        return TransformReply(output=spectrum, meta=meta)

    def healthz(self) -> Dict[str, Any]:
        status, payload = self._request("GET", "/healthz")
        if status != 200:
            self._raise_for_error(status, payload)
        return dict(json.loads(payload))

    def stats(self) -> Dict[str, Any]:
        """The server's telemetry registry snapshot (``/stats``)."""

        status, payload = self._request("GET", "/stats")
        if status != 200:
            self._raise_for_error(status, payload)
        return dict(json.loads(payload))

    def metrics(self) -> bytes:
        """The raw Prometheus exposition served by ``/metrics``."""

        status, payload = self._request("GET", "/metrics")
        if status != 200:
            self._raise_for_error(status, payload)
        return payload

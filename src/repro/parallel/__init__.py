"""Parallel (simulated-MPI) FFT schemes.

This package mirrors Section 5 and 6 of the paper:

``sixstep``
    The unprotected six-step parallel 1-D FFT (three block transposes, local
    FFT1 of many p-point transforms, local FFT2 of one N/p-point transform
    per rank), optionally with the paper's *parallel optimization* of
    overlapping the twiddle multiplication with communication ("opt-FFTW").
``protected``
    Protection of in-place local transforms: the flowchart of Fig. 4
    (per-sub-FFT input backups, immediate verification, memory correction +
    restart) and the three-layer ``r * k^2`` plan with a DMR-protected middle
    layer (the Fig. 5 problem and its Section 5 solution).
``ft_sixstep``
    The parallel online ABFT scheme of Fig. 6: checksummed transposes,
    protected FFT1/FFT2, and the communication-computation overlap of
    Algorithm 3 ("opt-FT-FFTW").
``overlap``
    The Algorithm 3 pipeline schedule expressed with the non-blocking engine
    (used by the overlap-aware transposition and by tests).
"""

from repro.parallel.sixstep import ParallelFFT, ParallelExecution
from repro.parallel.protected import ProtectedInPlaceFFT, ProtectedThreeLayerFFT
from repro.parallel.ft_sixstep import ParallelFTFFT
from repro.parallel.overlap import OverlapSchedule, pipelined_transpose

__all__ = [
    "ParallelFFT",
    "ParallelExecution",
    "ProtectedInPlaceFFT",
    "ProtectedThreeLayerFFT",
    "ParallelFTFFT",
    "OverlapSchedule",
    "pipelined_transpose",
]

"""Protection of in-place local transforms (Fig. 4 and Fig. 5).

Parallel FFTs run their local transforms *in place*: the input is gone once
a stage has executed.  Two consequences drive the designs here (Section 5):

* every sub-FFT must keep a backup of its own (small) input so that a
  detected error can be repaired by restoring the backup and re-executing
  just that sub-FFT (Fig. 4);
* FFTW's in-place plan for a non-square local size ``n = r * k^2`` runs
  *three* layers (``r*k`` k-point FFTs, ``k^2`` r-point FFTs, ``r*k``
  k-point FFTs).  The plain two-layer online scheme breaks on such a plan
  (Fig. 5): by the time a first-layer error is caught in a later layer the
  original input has been overwritten.  The paper's fix is to protect the
  small middle layer (and its twiddles) with DMR, so the first layer can be
  verified before its input is destroyed and the last layer is an ordinary
  ABFT layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import OptimizationFlags
from repro.core.checksums import computational_weights, input_checksum_weights, weighted_sum
from repro.core.detection import FTReport
from repro.core.dmr import dmr_elementwise
from repro.core.thresholds import ThresholdPolicy, residual_exceeds
from repro.faults.injector import NullInjector
from repro.faults.models import FaultSite
from repro.fftlib.plan import PlanDirection
from repro.fftlib.planner import get_default_planner
from repro.fftlib.three_layer import ThreeLayerPlan

__all__ = ["ProtectedInPlaceFFT", "ProtectedThreeLayerFFT"]


class ProtectedInPlaceFFT:
    """Fig. 4: a batch of small in-place FFTs with backup-based recovery.

    Used for the parallel scheme's FFT1, where every rank runs ``n/p^2``
    ``p``-point transforms on the columns of its local ``(p, s)`` matrix.
    The columns are transformed in place (the matrix is overwritten); each
    column's input is backed up so a failing verification can restore it and
    re-execute only that column.
    """

    def __init__(
        self,
        size: int,
        *,
        thresholds: Optional[ThresholdPolicy] = None,
        max_retries: int = 3,
    ) -> None:
        self.size = int(size)
        self.thresholds = thresholds or ThresholdPolicy()
        self.max_retries = int(max_retries)
        self.plan = get_default_planner().plan(self.size, PlanDirection.FORWARD)
        self.r = computational_weights(self.size)
        self.c = input_checksum_weights(self.size)

    # ------------------------------------------------------------------
    def execute_inplace(
        self,
        matrix: np.ndarray,
        *,
        injector=None,
        report: Optional[FTReport] = None,
        rank: Optional[int] = None,
    ) -> np.ndarray:
        """Transform every column of ``matrix`` (shape ``(size, batch)``) in place."""

        injector = injector or NullInjector()
        report = report if report is not None else FTReport(scheme="protected-inplace")
        if matrix.ndim != 2 or matrix.shape[0] != self.size:
            raise ValueError(f"matrix must have shape ({self.size}, batch), got {matrix.shape}")

        eta = self.thresholds.eta_stage1(self.size, matrix)

        # Input backup + input checksums (one pass; the backup also provides
        # the memory-correction path: a corrupted input column is restored
        # from it wholesale).
        backup = matrix.copy()
        ccg = weighted_sum(self.c, matrix, axis=0)

        transformed = self.plan.execute_batch(matrix, axis=0)
        batch = matrix.shape[1]
        for col in range(batch):
            injector.visit(FaultSite.RANK_LOCAL_FFT, transformed[:, col], index=col, rank=rank)
        matrix[:, :] = transformed

        residuals = np.abs(weighted_sum(self.r, matrix, axis=0) - ccg)
        report.bump("verifications", batch)
        failing = np.nonzero(residual_exceeds(residuals, eta))[0]
        for col in failing:
            col = int(col)
            report.record_verification("fft1-ccv", col, float(residuals[col]), eta, True)
            self._recover_column(matrix, backup, col, eta, injector, report, rank)
        return matrix

    # ------------------------------------------------------------------
    def _recover_column(self, matrix, backup, col, eta, injector, report, rank) -> None:
        for _ in range(self.max_retries):
            # Fig. 4 recovery order: restore the sub-FFT's input from its
            # backup (this covers the memory-fault case - the in-place
            # transform has already destroyed the original), then re-execute
            # and re-verify just this column.
            restored = backup[:, col].copy()
            fresh = self.plan.execute(restored)
            injector.visit(FaultSite.RANK_LOCAL_FFT, fresh, index=col, rank=rank)
            residual = float(np.abs(np.dot(self.r, fresh) - np.dot(self.c, backup[:, col])))
            ok = residual <= eta
            report.record_verification("fft1-ccv-retry", col, residual, eta, not ok)
            report.record_correction("recompute", "fft1", col, "p-point sub-FFT recomputed from backup")
            if ok:
                matrix[:, col] = fresh
                return
        report.record_uncorrectable(f"fft1 column {col} could not be corrected")


class ProtectedThreeLayerFFT:
    """Section 5's ABFT-DMR-ABFT protection of an ``n = r * k^2`` in-place plan.

    * Layer 1 (``r*k`` k-point FFTs) is ABFT-protected; its verification is
      performed *before* the layer-2 results overwrite anything the recovery
      would need, and each sub-FFT keeps its input column available for
      recomputation (the layer is executed out-of-place into the working
      array, with the input retained until verification passes).
    * Layer 2 (the ``k^2`` r-point FFTs together with both twiddle
      multiplications) is DMR-protected - ``r`` is small (2 or 8 for
      power-of-two sizes), so executing it twice costs about as much as one
      checksum pass.
    * Layer 3 (``r*k`` k-point FFTs) is ABFT-protected like the second part
      of the sequential online scheme.
    """

    def __init__(
        self,
        n: int,
        *,
        r: Optional[int] = None,
        k: Optional[int] = None,
        thresholds: Optional[ThresholdPolicy] = None,
        flags: Optional[OptimizationFlags] = None,
    ) -> None:
        self.plan = ThreeLayerPlan(n, r=r, k=k)
        self.n = self.plan.n
        self.r = self.plan.r
        self.k = self.plan.k
        self.thresholds = thresholds or ThresholdPolicy()
        self.flags = flags or OptimizationFlags()
        self.r_k = computational_weights(self.k)
        self.c_k = input_checksum_weights(self.k)

    # ------------------------------------------------------------------
    def execute(
        self,
        x: np.ndarray,
        *,
        injector=None,
        report: Optional[FTReport] = None,
        rank: Optional[int] = None,
    ) -> np.ndarray:
        injector = injector or NullInjector()
        report = report if report is not None else FTReport(scheme="protected-three-layer")
        plan = self.plan
        retries = max(1, self.flags.max_retries)

        work = np.array(plan.gather_input(x))  # (k, r, k)
        injector.visit(FaultSite.STAGE1_INPUT, work, rank=rank)

        eta1 = self.thresholds.eta_stage1(self.k, work)

        # ----- layer 1: r*k k-point FFTs, ABFT protected ------------------
        ccg1 = np.tensordot(self.c_k, work, axes=([0], [0]))  # shape (r, k)
        layer1 = plan.layer1(work)
        injector.visit(FaultSite.STAGE1_COMPUTE, layer1, rank=rank)
        out_ck = np.tensordot(self.r_k, layer1, axes=([0], [0]))
        residuals = np.abs(out_ck - ccg1)
        report.bump("verifications", residuals.size)
        for s, n1 in zip(*np.nonzero(residual_exceeds(residuals, eta1))):
            s, n1 = int(s), int(n1)
            index = s * self.k + n1
            report.record_verification("layer1-ccv", index, float(residuals[s, n1]), eta1, True)
            corrected = False
            for _ in range(retries):
                fresh = plan.k_plan.execute(np.ascontiguousarray(work[:, s, n1]))
                residual = float(np.abs(np.dot(self.r_k, fresh) - np.dot(self.c_k, work[:, s, n1])))
                report.record_correction("recompute", "layer1", index, "k-point sub-FFT recomputed")
                if residual <= eta1:
                    layer1[:, s, n1] = fresh
                    corrected = True
                    break
            if not corrected:
                report.record_uncorrectable(f"layer1 sub-FFT {index} could not be corrected")

        # ----- layer 2 + twiddles: DMR protected ---------------------------
        def middle(layer1=layer1):
            tw1 = plan.apply_inner_twiddle(layer1)
            mid = plan.layer2(tw1)
            return plan.apply_outer_twiddle(mid)

        middle_out = dmr_elementwise(
            middle,
            injector=injector,
            site=FaultSite.TWIDDLE_COMPUTE,
            rank=rank,
            report=report,
            label="middle-layer-dmr",
        )

        # ----- layer 3: r*k k-point FFTs, ABFT protected -------------------
        eta3 = self.thresholds.eta_stage2(self.k, self.k * self.r, work)
        ccg3 = np.tensordot(middle_out, self.c_k, axes=([2], [0]))  # (k, r)
        layer3 = plan.layer3(middle_out)
        injector.visit(FaultSite.STAGE2_COMPUTE, layer3, rank=rank)
        out_ck3 = np.tensordot(layer3, self.r_k, axes=([2], [0]))
        residuals3 = np.abs(out_ck3 - ccg3)
        report.bump("verifications", residuals3.size)
        for j2, j1 in zip(*np.nonzero(residual_exceeds(residuals3, eta3))):
            j2, j1 = int(j2), int(j1)
            index = j2 * self.r + j1
            report.record_verification("layer3-ccv", index, float(residuals3[j2, j1]), eta3, True)
            corrected = False
            for _ in range(retries):
                fresh = plan.k_plan.execute(np.ascontiguousarray(middle_out[j2, j1, :]))
                residual = float(
                    np.abs(np.dot(self.r_k, fresh) - np.dot(self.c_k, middle_out[j2, j1, :]))
                )
                report.record_correction("recompute", "layer3", index, "k-point sub-FFT recomputed")
                if residual <= eta3:
                    layer3[j2, j1, :] = fresh
                    corrected = True
                    break
            if not corrected:
                report.record_uncorrectable(f"layer3 sub-FFT {index} could not be corrected")

        output = plan.scatter_output(layer3)
        injector.visit(FaultSite.OUTPUT, output, rank=rank)
        return output

"""Parallel online ABFT FFT (Fig. 6): FT-FFTW and opt-FT-FFTW.

The protected six-step transform adds, on top of
:class:`repro.parallel.sixstep.ParallelFFT`:

* per-block locating checksums on every transposition (detect and repair
  in-transit corruption; communication overhead 2p/n, Section 7.5),
* memory checksum generation/verification around each transposition,
* Fig. 4 protection of FFT1 (per-column input backups + immediate
  verification),
* the sequential online ABFT scheme for each rank's FFT2 - either the
  two-layer :class:`~repro.core.optimized.OptimizedOnlineABFT` or the
  three-layer ABFT-DMR-ABFT scheme of Section 5 when the local size is of
  the ``r * k^2`` form with ``r > 1``, and
* optionally (``overlap=True``, "opt-FT-FFTW") the Algorithm 3
  communication-computation overlap, which hides the fault-tolerance work
  adjacent to transposes 1 and 2 behind the communication itself
  (Section 7.3.2's 96n -> 56n reduction).

The numerical execution simulates every rank in one process; the virtual
timeline charges per-rank costs and models the overlap, and is what the
scaling benchmarks report.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import OptimizationFlags
from repro.core.detection import FTReport
from repro.core.dmr import dmr_elementwise
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.thresholds import ThresholdPolicy
from repro.faults.injector import NullInjector
from repro.faults.models import FaultSite
from repro.fftlib.factorization import balanced_split
from repro.parallel.protected import ProtectedInPlaceFFT, ProtectedThreeLayerFFT
from repro.parallel.sixstep import ParallelExecution, ParallelFFT, _COMPLEX_BYTES
from repro.simmpi.comm import DistributedVector, SimCommunicator
from repro.simmpi.machine import MachineModel, TIANHE2_LIKE
from repro.simmpi.timeline import VirtualTimeline
from repro.parallel.overlap import pipelined_transpose

__all__ = ["ParallelFTFFT"]


class ParallelFTFFT(ParallelFFT):
    """Fault-tolerant parallel six-step FFT (FT-FFTW / opt-FT-FFTW)."""

    def __init__(
        self,
        n: int,
        ranks: int,
        *,
        machine: MachineModel = TIANHE2_LIKE,
        overlap: bool = False,
        fft2_strategy: str = "auto",
        thresholds: Optional[ThresholdPolicy] = None,
        flags: Optional[OptimizationFlags] = None,
    ) -> None:
        super().__init__(
            n,
            ranks,
            machine=machine,
            overlap_twiddle=overlap,
            protect_messages=True,
        )
        self.overlap = bool(overlap)
        self.thresholds = thresholds or ThresholdPolicy()
        self.flags = flags or OptimizationFlags()
        self.name = "parallel-opt-ft-fftw" if overlap else "parallel-ft-fftw"

        # FFT2 protection strategy: two-layer optimized online scheme for
        # square local sizes, three-layer ABFT-DMR-ABFT (Fig. 5 fix) otherwise.
        if fft2_strategy not in {"auto", "two-layer", "three-layer"}:
            raise ValueError("fft2_strategy must be 'auto', 'two-layer' or 'three-layer'")
        if fft2_strategy == "auto":
            m2, k2 = balanced_split(self.q)
            fft2_strategy = "two-layer" if m2 == k2 else "three-layer"
        self.fft2_strategy = fft2_strategy
        # The protected plans are created lazily so that model-only
        # instantiations at paper-scale sizes stay cheap.
        self._fft1_protected: Optional[ProtectedInPlaceFFT] = None
        self._fft2_protected = None

    @property
    def fft1_protected(self) -> ProtectedInPlaceFFT:
        if self._fft1_protected is None:
            self._fft1_protected = ProtectedInPlaceFFT(self.ranks, thresholds=self.thresholds)
        return self._fft1_protected

    @property
    def fft2_protected(self):
        if self._fft2_protected is None:
            if self.fft2_strategy == "two-layer":
                self._fft2_protected = OptimizedOnlineABFT(
                    self.q, memory_ft=True, thresholds=self.thresholds, flags=self.flags
                )
            else:
                self._fft2_protected = ProtectedThreeLayerFFT(
                    self.q, thresholds=self.thresholds, flags=self.flags
                )
        return self._fft2_protected

    # ------------------------------------------------------------------
    def predict_timeline(self) -> VirtualTimeline:
        """Virtual timeline of the protected transform without executing it."""

        timeline = VirtualTimeline(ranks=self.ranks)
        timeline.compute("ft-mcg-input", self._ft_cost_pre_tran1())
        if self.overlap:
            timeline.overlapped(
                "transpose-1(+mcv/cmcg)", self._transpose_cost(), self._ft_cost_post_tran1()
            )
        else:
            timeline.communicate("transpose-1", self._transpose_cost())
            timeline.compute("ft-mcv-cmcg", self._ft_cost_post_tran1())
        timeline.compute("fft-1(protected)", self._fft1_cost() + self._ft_cost_fft1())
        if self.overlap:
            timeline.overlapped(
                "transpose-2(+mcv/tm/cmcg)",
                self._transpose_cost(),
                self._twiddle_cost() + self._ft_cost_pre_tran2(),
            )
        else:
            timeline.compute("twiddle(dmr)", 2.0 * self._twiddle_cost())
            timeline.compute("ft-mcv-tm-cmcg", self._ft_cost_pre_tran2())
            timeline.communicate("transpose-2", self._transpose_cost())
        timeline.compute("fft-2(protected)", self._fft2_cost() + self._ft_cost_fft2())
        timeline.communicate("transpose-3", self._transpose_cost())
        timeline.compute("ft-final-mcv", self._ft_cost_post_tran3())
        timeline.compute("local-reorder", self._reorder_cost())
        return timeline

    # ------------------------------------------------------------------
    # fault-tolerance cost helpers (per rank, virtual time)
    # ------------------------------------------------------------------
    def _pass_cost(
        self, elements: int, passes: float = 1.0, flops_per_element: float = 8.0
    ) -> float:
        """Cost of streaming ``elements`` complex values ``passes`` times."""

        return self.machine.streaming_time(
            passes * elements * _COMPLEX_BYTES
        ) + self.machine.compute_time(passes * elements * flops_per_element)

    def _ft_cost_pre_tran1(self) -> float:
        # MCG of the local input block (one pass producing two checksums).
        return self._pass_cost(self.q, passes=1.0, flops_per_element=12.0)

    def _ft_cost_post_tran1(self) -> float:
        # MCV of the received data plus CMCG for the p-point FFTs.
        return self._pass_cost(self.q, passes=2.0, flops_per_element=10.0)

    def _ft_cost_fft1(self) -> float:
        # Input backup copy + CCG + CCV over the local (p, q/p) matrix.
        return self._pass_cost(self.q, passes=3.0, flops_per_element=10.0)

    def _ft_cost_pre_tran2(self) -> float:
        # MCV + twiddle (charged by the base class) + CMCG of the send data.
        return self._pass_cost(self.q, passes=2.0, flops_per_element=10.0)

    def _ft_cost_fft2(self) -> float:
        # Sequential optimized online scheme: 46 n operations (Section 7.1.4)
        # plus the extra passes it makes over the local array.
        return self.machine.compute_time(46.0 * self.q) + self.machine.streaming_time(
            4.0 * self.q * _COMPLEX_BYTES
        )

    def _ft_cost_post_tran3(self) -> float:
        # Final MCV of the delivered output.
        return self._pass_cost(self.q, passes=1.0, flops_per_element=8.0)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray, injector=None) -> ParallelExecution:
        injector = injector or NullInjector()
        x = np.ascontiguousarray(x, dtype=np.complex128)
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")

        p, q, sub = self.ranks, self.q, self.sub
        report = FTReport(scheme=self.name)
        timeline = VirtualTimeline(ranks=p)
        comm = SimCommunicator(p, injector=injector, protect_messages=True)

        dist = DistributedVector.from_global(x, p)

        # ----- MCG of the local inputs, then transpose 1 ----------------------
        timeline.compute("ft-mcg-input", self._ft_cost_pre_tran1())
        report.bump("memory-checksum-generations", p)

        dist = self._transpose(comm, dist)
        if self.overlap:
            timeline.overlapped(
                "transpose-1(+mcv/cmcg)", self._transpose_cost(), self._ft_cost_post_tran1()
            )
        else:
            timeline.communicate("transpose-1", self._transpose_cost())
            timeline.compute("ft-mcv-cmcg", self._ft_cost_post_tran1())
        report.bump("memory-verifications", p)

        # ----- FFT 1, protected (Fig. 4) ---------------------------------------
        locals_fft1 = []
        for rank in range(p):
            mat = np.ascontiguousarray(dist.local(rank).reshape(p, sub))
            injector.visit(FaultSite.RANK_LOCAL_MEMORY, mat, rank=rank)
            # reprolint: capability-ok - fft1_protected is the Fig. 4 scheme
            # wrapper built in __init__, which is unconditionally in-place
            # (a simulated-rank local matrix, not a backend program)
            self.fft1_protected.execute_inplace(mat, injector=injector, report=report, rank=rank)
            locals_fft1.append(mat)
        timeline.compute("fft-1(protected)", self._fft1_cost() + self._ft_cost_fft1())

        # ----- twiddle (DMR) + transpose 2 --------------------------------------
        for rank in range(p):
            twiddles = self._local_twiddles(rank)
            locals_fft1[rank] = dmr_elementwise(
                lambda rank=rank, twiddles=twiddles: locals_fft1[rank] * twiddles,
                injector=injector,
                site=FaultSite.TWIDDLE_COMPUTE,
                rank=rank,
                report=report,
                label="parallel-twiddle-dmr",
            )
        dist = DistributedVector([mat.reshape(q) for mat in locals_fft1])

        dist = self._transpose(comm, dist)
        if self.overlap:
            timeline.overlapped(
                "transpose-2(+mcv/tm/cmcg)",
                self._transpose_cost(),
                self._twiddle_cost() + self._ft_cost_pre_tran2(),
            )
        else:
            timeline.compute("twiddle(dmr)", 2.0 * self._twiddle_cost())
            timeline.compute("ft-mcv-tm-cmcg", self._ft_cost_pre_tran2())
            timeline.communicate("transpose-2", self._transpose_cost())

        # ----- FFT 2, protected by the sequential online scheme -----------------
        rows = []
        for rank in range(p):
            row = dist.local(rank)
            injector.visit(FaultSite.RANK_LOCAL_MEMORY, row, rank=rank)
            if self.fft2_strategy == "two-layer":
                result = self.fft2_protected.execute(row, injector)
                report.merge(result.report)
                rows.append(result.output)
            else:
                out = self.fft2_protected.execute(row, injector=injector, report=report, rank=rank)
                rows.append(out)
        dist = DistributedVector(rows)
        timeline.compute("fft-2(protected)", self._fft2_cost() + self._ft_cost_fft2())

        # ----- transpose 3, final verification, local reorder --------------------
        dist = self._transpose(comm, dist)
        timeline.communicate("transpose-3", self._transpose_cost())
        timeline.compute("ft-final-mcv", self._ft_cost_post_tran3())

        finals = []
        for rank in range(p):
            mat = dist.local(rank).reshape(p, sub)
            finals.append(np.ascontiguousarray(mat.T).reshape(q))
        timeline.compute("local-reorder", self._reorder_cost())

        if comm.corrected_blocks:
            report.record_correction(
                "memory-correct", "comm-block", None, f"{comm.corrected_blocks} block(s) repaired in transit"
            )
        if comm.unrecoverable_blocks:
            report.record_uncorrectable(
                f"{comm.unrecoverable_blocks} communicated block(s) could not be repaired"
            )

        output = DistributedVector(finals).to_global()
        injector.visit(FaultSite.OUTPUT, output)
        return ParallelExecution(output=output, timeline=timeline, report=report, communicator=comm)

    # ------------------------------------------------------------------
    def _transpose(self, comm: SimCommunicator, dist: DistributedVector) -> DistributedVector:
        """Blocking or pipelined transposition depending on the overlap flag."""

        if self.overlap:
            return pipelined_transpose(comm, dist)
        return comm.transpose(dist)

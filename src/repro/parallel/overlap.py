"""Algorithm 3: the communication-computation overlap schedule.

The paper replaces FFTW's blocking transpositions with a pipelined schedule
using two send and two receive buffers: while the messages for peer ``i`` are
in flight, the rank verifies/processes the data received from peer ``i-1``
and generates the send buffer for peer ``i+1``.  The fault-tolerance work
surrounding each transposition (memory checksum verification, twiddle
multiplication, checksum generation) is exactly the work that gets hidden.

:func:`pipelined_transpose` executes that schedule on the simulated
communicator.  Functionally the result equals a plain block transpose; the
value of the function is (a) it exercises the same buffer/choreography logic
as Algorithm 3 (tested against the blocking transpose), and (b) it reports
which work items were overlapped with which transfer, which the virtual
timeline uses to account the hidden time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.simmpi.comm import DistributedVector, SimCommunicator
from repro.simmpi.nonblocking import NonBlockingEngine

__all__ = ["OverlapSchedule", "pipelined_transpose"]


@dataclass
class OverlapSchedule:
    """Per-rank communication order for the pipelined transpose.

    The default schedule is the natural one (peer ``(rank + step) % p`` at
    step ``step``), which avoids hot-spotting a single destination the way a
    naive ``0, 1, 2, ...`` order would.
    """

    ranks: int

    def peers(self, rank: int) -> List[int]:
        return [(rank + step) % self.ranks for step in range(self.ranks)]


@dataclass
class PipelineTrace:
    """What each rank overlapped with which peer transfer (for the timeline)."""

    overlapped_items: Dict[int, List[str]] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)

    def items_for(self, rank: int) -> List[str]:
        return self.overlapped_items.get(rank, [])


def pipelined_transpose(
    comm: SimCommunicator,
    dist: DistributedVector,
    *,
    process: Optional[Callable[[int, int, np.ndarray], np.ndarray]] = None,
    generate: Optional[Callable[[int, int, np.ndarray], np.ndarray]] = None,
    trace: Optional[PipelineTrace] = None,
) -> DistributedVector:
    """Block transposition following the Algorithm 3 pipeline.

    Parameters
    ----------
    comm:
        The simulated communicator (provides rank count, byte accounting and
        per-block checksum protection).
    dist:
        The block-distributed vector to transpose.
    process:
        Optional hook ``process(rank, peer, block) -> block`` applied to every
        received block *while the next transfer is outstanding* (this is the
        "verify and process data" step of Algorithm 3 - e.g. a memory
        checksum verification or a twiddle multiplication).
    generate:
        Optional hook ``generate(rank, peer, block) -> block`` applied when
        the send buffer for ``peer`` is filled (e.g. checksum generation).
    trace:
        Optional trace collecting which work items were overlapped.

    Returns
    -------
    DistributedVector
        The transposed (and processed) distributed vector.
    """

    p = comm.ranks
    if dist.ranks != p:
        raise ValueError("distributed vector has a different rank count")
    local = dist.local_size
    if local % p != 0:
        raise ValueError(f"local size {local} is not divisible by {p}")
    sub = local // p
    schedule = OverlapSchedule(p)
    engine = NonBlockingEngine()
    trace = trace if trace is not None else PipelineTrace()

    # Phase A: every rank posts its sends following its own schedule, filling
    # the send buffer for the *next* peer while the current transfer is in
    # flight (the double-buffering of Algorithm 3).  In a single process the
    # "network" is a mailbox, so we post all sends first, logging the
    # generate-work that each rank performs while transfers are outstanding.
    for rank in range(p):
        peers = schedule.peers(rank)
        pending = []
        for step, peer in enumerate(peers):
            block = np.array(dist.local(rank)[peer * sub:(peer + 1) * sub], copy=True)
            if generate is not None:
                block = generate(rank, peer, block)
                engine.log_work(f"generate:{rank}->{peer}")
                trace.overlapped_items.setdefault(rank, []).append(f"generate:{rank}->{peer}")
            request = engine.isend(block, source=rank, dest=peer, tag=rank * p + peer)
            pending.append(request)
            # Double buffering: at most two transfers outstanding per rank.
            if len(pending) >= 2:
                engine.wait(pending.pop(0))
        for request in pending:
            engine.wait(request)

    # Phase B: every rank receives following the mirrored schedule, verifying
    # and processing each block while the next receive is outstanding.
    new_blocks: List[np.ndarray] = []
    for rank in range(p):
        received: Dict[int, np.ndarray] = {}
        peers = [(rank - step) % p for step in range(p)]
        outstanding = []
        for peer in peers:
            request = engine.irecv(source=peer, dest=rank, tag=peer * p + rank)
            outstanding.append((peer, request))
            if len(outstanding) >= 2:
                prev_peer, prev_request = outstanding.pop(0)
                block = engine.wait(prev_request)
                block = _deliver(comm, prev_peer, rank, block)
                if process is not None:
                    block = process(rank, prev_peer, block)
                    engine.log_work(f"process:{prev_peer}->{rank}")
                    trace.overlapped_items.setdefault(rank, []).append(f"process:{prev_peer}->{rank}")
                received[prev_peer] = block
        for peer, request in outstanding:
            block = engine.wait(request)
            block = _deliver(comm, peer, rank, block)
            if process is not None:
                block = process(rank, peer, block)
                trace.overlapped_items.setdefault(rank, []).append(f"process:{peer}->{rank}")
            received[peer] = block
        new_blocks.append(np.concatenate([received[src] for src in range(p)]))

    trace.events.extend(engine.issued_events)
    return DistributedVector(new_blocks)


def _deliver(comm: SimCommunicator, source: int, dest: int, block: np.ndarray) -> np.ndarray:
    """Run the communicator's transit path (injection, checksums, accounting)."""

    recv = comm.exchange_blocks_single(source, dest, block)
    return recv

"""The six-step parallel 1-D FFT on the simulated communicator.

With ``N = p * q`` (``q = N/p``) the transform is the two-layer
decomposition whose *inner* transforms have size ``p`` (the paper:
"a plan which computes N/p p-point FFTs at first and then p N/p-point
FFTs").  Distributed over ``p`` ranks with a block layout, the execution is
the classical six-step algorithm:

1. transpose 1  - bring the stride-``q`` columns of the ``(p, q)`` view onto
   single ranks,
2. FFT 1        - every rank runs ``q/p`` ``p``-point transforms,
3. twiddle      - multiply by :math:`\\omega_N^{n_1 j_2}` (locally),
4. transpose 2  - bring complete rows onto single ranks,
5. FFT 2        - every rank runs one ``q``-point transform,
6. transpose 3 + local reordering - deliver the block-distributed output.

The class computes the true numerical result (all ranks simulated in one
process) and, in parallel, advances a :class:`~repro.simmpi.timeline.VirtualTimeline`
using a :class:`~repro.simmpi.machine.MachineModel`, which is what the
scaling benchmarks (Fig. 8, Tables 2-3) report.

``overlap_twiddle=True`` reproduces "opt-FFTW": the twiddle multiplication
is hidden behind transpose 2 (the paper notes its overlap optimization also
benefits the unprotected library).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.detection import FTReport
from repro.faults.injector import NullInjector
from repro.faults.models import FaultSite
from repro.fftlib.executor import fft_along_axis
from repro.fftlib.two_layer import TwoLayerPlan
from repro.simmpi.comm import DistributedVector, SimCommunicator
from repro.simmpi.machine import MachineModel, TIANHE2_LIKE
from repro.simmpi.timeline import VirtualTimeline
from repro.utils.validation import ensure_positive_int

__all__ = ["ParallelExecution", "ParallelFFT"]

_COMPLEX_BYTES = 16


@dataclass
class ParallelExecution:
    """Result of one (simulated) parallel transform."""

    output: np.ndarray
    timeline: VirtualTimeline
    report: FTReport
    communicator: SimCommunicator

    @property
    def virtual_time(self) -> float:
        return self.timeline.elapsed


class ParallelFFT:
    """Unprotected six-step parallel FFT (the parallel "FFTW" baseline)."""

    name = "parallel-fftw"

    def __init__(
        self,
        n: int,
        ranks: int,
        *,
        machine: MachineModel = TIANHE2_LIKE,
        overlap_twiddle: bool = False,
        protect_messages: bool = False,
    ) -> None:
        self.n = ensure_positive_int(n, name="n")
        self.ranks = ensure_positive_int(ranks, name="ranks")
        if n % (ranks * ranks) != 0:
            raise ValueError(
                f"n={n} must be divisible by ranks^2={ranks * ranks} for the six-step layout"
            )
        self.q = n // ranks  # local / FFT2 size
        self.sub = self.q // ranks  # sub-block size exchanged per peer
        self.machine = machine
        self.overlap_twiddle = bool(overlap_twiddle)
        self.protect_messages = bool(protect_messages)
        self._fft2_plan: Optional[TwoLayerPlan] = None
        if overlap_twiddle:
            self.name = "parallel-opt-fftw"

    @property
    def fft2_plan(self) -> TwoLayerPlan:
        """The local FFT2 plan, created lazily.

        Lazy creation matters because the scaling benchmarks instantiate
        these objects at the paper's problem sizes purely to evaluate
        :meth:`predict_timeline`; allocating a 2^24-point twiddle table for
        that would be wasted memory.
        """

        if self._fft2_plan is None:
            self._fft2_plan = TwoLayerPlan(self.q)
        return self._fft2_plan

    # ------------------------------------------------------------------
    # cost helpers (per rank)
    # ------------------------------------------------------------------
    def _transpose_cost(self) -> float:
        comm = SimCommunicator(self.ranks, protect_messages=self.protect_messages)
        bytes_per_rank = comm.bytes_per_rank_per_transpose(self.q)
        return self.machine.alltoall_time(
            bytes_per_rank * self.ranks / max(self.ranks - 1, 1), self.ranks
        )

    def _fft1_cost(self) -> float:
        return self.machine.fft_time(self.ranks, batch=self.sub)

    def _twiddle_cost(self) -> float:
        local_bytes = self.q * _COMPLEX_BYTES
        return self.machine.compute_time(6 * self.q) + self.machine.streaming_time(2 * local_bytes)

    def _fft2_cost(self) -> float:
        return self.machine.fft_time(self.q)

    def _reorder_cost(self) -> float:
        return self.machine.streaming_time(2 * self.q * _COMPLEX_BYTES)

    # ------------------------------------------------------------------
    def predict_timeline(self) -> VirtualTimeline:
        """Build the virtual timeline without executing the transform.

        Used by the scaling benchmarks to evaluate the cost model at the
        paper's problem sizes (2^31 - 2^34 elements, 128 - 1024 ranks), which
        are far beyond what the numerical simulation can execute.
        """

        timeline = VirtualTimeline(ranks=self.ranks)
        timeline.communicate("transpose-1", self._transpose_cost())
        timeline.compute("fft-1", self._fft1_cost())
        if self.overlap_twiddle:
            timeline.overlapped("transpose-2(+twiddle)", self._transpose_cost(), self._twiddle_cost())
        else:
            timeline.compute("twiddle", self._twiddle_cost())
            timeline.communicate("transpose-2", self._transpose_cost())
        timeline.compute("fft-2", self._fft2_cost())
        timeline.communicate("transpose-3", self._transpose_cost())
        timeline.compute("local-reorder", self._reorder_cost())
        return timeline

    # ------------------------------------------------------------------
    def _local_twiddles(self, rank: int) -> np.ndarray:
        """Twiddle factors for rank ``rank``'s ``(p, sub)`` block of columns."""

        j2 = np.arange(self.ranks).reshape(self.ranks, 1)
        n1 = rank * self.sub + np.arange(self.sub).reshape(1, self.sub)
        return np.exp(-2j * np.pi * (j2 * n1) / self.n)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray, injector=None) -> ParallelExecution:
        """Run the six-step transform and return output + virtual timeline."""

        injector = injector or NullInjector()
        x = np.ascontiguousarray(x, dtype=np.complex128)
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")

        p, q, sub = self.ranks, self.q, self.sub
        report = FTReport(scheme=self.name)
        timeline = VirtualTimeline(ranks=p)
        comm = SimCommunicator(p, injector=injector, protect_messages=self.protect_messages)

        dist = DistributedVector.from_global(x, p)

        # -- step 1: transpose 1 --------------------------------------------
        dist = comm.transpose(dist)
        timeline.communicate("transpose-1", self._transpose_cost())

        # -- step 2: FFT 1 (q/p p-point FFTs per rank) -----------------------
        locals_fft1 = []
        for rank in range(p):
            mat = dist.local(rank).reshape(p, sub)
            injector.visit(FaultSite.RANK_LOCAL_MEMORY, mat, rank=rank)
            out = fft_along_axis(mat, axis=0)
            injector.visit(FaultSite.RANK_LOCAL_FFT, out, rank=rank)
            locals_fft1.append(out)
        timeline.compute("fft-1", self._fft1_cost())

        # -- step 3: twiddle (optionally overlapped with transpose 2) --------
        for rank in range(p):
            locals_fft1[rank] = locals_fft1[rank] * self._local_twiddles(rank)
        dist = DistributedVector([mat.reshape(q) for mat in locals_fft1])

        # -- step 4: transpose 2 ----------------------------------------------
        dist = comm.transpose(dist)
        if self.overlap_twiddle:
            timeline.overlapped("transpose-2(+twiddle)", self._transpose_cost(), self._twiddle_cost())
        else:
            timeline.compute("twiddle", self._twiddle_cost())
            timeline.communicate("transpose-2", self._transpose_cost())

        # -- step 5: FFT 2 (one q-point FFT per rank) --------------------------
        rows = []
        for rank in range(p):
            row = dist.local(rank)
            injector.visit(FaultSite.RANK_LOCAL_MEMORY, row, rank=rank)
            out = self.fft2_plan.execute(row)
            injector.visit(FaultSite.RANK_LOCAL_FFT, out, rank=rank)
            rows.append(out)
        dist = DistributedVector(rows)
        timeline.compute("fft-2", self._fft2_cost())

        # -- step 6: transpose 3 + local reordering ----------------------------
        dist = comm.transpose(dist)
        timeline.communicate("transpose-3", self._transpose_cost())

        finals = []
        for rank in range(p):
            mat = dist.local(rank).reshape(p, sub)
            finals.append(np.ascontiguousarray(mat.T).reshape(q))
        timeline.compute("local-reorder", self._reorder_cost())

        output = DistributedVector(finals).to_global()
        injector.visit(FaultSite.OUTPUT, output)
        return ParallelExecution(output=output, timeline=timeline, report=report, communicator=comm)

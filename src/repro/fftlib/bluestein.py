"""Bluestein (chirp-z) transform for large prime sizes.

FFTW falls back to Rader/Bluestein algorithms when a transform size contains
a large prime factor.  The ABFT schemes never require this path (the paper's
two-layer decomposition uses highly composite sizes), but a credible FFT
library must accept arbitrary sizes, and the planner tests exercise it.

The algorithm expresses an ``n``-point DFT as a circular convolution of two
chirp-modulated sequences, evaluated with power-of-two FFTs of length
``M >= 2n - 1``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bluestein_fft", "next_fast_power_of_two"]


def next_fast_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n``."""

    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


def _chirp(n: int) -> np.ndarray:
    """Return ``exp(-i pi k^2 / n)`` for ``k = 0..n-1`` with reduced arguments.

    The exponent is reduced modulo ``2 n`` before the division so the phase
    stays accurate even for very large ``n`` (naively squaring the index loses
    precision once ``k^2 / n`` exceeds ~2^53).
    """

    k = np.arange(n, dtype=np.int64)
    reduced = (k * k) % (2 * n)
    return np.exp(-1j * np.pi * reduced / n)


def bluestein_fft(x: np.ndarray) -> np.ndarray:
    """Forward DFT of the last axis of ``x`` via the chirp-z transform."""

    # The padded power-of-two convolutions go through the compiled
    # stage-program executor (imported lazily: the executor's prime base
    # kernel is this function).
    from repro.fftlib.executor import fft as _fft, ifft as _ifft

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    if n == 1:
        return x.copy()

    chirp = _chirp(n)
    a = x * chirp

    m = next_fast_power_of_two(2 * n - 1)

    # Kernel b_k = conj(chirp)_{|k|} arranged for circular convolution.
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1:] = np.conj(chirp[1:][::-1])

    a_padded = np.zeros(x.shape[:-1] + (m,), dtype=np.complex128)
    a_padded[..., :n] = a

    conv = _ifft(_fft(a_padded) * _fft(b))
    return chirp * conv[..., :n]

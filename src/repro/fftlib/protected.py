"""Fused protected stage programs: ABFT compiled into the transform.

The scheme objects in :mod:`repro.core` verify a transform by wrapping it -
they run the two-part decomposition, re-derive checksum operators per call,
and pay several extra full passes over the data even when no fault injector
is live.  ``BENCH_fft_speed.json`` put that wrapper at 3.7-9.9x the
unprotected compiled transform, which contradicts the paper's low-overhead
claim (ROADMAP item 1).

This module makes a *protected* plan a different compiled program instead of
a wrapper around one.  :class:`ProtectedStageProgram` lowers, at plan time,
everything the fault-free verification needs into a frozen object sitting
next to the ordinary :class:`~repro.fftlib.executor.StageProgram`:

* **Per-stage taps.**  The executor maintains the decimation-in-time
  invariant: after the combine stage of span ``L`` the state rows are the
  ``L``-point DFTs of the ``count = n/L`` stride-``count`` input
  subsequences.  Summing those rows therefore yields ``DFT_L(S_L)`` where
  ``S_L`` is the column-sum fold ``x.reshape(L, count).sum(axis=1)`` of the
  *input*, so the checksum identity ``r_L . DFT_L(S_L) = (r_L A_L) . S_L``
  gives an interior verification point per stage.  The tap side is a cheap
  row reduction of output the BLAS combine has just produced (still warm in
  cache); the reference side telescopes - ``S_L`` is a fold of
  ``S_{r*L}`` - so *all* stage references together cost about ``2n``
  complex operations, computed once per execution by :meth:`encode`.
* **Precomputed operators.**  The per-stage weight vectors ``r_L``
  (computational checksums) and closed-form encodings ``c_L = r_L A_L``,
  the end-to-end pair matching :class:`~repro.core.constants.SchemeConstants`
  bit-for-bit, the memory-checksum locating pair ``(w1, w2)`` and its
  plan-time weight RMS are all frozen into the program - nothing is
  re-derived per call.

The final tap (span ``n``, count 1) *is* the paper's end-to-end offline
check: its reference is ``c . x`` and its value ``r . X``, bit-identical to
what the legacy scheme computes.  The transform loop itself replicates
:meth:`StageProgram.execute` operation-for-operation, so the fused spectrum
is bit-identical to the unprotected compiled transform.  Live fault
injectors never reach this module - ``FTPlan`` routes them through the
paper-exact scheme path - so detection/correction coverage is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.fftlib.executor import StageProgram, _cached_program, _work_buffers, get_program
from repro.telemetry import trace as _trace

__all__ = [
    "StageTap",
    "ProtectedStageProgram",
    "get_protected_program",
]

#: Interior (per-stage) taps are built only for sizes at or above this.
#: Below it the per-stage row sums and telescoped reference folds are a
#: double-digit percentage of the transform itself (at 65536 they measured
#: ~20% + ~19% on top of the compiled program, blowing the <= 1.5x budget
#: for large sizes) while adding nothing the end-to-end check does not
#: already guarantee; the final tap - the paper's offline verification - is
#: always present, and live injectors never route here.
_INTERIOR_TAP_MIN = 131072


@dataclass(frozen=True)
class StageTap:
    """One interior (or final) verification point of a fused program.

    Attributes
    ----------
    span:
        Length ``L`` of the transforms completed when this tap fires.
    count:
        Number of state rows summed by the tap (``n / span``).
    weights:
        ``r_L`` - the computational checksum vector applied to the summed
        state rows (the *tap* side of the identity).
    encode:
        ``c_L = r_L A_L`` - the folded input encoding applied to ``S_L``
        (the *reference* side, consumed by
        :meth:`ProtectedStageProgram.encode`).
    """

    span: int
    count: int
    weights: np.ndarray
    encode: np.ndarray


@dataclass(frozen=True, eq=False)
class ProtectedStageProgram:
    """A frozen, fully lowered protected execution recipe for one size.

    Immutable after construction and safe to share across threads and the
    program LRU: execution uses only the executor's thread-local ping-pong
    scratch plus per-call O(stages) tap vectors.

    Attributes
    ----------
    n:
        Transform length.
    program:
        The underlying unprotected :class:`StageProgram` (shared with the
        plain compiled path via the program cache).
    taps:
        One :class:`StageTap` per verification point, innermost first: the
        base kernel, then every combine stage (sizes below
        ``_INTERIOR_TAP_MIN`` carry only the final tap).  ``taps[-1]``
        always has
        ``span == n`` and is the paper's end-to-end offline check; its
        ``encode``/``weights`` are built with the same encoding family
        (closed-form vs naive) as :class:`SchemeConstants`, so the
        reference checksum is bit-identical to the legacy scheme's.
    optimized / memory_ft:
        The plan-configuration axes the operators were built for (part of
        the program-cache key).
    w1, w2:
        Memory-checksum locating pair (Section 4.1 modified weights when
        ``optimized``, classic otherwise); ``None`` when ``memory_ft`` is
        off.
    w1_rms:
        Plan-time weight RMS of ``w1`` for the memory threshold.
    reuse_input_checksum:
        True when ``w1`` *is* the end-to-end encoding ``c`` (the modified
        weights of the optimized scheme), so ``s1`` equals the input
        checksum bit-for-bit and need not be recomputed.
    """

    n: int
    program: StageProgram
    taps: Tuple[StageTap, ...]
    optimized: bool
    memory_ft: bool
    w1: "np.ndarray | None"
    w2: "np.ndarray | None"
    w1_rms: float
    reuse_input_checksum: bool

    # ------------------------------------------------------------------
    @property
    def c(self) -> np.ndarray:
        """End-to-end input encoding ``c = r A`` (bit-identical to legacy)."""

        return self.taps[-1].encode

    @property
    def r(self) -> np.ndarray:
        """End-to-end computational weights ``r``."""

        return self.taps[-1].weights

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, n: int, *, optimized: bool, memory_ft: bool) -> "ProtectedStageProgram":
        """Lower size ``n`` plus its verification operators, once.

        The core-layer operator constructors are imported lazily (the same
        direction :meth:`SchemeConstants.with_inplace` already crosses) so
        ``fftlib`` keeps no hard dependency on ``repro.core``.
        """

        from repro.core.checksums import (
            computational_weights,
            input_checksum_weights,
            input_checksum_weights_naive,
            memory_weights_classic,
            memory_weights_modified,
        )
        from repro.core.constants import weight_rms

        program = get_program(n)
        c_n = input_checksum_weights(n) if optimized else input_checksum_weights_naive(n)
        r_n = computational_weights(n)
        taps = []
        if program.stages and n >= _INTERIOR_TAP_MIN:
            base = program.base
            taps.append(
                StageTap(
                    span=base,
                    count=n // base,
                    weights=computational_weights(base),
                    # interior encodings always use the closed form: they are
                    # internal to the fused program, not a scheme contract
                    encode=input_checksum_weights(base),
                )
            )
            for stage in program.stages[:-1]:
                span = stage.radix * stage.span
                taps.append(
                    StageTap(
                        span=span,
                        count=stage.count,
                        weights=computational_weights(span),
                        encode=input_checksum_weights(span),
                    )
                )
        taps.append(StageTap(span=n, count=1, weights=r_n, encode=c_n))

        w1 = w2 = None
        w1_rms = 0.0
        if memory_ft:
            if optimized:
                w1, w2 = memory_weights_modified(n, base=c_n)
            else:
                w1, w2 = memory_weights_classic(n)
            w1_rms = weight_rms(w1)
        if _trace.active:
            _trace.emit(
                "protected-compile",
                n=int(n),
                optimized=bool(optimized),
                memory_ft=bool(memory_ft),
                taps=len(taps),
                interior_taps=len(taps) - 1,
            )
        return cls(
            n=int(n),
            program=program,
            taps=tuple(taps),
            optimized=bool(optimized),
            memory_ft=bool(memory_ft),
            w1=w1,
            w2=w2,
            w1_rms=w1_rms,
            reuse_input_checksum=w1 is c_n,
        )

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Reference checksums for every tap, via the telescoping fold.

        ``S_L = S_{r*L}.reshape(L, r).sum(axis=1)`` lets the references be
        computed outermost-first from ``S_n = x`` itself, so the whole chain
        costs about ``2n`` complex operations.  ``refs[-1]`` is the
        end-to-end input checksum ``c . x``, bit-identical to the legacy
        scheme's (same ``np.dot`` on the same operands).
        """

        taps = self.taps
        # reprolint: alloc-ok - O(stages) reference vector, not O(n)
        refs = np.empty(len(taps), dtype=np.complex128)
        s = np.asarray(x, dtype=np.complex128).reshape(-1)
        # Same np.dot / suppressed-overflow contract as weighted_sum, one
        # errstate entry for the whole chain (tap shapes are guaranteed by
        # construction).
        with np.errstate(over="ignore", invalid="ignore"):
            for i in range(len(taps) - 1, -1, -1):
                tap = taps[i]
                if tap.span != s.size:
                    s = s.reshape(tap.span, -1).sum(axis=1)
                refs[i] = np.dot(tap.encode, s)
        return refs

    # ------------------------------------------------------------------
    def execute_tapped(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Forward DFT of one vector plus the per-stage tap checksums.

        Replicates :meth:`StageProgram.execute` operation-for-operation
        (same scratch, same kernel calls, same write order) so the returned
        spectrum is bit-identical to the unprotected compiled transform;
        between stages each tap sums the just-written combine output rows
        (a cache-warm row read) and contracts them with ``r_L``.
        """

        prog = self.program
        n = prog.n
        xs = x.reshape(1, n)
        if not xs.flags.c_contiguous:
            # reprolint: alloc-ok - normalisation fallback, never taken for
            # conforming (contiguous) callers
            xs = np.ascontiguousarray(xs)
        # reprolint: alloc-ok - O(stages) tap vector, not O(n)
        taps_out = np.empty(len(self.taps), dtype=np.complex128)
        # Small sizes carry only the final (end-to-end) tap; see
        # _INTERIOR_TAP_MIN.
        interior = len(self.taps) > 1

        if not prog.stages:
            # Whole transform handled by the base kernel; the only tap is
            # the end-to-end check on the output.
            out = prog.execute(xs).reshape(n)
            taps_out[0] = np.dot(self.taps[0].weights, out)
            return out, taps_out

        work_a, work_b = _work_buffers(n)

        base = prog.base
        q = n // base
        gathered = xs.reshape(1, base, q).transpose(0, 2, 1)  # view
        if prog.base_kind == "bluestein":
            from repro.fftlib.bluestein import bluestein_fft

            # reprolint: alloc-ok - the Bluestein base kernel allocates its
            # own output; large-prime sizes never hit the matmul fast path
            current = np.ascontiguousarray(bluestein_fft(gathered))
        else:
            current = np.matmul(
                gathered, prog.base_matrix, out=work_a[:n].reshape(1, q, base)
            )
        if interior:
            taps_out[0] = np.dot(
                self.taps[0].weights, current.reshape(q, base).sum(axis=0)
            )

        last = len(prog.stages) - 1
        for index, stage in enumerate(prog.stages):
            r, p, count = stage.radix, stage.span, stage.count
            grouped = work_b[:n].reshape(1, r, count, p)
            np.multiply(
                current.reshape(1, r, count, p),
                stage.twiddle[:, None, :],
                out=grouped,
            )
            if index == last:
                # reprolint: alloc-ok - the result array itself (out-of-place
                # contract, mirrors StageProgram.execute)
                target = np.empty((1, count, r * p), dtype=np.complex128)
            else:
                target = work_a[:n].reshape(1, count, r * p)
            np.matmul(
                grouped.transpose(0, 2, 3, 1),
                stage.matrix,
                out=target.reshape(1, count, r, p).transpose(0, 1, 3, 2),
            )
            current = target
            if interior:
                tap = self.taps[index + 1]
                if count == 1:
                    taps_out[index + 1] = np.dot(tap.weights, current.reshape(n))
                else:
                    taps_out[index + 1] = np.dot(
                        tap.weights, current.reshape(count, r * p).sum(axis=0)
                    )
            elif index == last:
                taps_out[0] = np.dot(self.taps[0].weights, current.reshape(n))
        return current.reshape(n), taps_out

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line listing: the wrapped program plus the tap spans."""

        spans = ",".join(str(tap.span) for tap in self.taps)
        return (
            f"ProtectedStageProgram(n={self.n}, taps=[{spans}], "
            f"optimized={self.optimized}, memory_ft={self.memory_ft}, "
            f"inner={self.program.describe()})"
        )


def get_protected_program(n: int, *, optimized: bool, memory_ft: bool) -> ProtectedStageProgram:
    """Fused protected program for ``n``, from the shared program LRU."""

    key = ("protected", int(n), bool(optimized), bool(memory_ft))
    return _cached_program(
        key, lambda: ProtectedStageProgram.build(n, optimized=optimized, memory_ft=memory_ft)
    )

"""The highest-level ``N = m * k`` Cooley-Tukey decomposition.

This is the structure the online ABFT scheme of the paper attaches to
(Fig. 1): an ``N``-point transform is computed as

1. ``k`` inner transforms of size ``m`` over the stride-``k`` subsequences of
   the input (the columns of ``x.reshape(m, k)``),
2. an elementwise twiddle multiplication with
   :math:`\\omega_N^{n_1 j_2}`, and
3. ``m`` outer transforms of size ``k`` over the rows of the intermediate
   array.

The class exposes *stage-level* entry points (including single-sub-FFT
execution) because the ABFT schemes need to

* verify each sub-FFT right after it is produced,
* recompute exactly one sub-FFT after a fault, and
* interleave checksum generation with the stages (incremental generation,
  postponed verification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fftlib.backends import resolve_backend_name
from repro.fftlib.factorization import balanced_split
from repro.fftlib.plan import Plan, PlanDirection
from repro.fftlib.planner import Planner, get_default_planner
from repro.fftlib.twiddle import get_global_cache
from repro.utils.validation import as_complex_vector, ensure_positive_int

__all__ = ["TwoLayerDecomposition", "TwoLayerPlan"]


@dataclass(frozen=True)
class TwoLayerDecomposition:
    """The factorisation ``n = m * k`` and its index mapping.

    ``m`` is the size of the inner (first-part) transforms, ``k`` the number
    of them; the second part runs ``m`` transforms of size ``k``.  The
    convention ``m >= k`` follows the paper (both factors are
    Theta(sqrt(N)) for the balanced split chosen by default).
    """

    n: int
    m: int
    k: int

    def __post_init__(self) -> None:
        ensure_positive_int(self.n, name="n")
        ensure_positive_int(self.m, name="m")
        ensure_positive_int(self.k, name="k")
        if self.m * self.k != self.n:
            raise ValueError(f"m * k must equal n (got {self.m} * {self.k} != {self.n})")

    @classmethod
    def for_size(cls, n: int, m: Optional[int] = None, k: Optional[int] = None) -> "TwoLayerDecomposition":
        """Build a decomposition, balancing the factors when not specified."""

        n = ensure_positive_int(n, name="n")
        if m is None and k is None:
            m, k = balanced_split(n)
        elif m is None:
            k = ensure_positive_int(k, name="k")
            if n % k != 0:
                raise ValueError(f"k={k} does not divide n={n}")
            m = n // k
        elif k is None:
            m = ensure_positive_int(m, name="m")
            if n % m != 0:
                raise ValueError(f"m={m} does not divide n={n}")
            k = n // m
        return cls(n=n, m=int(m), k=int(k))

    def input_index(self, sub_fft: int, element: int) -> int:
        """Flat input index of ``element`` within inner sub-FFT ``sub_fft``.

        Inner sub-FFT ``i`` reads the stride-``k`` subsequence starting at
        offset ``i``.
        """

        return element * self.k + sub_fft

    def output_index(self, outer_index: int, inner_output: int) -> int:
        """Flat output index for outer transform result ``(j1, j2)``."""

        return outer_index * self.m + inner_output


class TwoLayerPlan:
    """Out-of-place two-layer plan with stage-level execution.

    Parameters
    ----------
    n:
        Transform size.
    m, k:
        Optional explicit factors (``m`` = inner size).  Balanced by default.
    direction:
        Forward or backward.  The backward plan composes the backward inner
        and outer plans with conjugated twiddles, which yields the fully
        normalised inverse (``1/m * 1/k = 1/n``).
    planner:
        Planner used to create the inner/outer sub-plans.
    backend:
        Sub-FFT kernel registry name (see :mod:`repro.fftlib.backends`);
        ``None`` uses the process-wide default.
    """

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        direction: PlanDirection = PlanDirection.FORWARD,
        planner: Optional[Planner] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.decomposition = TwoLayerDecomposition.for_size(n, m, k)
        self.direction = direction
        self.backend = resolve_backend_name(backend)
        planner = planner or get_default_planner()
        self.inner_plan: Plan = planner.plan(self.m, direction, self.backend)
        self.outer_plan: Plan = planner.plan(self.k, direction, self.backend)
        self._twiddles = get_global_cache().stage(
            self.m, self.k, inverse=(direction is PlanDirection.BACKWARD)
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.decomposition.n

    @property
    def m(self) -> int:
        return self.decomposition.m

    @property
    def k(self) -> int:
        return self.decomposition.k

    @property
    def twiddles(self) -> np.ndarray:
        """The ``(m, k)`` twiddle matrix applied between the two parts."""

        return self._twiddles

    # ------------------------------------------------------------------
    # stage-level API
    # ------------------------------------------------------------------
    def gather_input(self, x: np.ndarray) -> np.ndarray:
        """Reshape the flat input into the ``(m, k)`` working matrix.

        Column ``i`` of the result is the (strided) input of inner sub-FFT
        ``i``; no data is copied beyond what the reshape requires.
        """

        x = as_complex_vector(x, name="x")
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        return x.reshape(self.m, self.k)

    def stage1(self, work: np.ndarray) -> np.ndarray:
        """Run all ``k`` inner ``m``-point transforms (columns of ``work``)."""

        self._check_work(work)
        return self.inner_plan.execute_batch(work, axis=0)

    def stage1_single(self, work: np.ndarray, index: int) -> np.ndarray:
        """Run only the ``index``-th inner transform (used for recovery)."""

        self._check_work(work)
        if not 0 <= index < self.k:
            raise IndexError(f"inner sub-FFT index {index} out of range [0, {self.k})")
        column = np.ascontiguousarray(work[:, index])
        return self.inner_plan.execute(column)

    def stage1_columns(self, work: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Run the inner transforms for columns ``start:stop`` (batched).

        The columns are gathered into a contiguous buffer first; this is the
        Section 4.4 / 6.2 access pattern (the strided columns are touched
        once and then reused from cache-friendly contiguous storage).
        """

        self._check_work(work)
        columns = np.ascontiguousarray(work[:, start:stop])
        return self.inner_plan.execute_batch(columns, axis=0)

    def apply_twiddle(self, intermediate: np.ndarray) -> np.ndarray:
        """Multiply the intermediate matrix by the stage twiddles."""

        self._check_work(intermediate)
        return intermediate * self._twiddles

    def twiddle_column(self, column: np.ndarray, index: int) -> np.ndarray:
        """Twiddle a single inner-transform output column."""

        if column.shape != (self.m,):
            raise ValueError(f"column must have shape ({self.m},)")
        return column * self._twiddles[:, index]

    def stage2(self, work: np.ndarray) -> np.ndarray:
        """Run all ``m`` outer ``k``-point transforms (rows of ``work``)."""

        self._check_work(work)
        return self.outer_plan.execute_batch(work, axis=1)

    def stage2_single(self, work: np.ndarray, index: int) -> np.ndarray:
        """Run only the ``index``-th outer transform (row ``index``)."""

        self._check_work(work)
        if not 0 <= index < self.m:
            raise IndexError(f"outer sub-FFT index {index} out of range [0, {self.m})")
        row = np.ascontiguousarray(work[index, :])
        return self.outer_plan.execute(row)

    def stage2_rows(self, work: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Run the outer transforms for rows ``start:stop`` (batched)."""

        self._check_work(work)
        rows = np.ascontiguousarray(work[start:stop, :])
        return self.outer_plan.execute_batch(rows, axis=1)

    def scatter_output(self, result: np.ndarray) -> np.ndarray:
        """Map the ``(m, k)`` outer-transform result to the flat output.

        ``result[j2, j1]`` holds output frequency ``j1 * m + j2``.
        """

        self._check_work(result)
        return np.ascontiguousarray(result.T).reshape(self.n)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Full out-of-place execution of the plan."""

        work = self.gather_input(x)
        intermediate = self.stage1(work)
        twiddled = self.apply_twiddle(intermediate)
        result = self.stage2(twiddled)
        return self.scatter_output(result)

    # ------------------------------------------------------------------
    def _check_work(self, work: np.ndarray) -> None:
        if work.shape != (self.m, self.k):
            raise ValueError(
                f"working array must have shape ({self.m}, {self.k}), got {work.shape}"
            )

    def describe(self) -> str:
        return (
            f"TwoLayerPlan(n={self.n} = {self.m} x {self.k}, "
            f"direction={self.direction.value}, backend={self.backend})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()

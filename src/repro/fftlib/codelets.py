"""Hand-written small-size FFT "codelets".

FFTW generates straight-line code for small transform sizes and builds large
transforms out of those codelets.  This module provides the same leaf level:
explicit butterfly implementations for sizes 1-5 and 8 (plus composed
codelets for 6 and 16), all vectorised over arbitrary leading batch axes so a
single call transforms thousands of sub-vectors at once.

Each codelet takes an array of shape ``(..., n)`` and returns the transform
along the last axis.  Forward transforms use the negative-exponent convention
of the paper; inverse codelets are obtained by conjugation in
:func:`apply_codelet`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.fftlib.dft import direct_dft

__all__ = ["SUPPORTED_CODELET_SIZES", "has_codelet", "apply_codelet", "codelet_flop_count"]

_SQRT3_2 = np.sqrt(3.0) / 2.0
# Constants for the radix-5 butterfly (real/imag parts of the 5th roots).
_C5_1 = np.cos(2 * np.pi / 5)
_S5_1 = np.sin(2 * np.pi / 5)
_C5_2 = np.cos(4 * np.pi / 5)
_S5_2 = np.sin(4 * np.pi / 5)


def _codelet_1(x: np.ndarray) -> np.ndarray:
    return x.copy()


def _codelet_2(x: np.ndarray) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    out = np.empty_like(x)
    out[..., 0] = a + b
    out[..., 1] = a - b
    return out


def _codelet_3(x: np.ndarray) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    c = x[..., 2]
    t1 = b + c
    t2 = a - 0.5 * t1
    t3 = -1j * _SQRT3_2 * (b - c)
    out = np.empty_like(x)
    out[..., 0] = a + t1
    out[..., 1] = t2 + t3
    out[..., 2] = t2 - t3
    return out


def _codelet_4(x: np.ndarray) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    c = x[..., 2]
    d = x[..., 3]
    t0 = a + c
    t1 = a - c
    t2 = b + d
    t3 = -1j * (b - d)
    out = np.empty_like(x)
    out[..., 0] = t0 + t2
    out[..., 1] = t1 + t3
    out[..., 2] = t0 - t2
    out[..., 3] = t1 - t3
    return out


def _codelet_5(x: np.ndarray) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    c = x[..., 2]
    d = x[..., 3]
    e = x[..., 4]
    t1 = b + e
    t2 = b - e
    t3 = c + d
    t4 = c - d
    out = np.empty_like(x)
    out[..., 0] = a + t1 + t3
    m1 = a + _C5_1 * t1 + _C5_2 * t3
    m2 = a + _C5_2 * t1 + _C5_1 * t3
    s1 = -1j * (_S5_1 * t2 + _S5_2 * t4)
    s2 = -1j * (_S5_2 * t2 - _S5_1 * t4)
    out[..., 1] = m1 + s1
    out[..., 4] = m1 - s1
    out[..., 2] = m2 + s2
    out[..., 3] = m2 - s2
    return out


def _codelet_6(x: np.ndarray) -> np.ndarray:
    # 6 = 2 * 3 by the prime-factor (Good-Thomas style DIT) split: even/odd
    # interleave into two radix-3 transforms combined by a radix-2 stage with
    # twiddles.
    even = _codelet_3(x[..., 0::2])
    odd = _codelet_3(x[..., 1::2])
    w = np.exp(-2j * np.pi * np.arange(3) / 6)
    odd = odd * w
    out = np.empty_like(x)
    out[..., 0:3] = even + odd
    out[..., 3:6] = even - odd
    return out


def _codelet_8(x: np.ndarray) -> np.ndarray:
    even = _codelet_4(x[..., 0::2])
    odd = _codelet_4(x[..., 1::2])
    w = np.exp(-2j * np.pi * np.arange(4) / 8)
    odd = odd * w
    out = np.empty_like(x)
    out[..., 0:4] = even + odd
    out[..., 4:8] = even - odd
    return out


def _codelet_16(x: np.ndarray) -> np.ndarray:
    even = _codelet_8(x[..., 0::2])
    odd = _codelet_8(x[..., 1::2])
    w = np.exp(-2j * np.pi * np.arange(8) / 16)
    odd = odd * w
    out = np.empty_like(x)
    out[..., 0:8] = even + odd
    out[..., 8:16] = even - odd
    return out


def _codelet_7(x: np.ndarray) -> np.ndarray:
    # Size 7 has no cheap butterfly structure; a 7x7 matrix product over the
    # batch is still far cheaper than Bluestein at this size.
    return direct_dft(x)


_CODELETS: Dict[int, Callable[[np.ndarray], np.ndarray]] = {
    1: _codelet_1,
    2: _codelet_2,
    3: _codelet_3,
    4: _codelet_4,
    5: _codelet_5,
    6: _codelet_6,
    7: _codelet_7,
    8: _codelet_8,
    16: _codelet_16,
}

SUPPORTED_CODELET_SIZES = tuple(sorted(_CODELETS))

# Approximate real-operation counts per transform, used by the planner's cost
# estimator (these follow the usual split-radix style counts; exactness is not
# required, only relative ordering).
_FLOPS: Dict[int, int] = {
    1: 0,
    2: 4,
    3: 12,
    4: 16,
    5: 32,
    6: 36,
    7: 120,
    8: 52,
    16: 144,
}


def has_codelet(n: int) -> bool:
    """Return ``True`` when a dedicated codelet exists for size ``n``."""

    return int(n) in _CODELETS


def codelet_flop_count(n: int) -> int:
    """Approximate real-operation count of the ``n``-point codelet."""

    return _FLOPS.get(int(n), 5 * int(n) * max(int(np.log2(max(n, 2))), 1))


def apply_codelet(x: np.ndarray, n: int, *, inverse: bool = False) -> np.ndarray:
    """Apply the ``n``-point codelet along the last axis of ``x``.

    The inverse transform is computed via conjugation and is *unnormalised*
    (consistent with the rest of the engine; normalisation happens once at
    the top level).
    """

    if not has_codelet(n):
        raise KeyError(f"no codelet for size {n}")
    x = np.asarray(x, dtype=np.complex128)
    if x.shape[-1] != n:
        raise ValueError(f"last axis has length {x.shape[-1]}, expected {n}")
    fn = _CODELETS[int(n)]
    if inverse:
        return np.conj(fn(np.conj(x)))
    return fn(x)

"""Hand-written small-size FFT "codelets".

FFTW generates straight-line code for small transform sizes and builds large
transforms out of those codelets.  This module provides the same leaf level:
explicit butterfly implementations for sizes 1-5 and 8 (plus composed
codelets for 6 and 16), all vectorised over arbitrary leading batch axes so a
single call transforms thousands of sub-vectors at once.

Each codelet takes an array of shape ``(..., n)`` and returns the transform
along the last axis.  Forward transforms use the negative-exponent convention
of the paper; inverse codelets are obtained by conjugation in
:func:`apply_codelet`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.fftlib.dft import direct_dft

__all__ = ["SUPPORTED_CODELET_SIZES", "has_codelet", "apply_codelet", "codelet_flop_count"]

_SQRT3_2 = np.sqrt(3.0) / 2.0
# Constants for the radix-5 butterfly (real/imag parts of the 5th roots).
_C5_1 = np.cos(2 * np.pi / 5)
_S5_1 = np.sin(2 * np.pi / 5)
_C5_2 = np.cos(4 * np.pi / 5)
_S5_2 = np.sin(4 * np.pi / 5)
# Twiddles of the composed codelets, hoisted out of the butterflies.
_W6 = np.exp(-2j * np.pi * np.arange(3) / 6)
_W8 = np.exp(-2j * np.pi * np.arange(4) / 8)
_W16 = np.exp(-2j * np.pi * np.arange(8) / 16)


def _alloc_like(x: np.ndarray) -> np.ndarray:
    """A fresh C-contiguous output array of the shape/dtype of ``x``.

    ``np.empty_like`` would mirror the memory order of a strided *view*
    (order='K'), which breaks callers that reshape the result; codelets are
    fed transposed views by the stage-program executor, so allocation is
    always C-order.
    """

    return np.empty(x.shape, dtype=x.dtype)


def _codelet_1(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    if out is None:
        return x.copy()
    out[...] = x
    return out


def _codelet_2(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    if out is None:
        out = _alloc_like(x)
    np.add(a, b, out=out[..., 0])
    np.subtract(a, b, out=out[..., 1])
    return out


def _codelet_3(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    c = x[..., 2]
    t1 = b + c
    t2 = a - 0.5 * t1
    t3 = -1j * _SQRT3_2 * (b - c)
    if out is None:
        out = _alloc_like(x)
    np.add(a, t1, out=out[..., 0])
    np.add(t2, t3, out=out[..., 1])
    np.subtract(t2, t3, out=out[..., 2])
    return out


def _codelet_4(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    c = x[..., 2]
    d = x[..., 3]
    t0 = a + c
    t1 = a - c
    t2 = b + d
    t3 = -1j * (b - d)
    if out is None:
        out = _alloc_like(x)
    np.add(t0, t2, out=out[..., 0])
    np.add(t1, t3, out=out[..., 1])
    np.subtract(t0, t2, out=out[..., 2])
    np.subtract(t1, t3, out=out[..., 3])
    return out


def _codelet_5(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    a = x[..., 0]
    b = x[..., 1]
    c = x[..., 2]
    d = x[..., 3]
    e = x[..., 4]
    t1 = b + e
    t2 = b - e
    t3 = c + d
    t4 = c - d
    if out is None:
        out = _alloc_like(x)
    out[..., 0] = a + t1 + t3
    m1 = a + _C5_1 * t1 + _C5_2 * t3
    m2 = a + _C5_2 * t1 + _C5_1 * t3
    s1 = -1j * (_S5_1 * t2 + _S5_2 * t4)
    s2 = -1j * (_S5_2 * t2 - _S5_1 * t4)
    np.add(m1, s1, out=out[..., 1])
    np.subtract(m1, s1, out=out[..., 4])
    np.add(m2, s2, out=out[..., 2])
    np.subtract(m2, s2, out=out[..., 3])
    return out


def _codelet_6(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    # 6 = 2 * 3 by the prime-factor (Good-Thomas style DIT) split: even/odd
    # interleave into two radix-3 transforms combined by a radix-2 stage with
    # twiddles.
    even = _codelet_3(x[..., 0::2])
    odd = _codelet_3(x[..., 1::2])
    odd *= _W6
    if out is None:
        out = _alloc_like(x)
    np.add(even, odd, out=out[..., 0:3])
    np.subtract(even, odd, out=out[..., 3:6])
    return out


def _codelet_8(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    even = _codelet_4(x[..., 0::2])
    odd = _codelet_4(x[..., 1::2])
    odd *= _W8
    if out is None:
        out = _alloc_like(x)
    np.add(even, odd, out=out[..., 0:4])
    np.subtract(even, odd, out=out[..., 4:8])
    return out


def _codelet_16(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    even = _codelet_8(x[..., 0::2])
    odd = _codelet_8(x[..., 1::2])
    odd *= _W16
    if out is None:
        out = _alloc_like(x)
    np.add(even, odd, out=out[..., 0:8])
    np.subtract(even, odd, out=out[..., 8:16])
    return out


def _codelet_7(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    # Size 7 has no cheap butterfly structure; a 7x7 matrix product over the
    # batch is still far cheaper than Bluestein at this size.
    result = direct_dft(x)
    if out is None:
        return result
    out[...] = result
    return out


_CODELETS: Dict[int, Callable[..., np.ndarray]] = {
    1: _codelet_1,
    2: _codelet_2,
    3: _codelet_3,
    4: _codelet_4,
    5: _codelet_5,
    6: _codelet_6,
    7: _codelet_7,
    8: _codelet_8,
    16: _codelet_16,
}

SUPPORTED_CODELET_SIZES = tuple(sorted(_CODELETS))

# Approximate real-operation counts per transform, used by the planner's cost
# estimator (these follow the usual split-radix style counts; exactness is not
# required, only relative ordering).
_FLOPS: Dict[int, int] = {
    1: 0,
    2: 4,
    3: 12,
    4: 16,
    5: 32,
    6: 36,
    7: 120,
    8: 52,
    16: 144,
}


def has_codelet(n: int) -> bool:
    """Return ``True`` when a dedicated codelet exists for size ``n``."""

    return int(n) in _CODELETS


def codelet_flop_count(n: int) -> int:
    """Approximate real-operation count of the ``n``-point codelet."""

    return _FLOPS.get(int(n), 5 * int(n) * max(int(np.log2(max(n, 2))), 1))


def apply_codelet(
    x: np.ndarray, n: int, *, inverse: bool = False, out: np.ndarray = None
) -> np.ndarray:
    """Apply the ``n``-point codelet along the last axis of ``x``.

    The inverse transform is computed via conjugation and is *unnormalised*
    (consistent with the rest of the engine; normalisation happens once at
    the top level).  ``out``, when given, receives the result in place (it
    may be a strided view, e.g. into a stage-program work buffer); it must
    not alias ``x``.
    """

    if not has_codelet(n):
        raise KeyError(f"no codelet for size {n}")
    x = np.asarray(x, dtype=np.complex128)
    if x.shape[-1] != n:
        raise ValueError(f"last axis has length {x.shape[-1]}, expected {n}")
    fn = _CODELETS[int(n)]
    if inverse:
        result = np.conj(fn(np.conj(x)), out=out)
        return result
    return fn(x, out)

"""Reference discrete Fourier transforms.

These O(N^2) routines serve three purposes:

* ground truth for testing every fast algorithm in the package,
* the base case ("codelet of last resort") for small prime sizes in the
  mixed-radix engine, and
* the matrix form ``X = A x`` that the ABFT checksum relation
  ``r X = (r A) x`` is defined against (Section 2.2 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = ["dft_matrix", "direct_dft", "direct_idft", "direct_dft_along_axis"]


def dft_matrix(n: int, *, inverse: bool = False) -> np.ndarray:
    """Return the ``n x n`` DFT matrix ``A`` with ``A[j, k] = omega_n^{j k}``.

    The forward matrix uses :math:`\\omega_n = e^{-2\\pi i/n}`; the inverse
    matrix uses the conjugate root and includes the ``1/n`` normalisation so
    that ``dft_matrix(n, inverse=True) @ dft_matrix(n) == I``.
    """

    n = ensure_positive_int(n, name="n")
    sign = 1.0 if inverse else -1.0
    idx = np.arange(n)
    exponent = np.outer(idx, idx)
    matrix = np.exp(sign * 2j * np.pi * exponent / n)
    if inverse:
        matrix /= n
    return matrix


def direct_dft(x: np.ndarray, *, inverse: bool = False) -> np.ndarray:
    """Compute the DFT of the last axis of ``x`` by direct summation.

    Accepts arrays of any shape; the transform is applied along the last
    axis.  Complexity is O(n^2) per transform, so this is only used for small
    sizes and for validation.
    """

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    matrix = dft_matrix(n, inverse=inverse)
    # x @ matrix.T computes sum_k x[..., k] * matrix[j, k] for each output j.
    return x @ matrix.T


def direct_idft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT (normalised by 1/n) along the last axis by direct summation."""

    return direct_dft(x, inverse=True)


def direct_dft_along_axis(x: np.ndarray, axis: int, *, inverse: bool = False) -> np.ndarray:
    """Direct DFT along an arbitrary axis (validation helper)."""

    x = np.asarray(x, dtype=np.complex128)
    moved = np.moveaxis(x, axis, -1)
    out = direct_dft(moved, inverse=inverse)
    return np.moveaxis(out, -1, axis)

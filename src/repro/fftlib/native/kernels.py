"""ctypes binding and per-program descriptors for the native kernel tier.

This module is the only place that talks to the compiled shared object.  It
exposes the capability gate the rest of the stack (and the reprolint
``capability-guard`` rule) keys on:

* :func:`native_supported` - ``True`` only when the tier is enabled
  (``REPRO_NO_NATIVE`` unset) *and* the kernel library compiled and loaded;
  the first call triggers the one-time build via the kernel cache.
* :func:`get_native_kernels` - the bound :class:`ctypes.CDLL`.  Call sites
  must be dominated by :func:`native_supported` / ``supports_native``
  evidence (lint-enforced); calling it unguarded raises when the tier is
  unavailable instead of returning garbage.
* :func:`build_native_program` - lowers a compiled
  :class:`~repro.fftlib.executor.StageProgram` into a
  :class:`NativeProgram`: the stage descriptors (radices, spans, counts,
  twiddle-table and butterfly-matrix pointers) marshalled once into ctypes
  arrays, so each transform afterwards is a *single* foreign call - and
  ctypes drops the GIL for the call's duration, which is what makes the
  threaded six-step and chunk-parallel ``execute_many`` actually concurrent.
* :func:`native_info` - ``cache_info()``-style counters: compiles, disk
  hits, failures, programs built, fallbacks, and the current status/reason.

Fallback is always correct and never raises: any reason the tier cannot
serve a program (disabled, no compiler, compile failure, Bluestein base, a
radix past the generic-kernel bound) is reported as a reason string, counted
in the telemetry registry (``native_fallbacks``), and emitted as a
``fallback`` trace event when tracing is on; the caller keeps the pure-NumPy
stage bodies.
"""

from __future__ import annotations

import ctypes
import os
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

from .cache import cache_dir, cache_stats, load_library, reset_cache_state
from .generator import CODELET_RADICES, MAX_GENERIC_ORDER

__all__ = [
    "native_supported",
    "native_unavailable_reason",
    "get_native_kernels",
    "NativeProgram",
    "build_native_program",
    "native_info",
    "reset_native_state",
]

_DISABLE_ENV = "REPRO_NO_NATIVE"

_c64 = ctypes.c_int64
_cvp = ctypes.c_void_p

_bind_lock = threading.Lock()
_bound_libs: "set[int]" = set()

_counter_lock = threading.Lock()
_programs_built = 0
_fallbacks = 0


def _disabled() -> Optional[str]:
    """The disable reason, or ``None`` when the tier may run.

    Checked on every capability query (not cached) so flipping
    ``REPRO_NO_NATIVE`` in a test or a child process takes effect
    immediately without touching the compiled-library cache.
    """

    if os.environ.get(_DISABLE_ENV, "") not in ("", "0"):
        return f"disabled by {_DISABLE_ENV}"
    return None


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Declare the foreign signatures once per loaded library.

    All pointer parameters are declared ``c_void_p`` and passed as raw
    addresses - the marshalling cost per call is a handful of boxed ints,
    negligible against even the smallest transform.
    """

    key = id(lib)
    if key in _bound_libs:
        return lib
    with _bind_lock:
        if key in _bound_libs:
            return lib
        lib.repro_execute.restype = None
        lib.repro_execute.argtypes = [
            _c64, _c64, _c64,            # batch, n, base
            _cvp, _c64,                  # base_matrix, nstages
            _cvp, _cvp, _cvp,            # radices, spans, counts
            _cvp, _cvp,                  # twiddles**, matrices**
            _cvp, _c64,                  # in, in_rs
            _cvp, _c64,                  # out, out_rs
            _cvp, _cvp,                  # work_a, work_b
        ]
        lib.repro_execute_into.restype = None
        lib.repro_execute_into.argtypes = [
            _c64, _c64, _c64,
            _cvp, _c64,
            _cvp, _cvp, _cvp,
            _cvp, _cvp,
            _cvp, _c64,                  # data, data_rs
            _cvp, _c64,                  # work, work_rs
        ]
        _bound_libs.add(key)
    return lib


def native_supported() -> bool:
    """Whether the native tier can execute programs in this process.

    The first call on an enabled host triggers the one-time compile/load
    through the kernel cache; the outcome is remembered, so this is cheap
    on every later call.  Always ``False`` under ``REPRO_NO_NATIVE``.
    """

    if _disabled() is not None:
        return False
    lib, _ = load_library()
    return lib is not None


def native_unavailable_reason() -> Optional[str]:
    """Why :func:`native_supported` is ``False`` (``None`` when it is not)."""

    disabled = _disabled()
    if disabled is not None:
        return disabled
    _, reason = load_library()
    return reason


def get_native_kernels() -> ctypes.CDLL:
    """The bound kernel library.

    Callers must hold :func:`native_supported` evidence (the reprolint
    ``capability-guard`` rule enforces this); an unguarded call on an
    unavailable tier raises ``RuntimeError`` rather than half-working.
    """

    disabled = _disabled()
    if disabled is not None:
        raise RuntimeError(f"native kernel tier unavailable: {disabled}")
    lib, reason = load_library()
    if lib is None:
        raise RuntimeError(f"native kernel tier unavailable: {reason}")
    return _bind(lib)


class NativeProgram:
    """The marshalled native execution recipe of one :class:`StageProgram`.

    Immutable after construction and safe to share across threads: every
    field is a prebuilt ctypes/NumPy constant, and the underlying C kernels
    touch only the buffers passed per call.  The ``_refs`` tuple pins the
    contiguous twiddle/matrix arrays whose addresses the pointer tables
    hold.
    """

    __slots__ = (
        "n",
        "base",
        "nstages",
        "_lib",
        "_base_matrix_ptr",
        "_radices",
        "_spans",
        "_counts",
        "_tw_ptrs",
        "_mat_ptrs",
        "_refs",
    )

    def __init__(self, lib: ctypes.CDLL, program: Any) -> None:
        self._lib = lib
        self.n = program.n
        self.base = program.base
        stages = program.stages
        self.nstages = len(stages)

        refs = []
        if program.base in CODELET_RADICES:
            # Unrolled base codelet: the C side dispatches on the order.
            self._base_matrix_ptr = 0
        else:
            matrix = program.base_matrix
            if matrix is None:
                # Codelet-kind bases outside the unrolled set (n itself is a
                # tiny codelet size): fetch the same cached DFT matrix the
                # direct kind would use.
                from repro.fftlib.twiddle import get_global_cache

                matrix = get_global_cache().dft_matrix(program.base)
            matrix = np.ascontiguousarray(matrix, dtype=np.complex128)
            refs.append(matrix)
            self._base_matrix_ptr = matrix.ctypes.data

        self._radices = np.array([s.radix for s in stages], dtype=np.int64)
        self._spans = np.array([s.span for s in stages], dtype=np.int64)
        self._counts = np.array([s.count for s in stages], dtype=np.int64)
        tw_addrs = []
        mat_addrs = []
        for stage in stages:
            twiddle = np.ascontiguousarray(stage.twiddle, dtype=np.complex128)
            refs.append(twiddle)
            tw_addrs.append(twiddle.ctypes.data)
            if stage.radix in CODELET_RADICES:
                mat_addrs.append(0)
            else:
                matrix = np.ascontiguousarray(stage.matrix, dtype=np.complex128)
                refs.append(matrix)
                mat_addrs.append(matrix.ctypes.data)
        count = max(self.nstages, 1)
        self._tw_ptrs = (_cvp * count)(*(tw_addrs or [0]))
        self._mat_ptrs = (_cvp * count)(*(mat_addrs or [0]))
        self._refs = tuple(refs)

    # ------------------------------------------------------------------
    def _row_stride(self, arr: np.ndarray) -> int:
        return arr.strides[0] // arr.itemsize if arr.shape[0] > 1 else self.n

    def execute(
        self,
        xs: np.ndarray,
        out: np.ndarray,
        work_a: Optional[np.ndarray],
        work_b: Optional[np.ndarray],
    ) -> np.ndarray:
        """Out-of-place transform of ``(batch, n)`` rows; one foreign call."""

        self._lib.repro_execute(
            xs.shape[0],
            self.n,
            self.base,
            self._base_matrix_ptr,
            self.nstages,
            self._radices.ctypes.data,
            self._spans.ctypes.data,
            self._counts.ctypes.data,
            ctypes.addressof(self._tw_ptrs),
            ctypes.addressof(self._mat_ptrs),
            xs.ctypes.data,
            self._row_stride(xs),
            out.ctypes.data,
            self._row_stride(out),
            work_a.ctypes.data if work_a is not None else 0,
            work_b.ctypes.data if work_b is not None else 0,
        )
        return out

    def execute_into(self, data: np.ndarray, work: np.ndarray) -> np.ndarray:
        """Two-buffer transform (clobbers ``data``, result in ``work``)."""

        self._lib.repro_execute_into(
            data.shape[0],
            self.n,
            self.base,
            self._base_matrix_ptr,
            self.nstages,
            self._radices.ctypes.data,
            self._spans.ctypes.data,
            self._counts.ctypes.data,
            ctypes.addressof(self._tw_ptrs),
            ctypes.addressof(self._mat_ptrs),
            data.ctypes.data,
            self._row_stride(data),
            work.ctypes.data,
            self._row_stride(work),
        )
        return work


def _program_obstacle(program: Any) -> Optional[str]:
    """Why ``program`` cannot run natively, or ``None`` when it can."""

    if program.base_kind == "bluestein":
        return "Bluestein base kernels run pure-NumPy (chirp convolution)"
    if program.base > MAX_GENERIC_ORDER:
        return f"base order {program.base} exceeds the generic kernel bound"
    for stage in program.stages:
        if stage.radix > MAX_GENERIC_ORDER:
            return (
                f"combine radix {stage.radix} exceeds the generic kernel bound"
            )
    return None


def build_native_program(
    program: Any,
) -> Tuple[Optional[NativeProgram], Optional[str]]:
    """``(native, None)`` for a runnable lowering, else ``(None, reason)``.

    Never raises for an unavailable tier or an unsupported program shape -
    the caller keeps the pure-NumPy stage bodies and surfaces the reason.
    """

    global _programs_built, _fallbacks
    reason = native_unavailable_reason()
    if reason is None:
        reason = _program_obstacle(program)
    if reason is not None:
        with _counter_lock:
            _fallbacks += 1
        _metrics.inc("native_fallbacks", reason=reason)
        if _trace.active:
            _trace.emit(
                "fallback", kind="native", n=int(program.n), reason=reason
            )
        return None, reason
    if not native_supported():  # pragma: no cover - raced env flip
        return None, native_unavailable_reason()
    native = NativeProgram(get_native_kernels(), program)
    with _counter_lock:
        _programs_built += 1
    return native, None


def native_info() -> Dict[str, Any]:
    """``cache_info()``-style snapshot of the tier's state and counters."""

    # Probe support *before* reading the cache counters: the probe lazily
    # loads the shared library, and that load is itself a disk hit - read
    # the other way round, the first snapshot under-reports by one and two
    # back-to-back renders of an idle process disagree.
    supported = native_supported()
    stats = cache_stats()
    with _counter_lock:
        built = _programs_built
        fallbacks = _fallbacks
    return {
        "supported": supported,
        "reason": None if supported else native_unavailable_reason(),
        "cache_dir": cache_dir(),
        "compiles": stats.compiles,
        "disk_hits": stats.disk_hits,
        "failures": stats.failures,
        "programs_built": built,
        "fallbacks": fallbacks,
    }


def reset_native_state() -> None:
    """Forget the loaded library, bindings, and counters (test hook)."""

    global _programs_built, _fallbacks
    reset_cache_state()
    with _bind_lock:
        _bound_libs.clear()
    with _counter_lock:
        _programs_built = 0
        _fallbacks = 0

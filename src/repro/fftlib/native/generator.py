"""C source generator for the native codelet kernel tier.

This is the repository's ``genfft``-lite: :func:`generate_source` emits one
self-contained C translation unit implementing the exact stage bodies the
compiled :class:`~repro.fftlib.executor.StageProgram` executes -

* **base codelets** ``base_r`` for ``r`` in :data:`CODELET_RADICES` - the
  bottom-level length-``r`` DFTs of all stride-``q`` input subsequences,
  fully unrolled straight-line butterflies produced by a recursive
  radix-2 decimation-in-time expansion with the internal twiddle constants
  folded at generation time (trivial factors ``1`` and ``-i`` cost no
  multiplies, exactly the split-radix savings the ROADMAP's r in {32, 64}
  follow-on asked for);
* **combine codelets** ``combine_r_tw`` / ``combine_r_plain`` - one fused
  pass per stage: load the ``r`` strided inputs, multiply by the
  precomputed ``(r, p)`` twiddle table, run the unrolled radix-``r``
  butterfly, scatter the ``t``-major outputs - where the pure-NumPy path
  pays one full twiddle pass plus one BLAS contraction per stage;
* **generic fallbacks** ``base_generic`` / ``combine_generic`` driven by the
  cached DFT matrix, covering every radix/base the planner can emit that has
  no unrolled codelet (mixed-radix factors like 3/5/6, folded bases, direct
  primes up to 61 - all bounded by :data:`MAX_GENERIC_ORDER`);
* two **drivers**, ``repro_execute`` (out-of-place, ping-pong work buffers)
  and ``repro_execute_into`` (the two-buffer allocation-free discipline of
  :meth:`StageProgram.execute_into`), each a single C call per transform so
  ``ctypes`` releases the GIL exactly once per execution.

Everything is ``complex128`` stored interleaved (the NumPy memory layout),
all pointers are ``restrict``, and nothing allocates - buffers, twiddle
tables, and butterfly matrices are owned by the Python side and passed in.

The emitted text is deterministic: the kernel cache keys compiled shared
objects by a hash of this source plus the compiler identity, so bumping
:data:`GENERATOR_VERSION` (or changing any emitted line) automatically
invalidates stale cache entries.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "GENERATOR_VERSION",
    "NATIVE_ABI",
    "CODELET_RADICES",
    "MAX_GENERIC_ORDER",
    "generate_source",
]

#: Bump on any change to the emitted C (new kernels, changed signatures,
#: changed loop structure) - it is folded into the kernel-cache key.
GENERATOR_VERSION = "1"

#: ABI stamp compiled into the shared object and verified at load time, so a
#: cache entry produced by an incompatible generator can never be dispatched.
NATIVE_ABI = 1

#: Radices with fully unrolled straight-line butterflies.
CODELET_RADICES = (2, 4, 8, 16, 32, 64)

#: Largest radix/base order the generic matrix-driven kernels accept (the
#: planner's direct bases are codelet-sized, folded products <= 64, or primes
#: <= 61, so 64 covers every lowering; larger factors fall back to NumPy).
MAX_GENERIC_ORDER = 64


def _const(value: float) -> str:
    """A C double literal with full round-trip precision."""

    if value == int(value):
        return f"{value:+.1f}"
    return f"{value:+.17e}"


class _Emitter:
    """Accumulates straight-line statements with unique temp names."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._counter = 0

    def tmp(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def stmt(self, line: str) -> None:
        self.lines.append(line)


def _dft(em: _Emitter, xs: Sequence[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Emit a length-``len(xs)`` DFT over complex (re, im) expression pairs.

    Recursive radix-2 decimation in time; the inter-level twiddle constants
    are folded at generation time, with the trivial factors (``1`` at
    ``t = 0`` and ``-i`` at ``t = r/4``) emitted as moves/swaps instead of
    multiplies.  Returns the output expression pairs in natural order.
    """

    r = len(xs)
    if r == 1:
        return list(xs)
    evens = _dft(em, xs[0::2])
    odds = _dft(em, xs[1::2])
    h = r // 2
    out: List[Tuple[str, str]] = [("", "")] * r
    for t in range(h):
        er, ei = evens[t]
        orr, oi = odds[t]
        if t == 0:
            mr, mi = orr, oi
        elif 4 * t == r:
            # w = -i: (-i) * (a + bi) = b - ai; a swap plus a negation.
            m = em.tmp()
            em.stmt(f"const double {m}r = {oi};")
            em.stmt(f"const double {m}i = -{orr};")
            mr, mi = f"{m}r", f"{m}i"
        else:
            wr = math.cos(-2.0 * math.pi * t / r)
            wi = math.sin(-2.0 * math.pi * t / r)
            m = em.tmp()
            em.stmt(
                f"const double {m}r = {_const(wr)} * {orr} - ({_const(wi)}) * {oi};"
            )
            em.stmt(
                f"const double {m}i = {_const(wr)} * {oi} + ({_const(wi)}) * {orr};"
            )
            mr, mi = f"{m}r", f"{m}i"
        a = em.tmp()
        b = em.tmp()
        em.stmt(f"const double {a}r = {er} + {mr};")
        em.stmt(f"const double {a}i = {ei} + {mi};")
        em.stmt(f"const double {b}r = {er} - {mr};")
        em.stmt(f"const double {b}i = {ei} - {mi};")
        out[t] = (f"{a}r", f"{a}i")
        out[t + h] = (f"{b}r", f"{b}i")
    return out


def _indent(lines: Sequence[str], depth: int) -> str:
    pad = "    " * depth
    return "\n".join(pad + line for line in lines)


def _base_codelet(r: int) -> str:
    """The gathered base kernel: length-``r`` DFTs of stride-``q`` subsequences."""

    em = _Emitter()
    for s in range(r):
        em.stmt(f"const double z{s}r = inb[2 * ({s} * q + j)];")
        em.stmt(f"const double z{s}i = inb[2 * ({s} * q + j) + 1];")
    outs = _dft(em, [(f"z{s}r", f"z{s}i") for s in range(r)])
    for t, (yr, yi) in enumerate(outs):
        em.stmt(f"outb[2 * (j * {r} + {t})] = {yr};")
        em.stmt(f"outb[2 * (j * {r} + {t}) + 1] = {yi};")
    return f"""
static void base_{r}(const int64_t batch, const int64_t q,
                     const double* restrict in, const int64_t in_rs,
                     double* restrict out, const int64_t out_rs)
{{
    for (int64_t b = 0; b < batch; ++b) {{
        const double* restrict inb = in + 2 * b * in_rs;
        double* restrict outb = out + 2 * b * out_rs;
        for (int64_t j = 0; j < q; ++j) {{
{_indent(em.lines, 3)}
        }}
    }}
}}
"""


def _combine_codelet(r: int, twiddled: bool) -> str:
    """One fused combine stage of radix ``r`` (twiddle + butterfly + scatter)."""

    em = _Emitter()
    for s in range(r):
        em.stmt(f"const double x{s}r = inc[2 * ({s} * sstr + u)];")
        em.stmt(f"const double x{s}i = inc[2 * ({s} * sstr + u) + 1];")
        if twiddled and s > 0:
            # Row 0 of every stage table is all ones (omega^0); skip it.
            em.stmt(f"const double w{s}r = tw[2 * ({s} * p + u)];")
            em.stmt(f"const double w{s}i = tw[2 * ({s} * p + u) + 1];")
            em.stmt(f"const double z{s}r = x{s}r * w{s}r - x{s}i * w{s}i;")
            em.stmt(f"const double z{s}i = x{s}r * w{s}i + x{s}i * w{s}r;")
    if twiddled:
        inputs = [("x0r", "x0i")] + [(f"z{s}r", f"z{s}i") for s in range(1, r)]
    else:
        inputs = [(f"x{s}r", f"x{s}i") for s in range(r)]
    outs = _dft(em, inputs)
    for t, (yr, yi) in enumerate(outs):
        em.stmt(f"outc[2 * ({t} * p + u)] = {yr};")
        em.stmt(f"outc[2 * ({t} * p + u) + 1] = {yi};")
    suffix = "tw" if twiddled else "plain"
    tw_param = (
        "\n                           const double* restrict tw,"
        if twiddled
        else ""
    )
    return f"""
static void combine_{r}_{suffix}(const int64_t batch, const int64_t count, const int64_t p,
                           const double* restrict in, const int64_t in_rs,{tw_param}
                           double* restrict out, const int64_t out_rs)
{{
    const int64_t sstr = count * p;
    for (int64_t b = 0; b < batch; ++b) {{
        const double* restrict inb = in + 2 * b * in_rs;
        double* restrict outb = out + 2 * b * out_rs;
        for (int64_t c = 0; c < count; ++c) {{
            const double* restrict inc = inb + 2 * c * p;
            double* restrict outc = outb + 2 * c * ({r} * p);
            for (int64_t u = 0; u < p; ++u) {{
{_indent(em.lines, 4)}
            }}
        }}
    }}
}}
"""


_PRELUDE = f"""/* Generated by repro.fftlib.native.generator (version {GENERATOR_VERSION}).
 * Native codelet/combine kernels for the compiled stage programs: complex128
 * interleaved layout, no allocations, one driver call per transform.
 * Do not edit - regenerate via generate_source().
 */
#include <stdint.h>

#define REPRO_NATIVE_ABI {NATIVE_ABI}
#define MAX_GENERIC_ORDER {MAX_GENERIC_ORDER}

int64_t repro_native_abi(void) {{ return REPRO_NATIVE_ABI; }}
"""

_GENERIC = """
/* Matrix-driven base kernel for orders without an unrolled codelet (small
 * primes, folded composite bases; order <= MAX_GENERIC_ORDER). */
static void base_generic(const int64_t batch, const int64_t q, const int64_t base,
                         const double* restrict in, const int64_t in_rs,
                         const double* restrict mat,
                         double* restrict out, const int64_t out_rs)
{
    for (int64_t b = 0; b < batch; ++b) {
        const double* restrict inb = in + 2 * b * in_rs;
        double* restrict outb = out + 2 * b * out_rs;
        for (int64_t j = 0; j < q; ++j) {
            double zr[MAX_GENERIC_ORDER];
            double zi[MAX_GENERIC_ORDER];
            for (int64_t s = 0; s < base; ++s) {
                zr[s] = inb[2 * (s * q + j)];
                zi[s] = inb[2 * (s * q + j) + 1];
            }
            for (int64_t t = 0; t < base; ++t) {
                double accr = 0.0;
                double acci = 0.0;
                for (int64_t s = 0; s < base; ++s) {
                    const double mr = mat[2 * (s * base + t)];
                    const double mi = mat[2 * (s * base + t) + 1];
                    accr += zr[s] * mr - zi[s] * mi;
                    acci += zr[s] * mi + zi[s] * mr;
                }
                outb[2 * (j * base + t)] = accr;
                outb[2 * (j * base + t) + 1] = acci;
            }
        }
    }
}

/* Matrix-driven combine stage for radices without an unrolled codelet
 * (radix <= MAX_GENERIC_ORDER; tw may be NULL for pre-twiddled input). */
static void combine_generic(const int64_t batch, const int64_t r,
                            const int64_t count, const int64_t p,
                            const double* restrict in, const int64_t in_rs,
                            const double* restrict tw,
                            const double* restrict mat,
                            double* restrict out, const int64_t out_rs)
{
    const int64_t sstr = count * p;
    for (int64_t b = 0; b < batch; ++b) {
        const double* restrict inb = in + 2 * b * in_rs;
        double* restrict outb = out + 2 * b * out_rs;
        for (int64_t c = 0; c < count; ++c) {
            const double* restrict inc = inb + 2 * c * p;
            double* restrict outc = outb + 2 * c * (r * p);
            for (int64_t u = 0; u < p; ++u) {
                double zr[MAX_GENERIC_ORDER];
                double zi[MAX_GENERIC_ORDER];
                for (int64_t s = 0; s < r; ++s) {
                    const double xr = inc[2 * (s * sstr + u)];
                    const double xi = inc[2 * (s * sstr + u) + 1];
                    if (tw) {
                        const double wr = tw[2 * (s * p + u)];
                        const double wi = tw[2 * (s * p + u) + 1];
                        zr[s] = xr * wr - xi * wi;
                        zi[s] = xr * wi + xi * wr;
                    } else {
                        zr[s] = xr;
                        zi[s] = xi;
                    }
                }
                for (int64_t t = 0; t < r; ++t) {
                    double accr = 0.0;
                    double acci = 0.0;
                    for (int64_t s = 0; s < r; ++s) {
                        const double mr = mat[2 * (t * r + s)];
                        const double mi = mat[2 * (t * r + s) + 1];
                        accr += zr[s] * mr - zi[s] * mi;
                        acci += zr[s] * mi + zi[s] * mr;
                    }
                    outc[2 * (t * p + u)] = accr;
                    outc[2 * (t * p + u) + 1] = acci;
                }
            }
        }
    }
}

/* Elementwise twiddle staging pass (the two-buffer driver's odd-stage
 * discipline): out[b, s, c, u] = tw[s, u] * in[b, s, c, u]. */
static void twiddle_mult(const int64_t batch, const int64_t r,
                         const int64_t count, const int64_t p,
                         const double* restrict in, const int64_t in_rs,
                         const double* restrict tw,
                         double* restrict out, const int64_t out_rs)
{
    for (int64_t b = 0; b < batch; ++b) {
        const double* restrict inb = in + 2 * b * in_rs;
        double* restrict outb = out + 2 * b * out_rs;
        for (int64_t s = 0; s < r; ++s) {
            const double* restrict tws = tw + 2 * s * p;
            for (int64_t c = 0; c < count; ++c) {
                const double* restrict inc = inb + 2 * ((s * count + c) * p);
                double* restrict outc = outb + 2 * ((s * count + c) * p);
                for (int64_t u = 0; u < p; ++u) {
                    const double xr = inc[2 * u];
                    const double xi = inc[2 * u + 1];
                    const double wr = tws[2 * u];
                    const double wi = tws[2 * u + 1];
                    outc[2 * u] = xr * wr - xi * wi;
                    outc[2 * u + 1] = xr * wi + xi * wr;
                }
            }
        }
    }
}
"""


def _dispatchers() -> str:
    base_cases = "\n".join(
        f"    case {r}: base_{r}(batch, q, in, in_rs, out, out_rs); return;"
        for r in CODELET_RADICES
    )
    tw_cases = "\n".join(
        f"    case {r}: combine_{r}_tw(batch, count, p, in, in_rs, tw, out, out_rs); "
        f"return;"
        for r in CODELET_RADICES
    )
    plain_cases = "\n".join(
        f"    case {r}: combine_{r}_plain(batch, count, p, in, in_rs, out, out_rs); "
        f"return;"
        for r in CODELET_RADICES
    )
    return f"""
static void run_base(const int64_t batch, const int64_t q, const int64_t base,
                     const double* restrict mat,
                     const double* restrict in, const int64_t in_rs,
                     double* restrict out, const int64_t out_rs)
{{
    if (!mat) switch (base) {{
{base_cases}
    default: break;
    }}
    base_generic(batch, q, base, in, in_rs, mat, out, out_rs);
}}

static void run_combine(const int64_t radix, const int64_t span, const int64_t count,
                        const int64_t batch,
                        const double* restrict in, const int64_t in_rs,
                        const double* restrict tw, const double* restrict mat,
                        double* restrict out, const int64_t out_rs)
{{
    const int64_t p = span;
    if (!mat) {{
        if (tw) switch (radix) {{
{tw_cases}
        default: break;
        }}
        else switch (radix) {{
{plain_cases}
        default: break;
        }}
    }}
    combine_generic(batch, radix, count, p, in, in_rs, tw, mat, out, out_rs);
}}
"""


_DRIVERS = """
/* Out-of-place driver: mirrors StageProgram.execute.  `in` is never written;
 * work_a/work_b are full-size ping-pong scratch; the final combine lands in
 * `out`.  All row strides are in complex elements. */
void repro_execute(const int64_t batch, const int64_t n, const int64_t base,
                   const double* base_matrix, const int64_t nstages,
                   const int64_t* restrict radices, const int64_t* restrict spans,
                   const int64_t* restrict counts,
                   const double* const* twiddles, const double* const* matrices,
                   const double* in, const int64_t in_rs,
                   double* out, const int64_t out_rs,
                   double* work_a, double* work_b)
{
    const int64_t q0 = n / base;
    if (nstages == 0) {
        run_base(batch, q0, base, base_matrix, in, in_rs, out, out_rs);
        return;
    }
    double* bufs[2] = { work_a, work_b };
    run_base(batch, q0, base, base_matrix, in, in_rs, work_a, n);
    const double* cur = work_a;
    int64_t cur_rs = n;
    for (int64_t i = 0; i < nstages; ++i) {
        double* dst;
        int64_t dst_rs;
        if (i == nstages - 1) { dst = out; dst_rs = out_rs; }
        else { dst = bufs[(i + 1) & 1]; dst_rs = n; }
        run_combine(radices[i], spans[i], counts[i], batch,
                    cur, cur_rs, twiddles[i], matrices[i], dst, dst_rs);
        cur = dst;
        cur_rs = dst_rs;
    }
}

/* Two-buffer driver: mirrors StageProgram.execute_into.  `data` holds the
 * input and is clobbered (it becomes the staging area), the result lands in
 * `work`.  With an odd stage count the first stage runs un-fused (twiddle
 * staging into `data`, plain butterfly back into `work`) so the fused
 * alternation of the remaining even count still finishes in `work`. */
void repro_execute_into(const int64_t batch, const int64_t n, const int64_t base,
                        const double* base_matrix, const int64_t nstages,
                        const int64_t* restrict radices, const int64_t* restrict spans,
                        const int64_t* restrict counts,
                        const double* const* twiddles, const double* const* matrices,
                        double* data, const int64_t data_rs,
                        double* work, const int64_t work_rs)
{
    const int64_t q0 = n / base;
    run_base(batch, q0, base, base_matrix, data, data_rs, work, work_rs);
    int64_t i = 0;
    if (nstages & 1) {
        twiddle_mult(batch, radices[0], counts[0], spans[0],
                     work, work_rs, twiddles[0], data, data_rs);
        run_combine(radices[0], spans[0], counts[0], batch,
                    data, data_rs, (const double*)0, matrices[0], work, work_rs);
        i = 1;
    }
    const double* cur = work;
    int64_t cur_rs = work_rs;
    for (; i < nstages; ++i) {
        double* dst = (cur == work) ? data : work;
        const int64_t dst_rs = (cur == work) ? data_rs : work_rs;
        run_combine(radices[i], spans[i], counts[i], batch,
                    cur, cur_rs, twiddles[i], matrices[i], dst, dst_rs);
        cur = dst;
        cur_rs = dst_rs;
    }
}
"""


def generate_source() -> str:
    """The complete C translation unit of the native kernel tier."""

    parts = [_PRELUDE]
    for r in CODELET_RADICES:
        parts.append(_base_codelet(r))
    for r in CODELET_RADICES:
        parts.append(_combine_codelet(r, twiddled=True))
        parts.append(_combine_codelet(r, twiddled=False))
    parts.append(_GENERIC)
    parts.append(_dispatchers())
    parts.append(_DRIVERS)
    return "\n".join(parts)

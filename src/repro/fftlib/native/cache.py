"""Compile-once kernel cache for the native tier.

The generated C source is compiled at most once per (generator version,
compiler identity, flags) into a shared object under a per-user cache
directory, then loaded with stdlib :mod:`ctypes` - the tier adds zero hard
dependencies and zero build-time requirements beyond a working ``cc``.

Layout and invalidation
-----------------------
The cache directory is, in order of preference, ``$REPRO_NATIVE_CACHE``,
``$XDG_CACHE_HOME/repro/native``, or ``~/.cache/repro/native``.  Each entry
is named ``repro_native_<key>.so`` where ``<key>`` hashes the full generated
source text (which embeds :data:`~.generator.GENERATOR_VERSION` and the
radix set), the compiler identity line, and the flag list - so a generator
change, a compiler upgrade, or a flag change each produce a fresh entry and
stale objects are simply never looked up again (persisted like wisdom, and
safe to ``rm -rf`` at any time).

Concurrency
-----------
First-compile stampedes are safe both in-process and across processes: the
module-level lock serialises threads of one interpreter, and the shared
object is written to a per-pid temporary name then published with
``os.replace`` (atomic on POSIX), so concurrent builders at worst do
redundant work and the loser's rename harmlessly overwrites an identical
file.  Loading always goes through the published name.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.telemetry import trace as _trace

from .generator import GENERATOR_VERSION, NATIVE_ABI, generate_source

__all__ = [
    "CacheStats",
    "compiler_command",
    "cache_dir",
    "load_library",
    "cache_stats",
    "reset_cache_state",
]

_BASE_FLAGS: Tuple[str, ...] = ("-O3", "-fPIC", "-shared", "-fno-math-errno")
_ARCH_FLAG = "-march=native"

_lock = threading.Lock()
_library: Optional[ctypes.CDLL] = None
_load_attempted = False
_failure_reason: Optional[str] = None

_stats_lock = threading.Lock()
_compiles = 0
_disk_hits = 0
_failures = 0


@dataclass(frozen=True)
class CacheStats:
    """``cache_info()``-style counters for the kernel cache."""

    compiles: int
    disk_hits: int
    failures: int
    loaded: bool
    reason: Optional[str]


def compiler_command() -> Optional[List[str]]:
    """The C compiler to use, or ``None`` when the host has none.

    ``$CC`` wins when set (split on whitespace so ``CC="ccache cc"`` works);
    otherwise the first of ``cc``/``gcc``/``clang`` found on ``$PATH``.
    """

    env_cc = os.environ.get("CC", "").split()
    candidates: List[List[str]] = [env_cc] if env_cc else []
    candidates += [["cc"], ["gcc"], ["clang"]]
    for cand in candidates:
        path = _which(cand[0])
        if path is not None:
            return [path] + cand[1:]
    return None


def _which(name: str) -> Optional[str]:
    if os.sep in name:
        return name if os.access(name, os.X_OK) else None
    for d in os.environ.get("PATH", "").split(os.pathsep):
        if not d:
            continue
        cand = os.path.join(d, name)
        if os.access(cand, os.X_OK) and os.path.isfile(cand):
            return cand
    return None


def _compiler_id(cc: Sequence[str]) -> str:
    """A stable identity line for the compiler (first line of ``--version``)."""

    try:
        out = subprocess.run(
            list(cc) + ["--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        ).stdout
    except OSError:
        out = ""
    first = out.splitlines()[0] if out else ""
    return f"{cc[0]}::{first}"


def cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(root, "repro", "native")


def _cache_key(source: str, compiler_id: str, flags: Sequence[str]) -> str:
    h = hashlib.sha256()
    h.update(f"generator={GENERATOR_VERSION};abi={NATIVE_ABI}\n".encode())
    h.update(compiler_id.encode())
    h.update(("\n" + " ".join(flags) + "\n").encode())
    h.update(source.encode())
    return h.hexdigest()[:24]


def _compile(
    cc: Sequence[str], source: str, flags: Sequence[str], out_path: str
) -> Optional[str]:
    """Compile ``source`` to ``out_path``; return an error string on failure."""

    tmp_so = f"{out_path}.{os.getpid()}.tmp"
    with tempfile.NamedTemporaryFile(
        "w", suffix=".c", prefix="repro_native_", delete=False
    ) as f:
        f.write(source)
        c_path = f.name
    try:
        proc = subprocess.run(
            list(cc) + list(flags) + [c_path, "-o", tmp_so, "-lm"],
            capture_output=True,
            text=True,
            timeout=300,
            check=False,
        )
        if proc.returncode != 0:
            return (proc.stderr or proc.stdout or "unknown compiler error").strip()[
                :500
            ]
        os.replace(tmp_so, out_path)
        return None
    except (OSError, subprocess.TimeoutExpired) as exc:
        return f"{type(exc).__name__}: {exc}"
    finally:
        for leftover in (c_path, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass


def _load_so(path: str) -> Optional[ctypes.CDLL]:
    """Load and ABI-check a compiled object; ``None`` when unusable."""

    try:
        lib = ctypes.CDLL(path)
        lib.repro_native_abi.restype = ctypes.c_int64
        lib.repro_native_abi.argtypes = []
        if lib.repro_native_abi() != NATIVE_ABI:
            return None
        return lib
    except OSError:
        return None


def _build_and_load() -> Tuple[Optional[ctypes.CDLL], Optional[str]]:
    global _compiles, _disk_hits, _failures
    cc = compiler_command()
    if cc is None:
        return None, "no C compiler found (checked $CC, cc, gcc, clang)"
    source = generate_source()
    compiler_id = _compiler_id(cc)
    directory = cache_dir()
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        return None, f"cache dir unavailable: {exc}"

    flag_sets = [_BASE_FLAGS + (_ARCH_FLAG,), _BASE_FLAGS]
    last_error = "compile failed"
    for flags in flag_sets:
        key = _cache_key(source, compiler_id, flags)
        so_path = os.path.join(directory, f"repro_native_{key}.so")
        if os.path.exists(so_path):
            lib = _load_so(so_path)
            if lib is not None:
                with _stats_lock:
                    _disk_hits += 1
                if _trace.active:
                    _trace.emit("native-cache-hit", path=so_path)
                return lib, None
            # Stale/corrupt entry: fall through and rebuild over it.
        error = _compile(cc, source, flags, so_path)
        if error is None:
            lib = _load_so(so_path)
            if lib is not None:
                with _stats_lock:
                    _compiles += 1
                if _trace.active:
                    _trace.emit(
                        "native-compile", path=so_path, flags=" ".join(flags)
                    )
                return lib, None
            last_error = "compiled object failed to load or ABI mismatch"
        else:
            last_error = error
        # -march=native can be unsupported (older cc, exotic arch): retry
        # with the portable flag set before giving up.
    with _stats_lock:
        _failures += 1
    if _trace.active:
        _trace.emit("native-compile-failed", reason=last_error)
    return None, f"compile failed: {last_error}"


def load_library() -> Tuple[Optional[ctypes.CDLL], Optional[str]]:
    """The process-wide kernel library, building it on first use.

    Returns ``(library, None)`` on success or ``(None, reason)`` when the
    tier is unavailable.  The outcome is cached: later callers get the same
    answer without re-running the compiler.
    """

    global _library, _load_attempted, _failure_reason
    if _load_attempted:
        return _library, _failure_reason
    with _lock:
        if _load_attempted:
            return _library, _failure_reason
        lib, reason = _build_and_load()
        _library = lib
        _failure_reason = reason
        _load_attempted = True
    return _library, _failure_reason


def cache_stats() -> CacheStats:
    with _stats_lock:
        return CacheStats(
            compiles=_compiles,
            disk_hits=_disk_hits,
            failures=_failures,
            loaded=_library is not None,
            reason=_failure_reason,
        )


def reset_cache_state() -> None:
    """Forget the loaded library and counters (test hook)."""

    global _library, _load_attempted, _failure_reason
    global _compiles, _disk_hits, _failures
    with _lock:
        _library = None
        _load_attempted = False
        _failure_reason = None
    with _stats_lock:
        _compiles = 0
        _disk_hits = 0
        _failures = 0

"""Native codelet kernel tier: generated C stage bodies behind ``ctypes``.

The tier compiles :mod:`~repro.fftlib.native.generator`'s C translation unit
once per (generator version, compiler, flags) into a per-user kernel cache
(:mod:`~repro.fftlib.native.cache`) and dispatches compiled
:class:`~repro.fftlib.executor.StageProgram` bodies to it through
:mod:`~repro.fftlib.native.kernels` - zero hard dependencies, GIL-free
execution, and silent pure-NumPy fallback whenever any link in that chain
is missing (no compiler, failed compile, ``REPRO_NO_NATIVE=1``, or an
unsupported program shape).
"""

from repro.fftlib.native.cache import cache_dir, cache_stats
from repro.fftlib.native.generator import (
    CODELET_RADICES,
    GENERATOR_VERSION,
    generate_source,
)
from repro.fftlib.native.kernels import (
    NativeProgram,
    build_native_program,
    get_native_kernels,
    native_info,
    native_supported,
    native_unavailable_reason,
    reset_native_state,
)

__all__ = [
    "CODELET_RADICES",
    "GENERATOR_VERSION",
    "generate_source",
    "cache_dir",
    "cache_stats",
    "NativeProgram",
    "build_native_program",
    "get_native_kernels",
    "native_info",
    "native_supported",
    "native_unavailable_reason",
    "reset_native_state",
]

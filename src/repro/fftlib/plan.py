"""Plan objects: a prepared transform of one size and direction.

FFTW separates *planning* (choosing a decomposition, precomputing twiddle
tables) from *execution* (applying the plan to data).  The ABFT wrappers in
:mod:`repro.core` follow the same split: they are handed a plan and attach
checksum state to it.  A :class:`Plan` is immutable and reusable across many
executions, which is also what makes the fault-injection campaigns cheap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.backends import get_backend, resolve_backend_name
from repro.fftlib.codelets import codelet_flop_count, has_codelet
from repro.utils.validation import ensure_positive_int

__all__ = ["PlanDirection", "PlanStrategy", "Plan"]


class PlanDirection(enum.Enum):
    """Transform direction (FFTW_FORWARD / FFTW_BACKWARD)."""

    FORWARD = "forward"
    BACKWARD = "backward"


class PlanStrategy(enum.Enum):
    """How a plan executes its transform."""

    CODELET = "codelet"
    DIRECT = "direct"
    MIXED_RADIX = "mixed-radix"
    BLUESTEIN = "bluestein"


def estimate_flops(n: int) -> float:
    """Rough real-operation count of an ``n``-point transform.

    The paper's overhead analysis (Section 7) uses ``5 N log2 N`` as the
    baseline operation count of the FFT itself; we use the same figure for
    composite sizes and the codelet tables for tiny sizes so that planner
    decisions and the :mod:`repro.perfmodel` package agree.
    """

    n = ensure_positive_int(n, name="n")
    if has_codelet(n):
        return float(codelet_flop_count(n))
    if factorization.is_prime(n) and n > 61:
        # Bluestein: three power-of-two FFTs of length ~2n plus O(n) chirps.
        m = 2 * n
        return 3 * 5.0 * m * np.log2(m) + 10.0 * n
    return 5.0 * n * max(np.log2(n), 1.0)


def _native_program_state(program: object) -> tuple:
    """``(active, reason)`` of the native lowering beneath ``program``.

    Walks the wrapper chain (real -> half complex, Stockham -> half complex,
    threaded -> row/serial sub-program) down to the
    :class:`~repro.fftlib.executor.StageProgram` that carries the native
    kernel handle, so ``describe()`` can report what actually executes.
    """

    for _ in range(4):  # Real -> Stockham -> StageProgram is the deepest chain
        if program is None:
            break
        if hasattr(program, "native_fallback_reason"):
            if getattr(program, "native", None) is not None:
                return True, None
            return False, getattr(program, "native_fallback_reason", None)
        program = (
            getattr(program, "program", None)
            or getattr(program, "serial", None)
            or getattr(program, "row_program", None)
        )
    return False, None


@dataclass(frozen=True)
class Plan:
    """A prepared 1-D transform of length ``n``.

    Parameters
    ----------
    n:
        Transform length.
    direction:
        Forward (negative exponent) or backward (positive exponent,
        normalised by ``1/n``).
    strategy:
        Execution strategy; chosen by :class:`repro.fftlib.planner.Planner`
        when not given explicitly.  Only meaningful for the ``fftlib``
        backend; other backends apply their own kernel wholesale.
    backend:
        Registry name of the sub-FFT kernel (see
        :mod:`repro.fftlib.backends`).  ``None`` resolves to the process-wide
        default at execution time.
    real:
        Real-input mode: the forward plan maps ``n`` real samples to the
        packed ``n//2 + 1`` half-complex spectrum, the backward plan maps
        the packed spectrum back to ``n`` real samples.  Lowered to a
        :class:`~repro.fftlib.executor.RealStageProgram` on the ``fftlib``
        backend (roughly half the flops/bytes of the complex plan).
    threads:
        Worker count of the shared-memory six-step lowering
        (:class:`~repro.runtime.threaded.ThreadedSixStepProgram`).  ``1``
        (the default) keeps the serial compiled program; values above 1 run
        the transform's phases as chunked batches on the process-wide
        worker pool.  Only the ``fftlib`` backend lowers threaded programs
        (complex plans); elsewhere the knob is inert.
    inplace:
        In-place execution (the paper's Section 5 discipline): the plan
        lowers to the Stockham autosort program
        (:class:`~repro.fftlib.executor.StockhamStageProgram`) when the
        size supports it, halving the working set - the caller's buffer
        plus a single half-size scratch instead of a full-size ping-pong
        pair - and :meth:`execute_inplace` overwrites the caller's buffer.
        Unsupported sizes (odd, Bluestein halves) and foreign backends keep
        their usual lowering; ``execute_inplace`` still honours the
        overwrite *semantics* there via one out-of-place transform plus a
        copy back.
    native:
        Native kernel tier (see :mod:`repro.fftlib.native`): the lowered
        stage programs dispatch their combine/base bodies to generated C
        kernels loaded via ``ctypes`` - one GIL-free foreign call per
        transform.  Requesting it never fails: with no C compiler, a failed
        compile, ``REPRO_NO_NATIVE=1``, or an unsupported program shape
        (Bluestein bases) the plan silently keeps its pure-NumPy stage
        bodies and :meth:`describe` reports the fallback reason.  Only the
        ``fftlib`` backend lowers native programs (see
        :attr:`~repro.fftlib.backends.FFTBackend.supports_native`).
    """

    n: int
    direction: PlanDirection = PlanDirection.FORWARD
    strategy: PlanStrategy = PlanStrategy.MIXED_RADIX
    flops: float = field(default=0.0, compare=False)
    backend: Optional[str] = None
    real: bool = False
    threads: int = 1
    inplace: bool = False
    native: bool = False
    #: ``"kind-fallback(reason)"`` notes for capability requests the planner
    #: could not honour (threads/inplace/native collapsed by measurement or
    #: unsupported sizes); surfaced verbatim by :meth:`describe` and mirrored
    #: as ``fallback`` telemetry events at plan-creation time.
    fallbacks: tuple = field(default=(), compare=False, repr=False)
    #: compiled stage program (``fftlib`` backend only); built at plan time
    #: so ``execute`` pays no factorization/twiddle setup.
    program: Optional[object] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        ensure_positive_int(self.n, name="n")
        if self.threads is None or int(self.threads) < 1:
            object.__setattr__(self, "threads", 1)
        else:
            object.__setattr__(self, "threads", int(self.threads))
        object.__setattr__(self, "inplace", bool(self.inplace))
        object.__setattr__(self, "native", bool(self.native))
        if self.flops == 0.0:
            # Conjugate-even packing does the work of a half-length complex
            # transform plus an O(n) repack.
            flops = estimate_flops(self.n)
            object.__setattr__(self, "flops", 0.5 * flops if self.real else flops)
        # Compile (or fetch the cached) stage program at plan time - the
        # FFTW split: all factorization, twiddle-table, and butterfly-matrix
        # work happens here, never inside execute().  Other backends own
        # their tables, so only the internal engine lowers a program.
        if self.program is None and resolve_backend_name(self.backend) == "fftlib":
            from repro.fftlib.executor import (
                get_program,
                get_real_program,
                get_stockham_program,
                stockham_supported,
            )

            if self.real:
                lowered = get_real_program(self.n, native=self.native)
            elif self.threads > 1:
                from repro.runtime.threaded import get_threaded_program

                lowered = get_threaded_program(
                    self.n, self.threads, inplace=self.inplace, native=self.native
                )
            elif self.inplace and stockham_supported(self.n):
                lowered = get_stockham_program(self.n, native=self.native)
            else:
                lowered = get_program(self.n, native=self.native)
            object.__setattr__(self, "program", lowered)

    # ------------------------------------------------------------------
    @property
    def is_forward(self) -> bool:
        return self.direction is PlanDirection.FORWARD

    @property
    def bins(self) -> int:
        """Number of packed half-complex bins (``n//2 + 1``; real plans)."""

        return self.n // 2 + 1

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Apply the plan to the last axis of ``x`` and return a new array."""

        if self.real:
            return self._execute_real(x)
        x = np.asarray(x, dtype=np.complex128)
        if x.shape[-1] != self.n:
            raise ValueError(
                f"plan of size {self.n} applied to array with last axis {x.shape[-1]}"
            )
        # Explicit fftlib plans run their compiled program directly (the
        # tight loop in repro.fftlib.executor); plans with backend=None
        # resolve the process default at call time via the registry, which
        # routes to the same executor when that default is "fftlib".
        program = self.program
        if program is not None and self.backend is not None:
            if self.is_forward:
                return program.execute(x)
            return np.conj(program.execute(np.conj(x))) / self.n
        kernel = get_backend(self.backend)
        if self.is_forward:
            return kernel.fft(x, axis=-1)
        return kernel.ifft(x, axis=-1)

    def _execute_real(self, x: np.ndarray) -> np.ndarray:
        """Real-mode execution: float input -> packed spectrum (or back)."""

        program = self.program if self.backend is not None else None
        if self.is_forward:
            x = np.asarray(x, dtype=np.float64)
            if x.shape[-1] != self.n:
                raise ValueError(
                    f"real plan of size {self.n} applied to array with last axis {x.shape[-1]}"
                )
            if program is not None:
                return program.execute(x)
            return get_backend(self.backend).rfft(x, axis=-1)
        spectrum = np.asarray(x, dtype=np.complex128)
        if spectrum.shape[-1] != self.bins:
            raise ValueError(
                f"real plan of size {self.n} expects {self.bins} packed bins, "
                f"got last axis {spectrum.shape[-1]}"
            )
        if program is not None:
            return program.execute_inverse(spectrum)
        return get_backend(self.backend).irfft(spectrum, n=self.n, axis=-1)

    def execute_inplace(self, buffer: np.ndarray) -> np.ndarray:
        """Apply the plan to ``buffer``'s last axis, overwriting ``buffer``.

        ``buffer`` must be a writeable C-contiguous complex128 array whose
        last axis has length ``n`` (real plans change the output length and
        therefore have no in-place form).  Plans lowered to the Stockham
        autosort program run with a single half-size scratch; any other
        lowering (unsupported sizes, foreign backends, threaded six-step
        programs without in-place support) preserves the overwrite
        *semantics* by transforming out of place and copying back, so the
        caller can rely on the buffer holding the result either way.
        """

        if self.real:
            raise ValueError(
                "real plans map n samples to n//2 + 1 bins and cannot run in place"
            )
        buffer = np.asarray(buffer)
        if buffer.ndim == 0 or buffer.shape[-1] != self.n:
            raise ValueError(
                f"plan of size {self.n} applied to buffer with last axis "
                f"{buffer.shape[-1] if buffer.ndim else 0}"
            )
        if (
            buffer.dtype != np.complex128
            or not buffer.flags.c_contiguous
            or not buffer.flags.writeable
        ):
            raise ValueError(
                "execute_inplace requires a writeable C-contiguous complex128 "
                "buffer (the transform overwrites it)"
            )
        program = self.program
        if program is not None and hasattr(program, "execute_inplace"):
            if self.is_forward:
                return program.execute_inplace(buffer)
            return program.execute_inverse_inplace(buffer)
        result = self.execute(buffer)
        np.copyto(buffer, result)
        return buffer

    def execute_batch(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Apply the plan along an arbitrary axis (batched over the rest).

        All sub-transforms run as one strided batched call; the executor (or
        backend kernel) copies to contiguous storage only when the moved
        view actually requires it.
        """

        x = np.asarray(x)
        if not (self.real and self.is_forward):
            # Forward real plans keep their float64 input; everything else
            # runs in complex128.
            x = np.asarray(x, dtype=np.complex128)
        moved = np.moveaxis(x, axis, -1)
        return np.moveaxis(self.execute(moved), -1, axis)

    def inverse_plan(self) -> "Plan":
        """Return the plan for the opposite direction."""

        direction = (
            PlanDirection.BACKWARD if self.is_forward else PlanDirection.FORWARD
        )
        return Plan(
            self.n, direction, self.strategy, self.flops, self.backend, self.real,
            self.threads, self.inplace, self.native, self.fallbacks,
        )

    def profile(self, x: np.ndarray) -> object:
        """Time one execution phase by phase (a :class:`ProfileResult`).

        Lowered ``fftlib`` plans delegate to their compiled program's
        ``profile`` (per-stage timings); any other lowering reports a
        single end-to-end entry.  One real execution runs either way and
        its output is available as ``result.output``.
        """

        import time as _time

        from repro.telemetry import ProfileEntry, ProfileResult

        program = self.program
        if program is not None and hasattr(program, "profile") and self.is_forward:
            inner = program.profile(x)
            return ProfileResult(
                n=self.n,
                description=self.describe(),
                entries=inner.entries,
                total_seconds=inner.total_seconds,
                output=inner.output,
            )
        start = _time.perf_counter()
        output = self.execute(x)
        elapsed = _time.perf_counter() - start
        return ProfileResult(
            n=self.n,
            description=self.describe(),
            entries=(ProfileEntry("execute (end to end)", elapsed),),
            total_seconds=elapsed,
            output=output,
        )

    def describe(self) -> str:
        """Human-readable one-line description (mirrors ``fftw_print_plan``)."""

        factors = "x".join(str(f) for f in factorization.radix_schedule(self.n))
        backend = self.backend or "fftlib"
        kind = "real, " if self.real else ""
        threaded = f", threads={self.threads}" if self.threads > 1 else ""
        if self.threads > 1 and getattr(self.program, "serial", None) is not None:
            # A threaded plan whose program lowered to the serial fallback
            # (size/profitability collapse inside the program itself).
            reason = (
                getattr(self.program, "fallback_reason", None)
                or "not profitable for this size"
            )
            threaded = f", threads-fallback({reason})"
        inplace = ", inplace" if self.inplace else ""
        native = ""
        if self.native:
            active, reason = _native_program_state(self.program)
            if active:
                native = ", native"
            else:
                if reason is None:
                    reason = (
                        "not lowered"
                        if resolve_backend_name(self.backend) == "fftlib"
                        else f"backend {backend} has no native lowering"
                    )
                native = f", native-fallback({reason})"
        notes = "".join(
            f", {note}" for note in self.fallbacks if note not in (threaded, native)
        )
        return (
            f"Plan(n={self.n}, {kind}dir={self.direction.value}, "
            f"strategy={self.strategy.value}, backend={backend}{threaded}"
            f"{inplace}{native}{notes}, radices={factors}, ~{self.flops:.0f} flops)"
        )

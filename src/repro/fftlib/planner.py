"""The planner: strategy selection and plan caching ("wisdom").

FFTW's planner searches the space of decompositions and remembers the best
("wisdom").  The reproduction keeps the same interface at a much smaller
scale: the planner picks one of the execution strategies from
:class:`repro.fftlib.plan.PlanStrategy` per size, optionally by measuring, and
caches the resulting :class:`~repro.fftlib.plan.Plan` objects so repeated
requests (e.g. thousands of sub-FFT plans inside a fault campaign) are free.

Planning for the internal engine also *lowers* the size into a compiled
iterative stage program (see :mod:`repro.fftlib.executor`): the radix
schedule, per-stage twiddle tables, butterfly matrices, and base kernel are
all resolved when the plan is created, so ``execute`` is a tight loop with no
recursion and no repeated factorization.  :meth:`Planner.lower` exposes the
lowering directly.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.backends import resolve_backend_name
from repro.fftlib.codelets import has_codelet
from repro.fftlib.plan import Plan, PlanDirection, PlanStrategy, estimate_flops

__all__ = ["PlannerPolicy", "Planner", "plan_fft", "get_default_planner"]


class PlannerPolicy(enum.Enum):
    """How much effort the planner spends choosing a strategy.

    ``ESTIMATE`` mirrors ``FFTW_ESTIMATE``: choose by a cost heuristic only.
    ``MEASURE`` mirrors ``FFTW_MEASURE``: time the candidate strategies on a
    random input of the requested size and keep the fastest.
    """

    ESTIMATE = "estimate"
    MEASURE = "measure"


def _heuristic_strategy(n: int) -> PlanStrategy:
    if has_codelet(n):
        return PlanStrategy.CODELET
    if factorization.is_prime(n):
        return PlanStrategy.DIRECT if n <= 61 else PlanStrategy.BLUESTEIN
    return PlanStrategy.MIXED_RADIX


@dataclass
class Planner:
    """Creates and caches :class:`Plan` objects.

    Attributes
    ----------
    policy:
        Planning effort (estimate vs. measure).
    wisdom:
        Cache of previously created plans keyed by
        ``(n, direction, backend)``.
    """

    policy: PlannerPolicy = PlannerPolicy.ESTIMATE
    wisdom: Dict[Tuple[int, PlanDirection, str], Plan] = field(default_factory=dict)
    measurements: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def plan(
        self,
        n: int,
        direction: PlanDirection = PlanDirection.FORWARD,
        backend: Optional[str] = None,
    ) -> Plan:
        """Return a (cached) plan for an ``n``-point transform.

        ``backend`` selects the sub-FFT kernel (see
        :mod:`repro.fftlib.backends`); plans are cached per backend so a
        process can mix kernels freely.
        """

        backend_name = resolve_backend_name(backend)
        key = (int(n), direction, backend_name)
        cached = self.wisdom.get(key)
        if cached is not None:
            return cached

        if self.policy is PlannerPolicy.MEASURE and n >= 32 and backend_name == "fftlib":
            strategy = self._measure_strategy(int(n))
        else:
            strategy = _heuristic_strategy(int(n))
        plan = Plan(int(n), direction, strategy, estimate_flops(int(n)), backend_name)
        self.wisdom[key] = plan
        return plan

    # ------------------------------------------------------------------
    def _measure_strategy(self, n: int) -> PlanStrategy:
        """Time the available strategies on a random input; keep the fastest.

        Only strategies that are *correct* for the size are candidates; the
        heuristic strategy is always among them so measurement can only
        improve on the estimate.
        """

        from repro.fftlib.bluestein import bluestein_fft
        from repro.fftlib.mixed_radix import fft as mixed_fft
        from repro.fftlib.dft import direct_dft

        rng = np.random.default_rng(1234 + n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)

        candidates = {}
        candidates[PlanStrategy.MIXED_RADIX] = lambda: mixed_fft(x)
        if n <= 2048:
            candidates[PlanStrategy.DIRECT] = lambda: direct_dft(x)
        candidates[PlanStrategy.BLUESTEIN] = lambda: bluestein_fft(x)
        if has_codelet(n):
            candidates[PlanStrategy.CODELET] = lambda: mixed_fft(x)

        timings: Dict[str, float] = {}
        best_strategy = _heuristic_strategy(n)
        best_time = float("inf")
        for strategy, fn in candidates.items():
            fn()  # warm-up / twiddle-cache fill
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            timings[strategy.value] = elapsed
            if elapsed < best_time:
                best_time = elapsed
                best_strategy = strategy
        self.measurements[n] = timings
        return best_strategy

    # ------------------------------------------------------------------
    def lower(self, n: int):
        """The compiled :class:`~repro.fftlib.executor.StageProgram` for ``n``.

        Lowering is memoized process-wide (programs are immutable and
        backend-independent), so this is cheap after the first call per
        size; plans created by :meth:`plan` reference the same object.
        """

        from repro.fftlib.executor import get_program

        return get_program(int(n))

    # ------------------------------------------------------------------
    def forget(self) -> None:
        """Drop all accumulated wisdom."""

        self.wisdom.clear()
        self.measurements.clear()

    def export_wisdom(self) -> Dict[str, str]:
        """Serialise wisdom as ``{"n:direction:backend": strategy}``."""

        return {
            f"{n}:{direction.value}:{backend}": plan.strategy.value
            for (n, direction, backend), plan in self.wisdom.items()
        }

    def import_wisdom(self, data: Dict[str, str]) -> None:
        """Re-create plans from :meth:`export_wisdom` output.

        The pre-backend two-field format (``"n:direction"``) is still
        accepted and mapped to the default backend.
        """

        for key, strategy_name in data.items():
            parts = key.split(":")
            n = int(parts[0])
            direction = PlanDirection(parts[1])
            backend = resolve_backend_name(parts[2] if len(parts) > 2 else None)
            strategy = PlanStrategy(strategy_name)
            self.wisdom[(n, direction, backend)] = Plan(
                n, direction, strategy, backend=backend
            )


_DEFAULT_PLANNER = Planner()


def get_default_planner() -> Planner:
    """Return the shared process-wide planner."""

    return _DEFAULT_PLANNER


def plan_fft(
    n: int,
    direction: PlanDirection = PlanDirection.FORWARD,
    backend: Optional[str] = None,
) -> Plan:
    """Convenience wrapper around the default planner."""

    return _DEFAULT_PLANNER.plan(n, direction, backend)

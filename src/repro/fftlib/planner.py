"""The planner: strategy selection and plan caching ("wisdom").

FFTW's planner searches the space of decompositions and remembers the best
("wisdom").  The reproduction keeps the same interface at a much smaller
scale: the planner picks one of the execution strategies from
:class:`repro.fftlib.plan.PlanStrategy` per size, optionally by measuring, and
caches the resulting :class:`~repro.fftlib.plan.Plan` objects so repeated
requests (e.g. thousands of sub-FFT plans inside a fault campaign) are free.

Planning for the internal engine also *lowers* the size into a compiled
iterative stage program (see :mod:`repro.fftlib.executor`): the radix
schedule, per-stage twiddle tables, butterfly matrices, and base kernel are
all resolved when the plan is created, so ``execute`` is a tight loop with no
recursion and no repeated factorization.  :meth:`Planner.lower` exposes the
lowering directly.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, cast

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.backends import get_backend, resolve_backend_name
from repro.fftlib.codelets import has_codelet
from repro.fftlib.plan import Plan, PlanDirection, PlanStrategy
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

__all__ = ["PlannerPolicy", "Planner", "plan_fft", "get_default_planner"]


class PlannerPolicy(enum.Enum):
    """How much effort the planner spends choosing a strategy.

    ``ESTIMATE`` mirrors ``FFTW_ESTIMATE``: choose by a cost heuristic only.
    ``MEASURE`` mirrors ``FFTW_MEASURE``: time the candidate strategies on a
    random input of the requested size and keep the fastest.
    """

    ESTIMATE = "estimate"
    MEASURE = "measure"


def _heuristic_strategy(n: int) -> PlanStrategy:
    if has_codelet(n):
        return PlanStrategy.CODELET
    if factorization.is_prime(n):
        return PlanStrategy.DIRECT if n <= 61 else PlanStrategy.BLUESTEIN
    return PlanStrategy.MIXED_RADIX


def _strategy_is_valid(strategy: PlanStrategy, n: int) -> bool:
    """Whether a (possibly imported) strategy is correct/sane for size ``n``."""

    if strategy is PlanStrategy.CODELET:
        return has_codelet(n)
    if strategy is PlanStrategy.DIRECT:
        return n <= 2048
    return True


@dataclass
class Planner:
    """Creates and caches :class:`Plan` objects.

    Attributes
    ----------
    policy:
        Planning effort (estimate vs. measure).
    wisdom:
        Cache of previously created plans keyed by
        ``(n, direction, backend, real, threads, inplace, native)``.
    """

    policy: PlannerPolicy = PlannerPolicy.ESTIMATE
    wisdom: Dict[Tuple[int, PlanDirection, str, bool, int, bool, bool], Plan] = field(
        default_factory=dict
    )
    measurements: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: serial-vs-threaded timings per ``"n:t{threads}"`` request (MEASURE
    #: mode); ride along in exported wisdom so an imported planner reuses
    #: the recorded winner without re-timing.
    thread_measurements: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ping-pong vs in-place Stockham timings per ``"n"`` (MEASURE mode);
    #: same export/import discipline as the thread timings.
    inplace_measurements: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: fused-protected-program vs legacy-scheme timings per ``"n"`` (MEASURE
    #: mode, see :meth:`fused_wins`); same export/import discipline.
    fused_measurements: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: native-kernel vs pure-NumPy stage-body timings per ``"n"`` (MEASURE
    #: mode, see :meth:`_native_wins`); same export/import discipline.
    native_measurements: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: guards every wisdom/measurement mutation: the default planner is
    #: process-wide shared state hit concurrently by threaded fault
    #: campaigns, so unlocked writes here were a latent stampede/lost-update
    #: bug of exactly the class reprolint's lock-discipline rule flags.
    #: Reads stay unlocked (CPython dict reads are atomic; a stale miss just
    #: re-plans and the locked insert keeps the first winner).
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def plan(
        self,
        n: int,
        direction: PlanDirection = PlanDirection.FORWARD,
        backend: Optional[str] = None,
        real: bool = False,
        threads: Optional[int] = None,
        inplace: bool = False,
        native: bool = False,
    ) -> Plan:
        """Return a (cached) plan for an ``n``-point transform.

        ``backend`` selects the sub-FFT kernel (see
        :mod:`repro.fftlib.backends`); plans are cached per backend so a
        process can mix kernels freely.  ``real`` requests the packed
        real-input transform (``n`` real samples <-> ``n//2 + 1`` bins).
        ``threads`` requests the shared-memory six-step lowering (``None`` =
        serial, ``0`` = automatic/pool size, ``N`` = N chunks); the planner
        lowers to the threaded program only when profitable - by heuristic
        in ESTIMATE mode, by timing serial vs threaded (and recording the
        winner in wisdom) in MEASURE mode.  ``inplace`` requests the
        in-place Stockham lowering (caller's buffer plus one half-size
        scratch; :meth:`Plan.execute_inplace`); ESTIMATE honours the
        request whenever the size supports it - the caller asking for
        in-place execution *is* the memory-pressure signal - while MEASURE
        times ping-pong vs Stockham once and records the winner in wisdom.
        ``native`` requests the generated-C kernel tier
        (:mod:`repro.fftlib.native`); ESTIMATE honours the request whenever
        the tier is available, MEASURE times native vs pure-NumPy stage
        bodies once (recorded in wisdom) and keeps the winner.  The request
        never fails: an unavailable tier silently keeps the pure-NumPy
        lowering and the plan's ``describe()`` reports why.
        """

        backend_name = resolve_backend_name(backend)
        real = bool(real)
        nthreads, threads_note = self._normalize_threads(backend_name, real, threads)
        requested_inplace, inplace_note = self._normalize_inplace(
            backend_name, real, inplace
        )
        requested_native, native_note = self._normalize_native(backend_name, native)
        request_notes = [
            note for note in (threads_note, inplace_note, native_note) if note
        ]
        key = (
            int(n), direction, backend_name, real, nthreads, requested_inplace,
            requested_native,
        )
        cached = self.wisdom.get(key)
        if cached is not None:
            # Request-level collapses (real/backend capability) alias onto
            # the plain key, so they are reported per request, hit or miss.
            if request_notes:
                self._record_fallbacks(int(n), request_notes)
            return cached

        if (
            self.policy is PlannerPolicy.MEASURE
            and n >= 32
            and backend_name == "fftlib"
            and not real
        ):
            strategy = self._best_measured_strategy(int(n))
        else:
            strategy = _heuristic_strategy(int(n))
        effective = self._effective_threads(int(n), nthreads)
        lowered_inplace = self._effective_inplace(int(n), requested_inplace)
        lowered_native = self._effective_native(int(n), requested_native)
        notes = list(request_notes)
        if nthreads > 1 and effective == 1:
            notes.append(
                f"threads-fallback({self._threads_collapse_reason(int(n), nthreads)})"
            )
        if requested_inplace and not lowered_inplace:
            notes.append(
                f"inplace-fallback({self._inplace_collapse_reason(int(n))})"
            )
        if requested_native and not lowered_native:
            # _effective_native keeps unsupported requests (describe reports
            # them); a dropped flag can only mean a measured loss.
            notes.append("native-fallback(measured slower than pure NumPy)")
        if notes:
            self._record_fallbacks(int(n), notes)
        plan = Plan(
            int(n), direction, strategy, 0.0, backend_name, real, effective,
            lowered_inplace, lowered_native, tuple(notes),
        )
        # two racing planners build equivalent plans; setdefault keeps the
        # first one so every caller shares a single Plan object per key
        with self._lock:
            return self.wisdom.setdefault(key, plan)

    # ------------------------------------------------------------------
    @staticmethod
    def _record_fallbacks(n: int, notes: "list[str]") -> None:
        """Count + trace each ``kind-fallback(reason)`` capability fallback."""

        for note in notes:
            kind, _, rest = note.partition("-fallback(")
            reason = rest[:-1] if rest.endswith(")") else rest
            _metrics.inc("capability_fallbacks", kind=kind, reason=reason)
            if _trace.active:
                _trace.emit("fallback", kind=kind, n=n, reason=reason)

    @staticmethod
    def _record_race(
        race: str, n: int, challenger: str, incumbent: str, timings: Dict[str, float]
    ) -> None:
        """Count + trace the outcome of one freshly measured wisdom race."""

        winner = challenger if timings[challenger] < timings[incumbent] else incumbent
        _metrics.inc("wisdom_measure_races", race=race, winner=winner)
        if _trace.active:
            _trace.emit(
                "measure-race",
                race=race,
                n=int(n),
                winner=winner,
                timings={name: float(t) for name, t in timings.items()},
            )

    @staticmethod
    def _threads_collapse_reason(n: int, nthreads: int) -> str:
        """Why a supported threads request lowered to the serial program."""

        from repro.runtime.threaded import MIN_THREADED_SIZE, threading_profitable

        if n < MIN_THREADED_SIZE:
            return "size below threaded threshold"
        if not threading_profitable(n, nthreads):
            return "no balanced split for this factorization"
        return "measured slower than serial"

    @staticmethod
    def _inplace_collapse_reason(n: int) -> str:
        """Why a supported inplace request kept the ping-pong program."""

        from repro.fftlib.executor import stockham_supported

        if not stockham_supported(n):
            return "no Stockham lowering for this size"
        return "measured slower than ping-pong"

    # ------------------------------------------------------------------
    def _normalize_threads(
        self, backend_name: str, real: bool, threads: Optional[int]
    ) -> Tuple[int, Optional[str]]:
        """Resolve the requested ``threads`` knob to a concrete chunk count.

        Real plans and backends without :attr:`~repro.fftlib.backends.
        FFTBackend.supports_threads` stay serial (real transforms thread at
        the batch level inside :class:`~repro.core.ftplan.FTPlan` instead).
        Returns ``(count, note)`` where ``note`` is the
        ``threads-fallback(...)`` wording when the request was collapsed.
        """

        from repro.runtime.pool import resolve_thread_count

        nthreads = resolve_thread_count(threads)
        if nthreads <= 1:
            return 1, None
        if real:
            return 1, "threads-fallback(real plans thread at the batch level)"
        if not getattr(get_backend(backend_name), "supports_threads", False):
            return 1, (
                f"threads-fallback(backend '{backend_name}' has no threaded lowering)"
            )
        return nthreads, None

    def _normalize_inplace(
        self, backend_name: str, real: bool, inplace: bool
    ) -> Tuple[bool, Optional[str]]:
        """Resolve the requested ``inplace`` knob.

        Only the ``fftlib`` backend lowers Stockham programs, and real
        plans change their output length (no in-place form); everywhere
        else the knob is inert, mirroring ``threads``.  Returns
        ``(flag, note)`` like :meth:`_normalize_threads`.
        """

        if not inplace:
            return False, None
        if real:
            return False, "inplace-fallback(real plans have no in-place form)"
        if not getattr(get_backend(backend_name), "supports_inplace", False):
            return False, (
                f"inplace-fallback(backend '{backend_name}' has no Stockham lowering)"
            )
        return True, None

    def _normalize_native(
        self, backend_name: str, native: bool
    ) -> Tuple[bool, Optional[str]]:
        """Resolve the requested ``native`` knob.

        Only backends advertising
        :attr:`~repro.fftlib.backends.FFTBackend.supports_native` lower the
        generated-C stage bodies (foreign kernels are already compiled
        code); everywhere else the knob is inert, mirroring ``threads`` and
        ``inplace``.  Returns ``(flag, note)`` like the other knobs.
        """

        if not native:
            return False, None
        if not getattr(get_backend(backend_name), "supports_native", False):
            return False, (
                f"native-fallback(backend '{backend_name}' has no native lowering)"
            )
        return True, None

    def _effective_native(
        self, n: int, native: bool, *, allow_timing: bool = True
    ) -> bool:
        """Whether the plan actually requests native-kernel stage bodies.

        ESTIMATE mode honours any supported request (the lowering itself
        still degrades silently if a specific program shape has no native
        kernels).  MEASURE mode times native vs pure-NumPy stage bodies
        once (recorded under ``native_measurements[str(n)]``, exported with
        the wisdom) and keeps pure NumPy when it measured faster.
        ``allow_timing=False`` (wisdom import) never benchmarks.
        """

        if not native:
            return False
        from repro.fftlib.native import native_supported

        if not native_supported():
            # The tier is down (no compiler / disabled): plan with the
            # pure-NumPy lowering but keep the *request* so describe()
            # reports the fallback instead of silently dropping the flag.
            return True
        if self.policy is PlannerPolicy.MEASURE:
            timings = self.native_measurements.get(str(n))
            if timings and "native" in timings and "numpy" in timings:
                return timings["native"] < timings["numpy"]
            if not allow_timing:
                return True
            return self._native_wins(n)
        return True

    def _native_wins(self, n: int) -> bool:
        """MEASURE mode: time native vs pure-NumPy stage bodies, remember."""

        key = str(n)
        timings = self.native_measurements.get(key)
        if not timings or "native" not in timings or "numpy" not in timings:
            from repro.fftlib.executor import get_program

            pure = get_program(n)
            native_program = get_program(n, native=True)
            if native_program.native is None:
                # The size has no native lowering (e.g. Bluestein base):
                # record nothing - there is no second candidate to race.
                return True
            rng = np.random.default_rng(9753 + n)
            x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            timings: Dict[str, float] = {}
            for label, fn in (
                ("numpy", lambda: pure.execute(x)),
                ("native", lambda: native_program.execute(x)),
            ):
                fn()  # warm-up / twiddle-cache + work-buffer fill
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    fn()
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
            with self._lock:
                self.native_measurements[key] = timings
            self._record_race("native-vs-numpy", n, "native", "numpy", timings)
        return timings["native"] < timings["numpy"]

    def _effective_inplace(
        self, n: int, inplace: bool, *, allow_timing: bool = True
    ) -> bool:
        """Whether the plan actually lowers to the Stockham program.

        ESTIMATE mode honours any supported request (the caller asking for
        in-place execution is itself the profitability signal - the point
        is the halved working set).  MEASURE mode times the two lowerings
        once (recorded under ``inplace_measurements[str(n)]``, exported
        with the wisdom) and keeps ping-pong when it measured faster:
        ``Plan.execute_inplace`` preserves the overwrite semantics either
        way.  ``allow_timing=False`` (wisdom import) never benchmarks.
        """

        if not inplace:
            return False
        from repro.fftlib.executor import stockham_supported

        if not stockham_supported(n):
            return False
        if self.policy is PlannerPolicy.MEASURE:
            timings = self.inplace_measurements.get(str(n))
            if timings and "pingpong" in timings and "stockham" in timings:
                return timings["stockham"] < timings["pingpong"]
            if not allow_timing:
                return True
            return self._stockham_wins(n)
        return True

    def _stockham_wins(self, n: int) -> bool:
        """MEASURE mode: time ping-pong vs Stockham once, remember the winner."""

        key = str(n)
        timings = self.inplace_measurements.get(key)
        if not timings or "pingpong" not in timings or "stockham" not in timings:
            from repro.fftlib.executor import (
                get_program,
                get_stockham_program,
                stockham_supported,
            )

            if not stockham_supported(n):
                # every caller today pre-checks, but timing an unsupported
                # size must stay a clean "ping-pong wins", not a KeyError
                return False
            pingpong = get_program(n)
            stockham = get_stockham_program(n)
            rng = np.random.default_rng(8765 + n)
            x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            buf = np.empty(n, dtype=np.complex128)

            def run_stockham() -> None:
                np.copyto(buf, x)
                stockham.execute_inplace(buf)

            timings: Dict[str, float] = {}
            for label, fn in (
                ("pingpong", lambda: pingpong.execute(x)),
                ("stockham", run_stockham),
            ):
                fn()  # warm-up / twiddle-cache + scratch fill
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    fn()
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
            with self._lock:
                self.inplace_measurements[key] = timings
            self._record_race("stockham-vs-pingpong", n, "stockham", "pingpong", timings)
        return timings["stockham"] < timings["pingpong"]

    def fused_wins(
        self,
        n: int,
        fused_fn: "Callable[[np.ndarray], object]",
        scheme_fn: "Callable[[np.ndarray], object]",
    ) -> bool:
        """Whether the fused protected program should serve fault-free runs.

        ESTIMATE mode trusts the fused lowering: it wraps the fastest
        compiled program and its verification operators are precomputed, so
        it is the winner by construction.  MEASURE mode times one fused
        execution against one legacy scheme execution (callables supplied by
        the caller - the protected plan lives above this layer) and records
        the winner under ``fused_measurements[str(n)]``, exported with the
        wisdom like the thread/in-place timings, so a seeded planner never
        re-times a size.
        """

        if self.policy is not PlannerPolicy.MEASURE:
            return True
        key = str(n)
        timings = self.fused_measurements.get(key)
        if not timings or "fused" not in timings or "scheme" not in timings:
            rng = np.random.default_rng(2468 + n)
            x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            timings: Dict[str, float] = {}
            for label, fn in (("fused", fused_fn), ("scheme", scheme_fn)):
                fn(x)  # warm-up / twiddle-cache + scratch fill
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    fn(x)
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
            with self._lock:
                self.fused_measurements[key] = timings
            self._record_race("fused-vs-scheme", n, "fused", "scheme", timings)
        return timings["fused"] < timings["scheme"]

    def _effective_threads(self, n: int, nthreads: int, *, allow_timing: bool = True) -> int:
        """Chunk count the plan is actually lowered with (the "winner").

        ``allow_timing=False`` (wisdom import) never runs live benchmarks:
        recorded serial-vs-threaded timings decide when present, otherwise
        the profitability heuristic stands in - importing a wisdom dict
        must stay a deserialization, not a measurement session.
        """

        if nthreads <= 1:
            return 1
        from repro.runtime.threaded import threading_profitable

        if not threading_profitable(n, nthreads):
            return 1
        if self.policy is PlannerPolicy.MEASURE:
            timings = self.thread_measurements.get(f"{n}:t{nthreads}")
            if timings and "serial" in timings and "threaded" in timings:
                return nthreads if timings["threaded"] < timings["serial"] else 1
            if not allow_timing:
                return nthreads
            return nthreads if self._threaded_wins(n, nthreads) else 1
        return nthreads

    def _threaded_wins(self, n: int, nthreads: int) -> bool:
        """MEASURE mode: time serial vs threaded once, remember the winner.

        Timings (imported ones included) live in :attr:`thread_measurements`
        under ``"n:t{threads}"``, so a planner seeded with another process's
        wisdom never re-times a size/thread-count pair.
        """

        key = f"{n}:t{nthreads}"
        timings = self.thread_measurements.get(key)
        if not timings or "serial" not in timings or "threaded" not in timings:
            from repro.fftlib.executor import get_program
            from repro.runtime.threaded import get_threaded_program, threading_profitable

            if not threading_profitable(n, nthreads):
                # unprofitable sizes lower to the serial fallback; timing
                # that against itself would just record noise as wisdom
                return False
            serial = get_program(n)
            threaded = get_threaded_program(n, nthreads)
            rng = np.random.default_rng(4321 + n)
            x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            timings: Dict[str, float] = {}
            for label, fn in (
                ("serial", lambda: serial.execute(x)),
                ("threaded", lambda: threaded.execute(x)),
            ):
                fn()  # warm-up / twiddle-cache + pool fill
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    fn()
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
            with self._lock:
                self.thread_measurements[key] = timings
            self._record_race("threaded-vs-serial", n, "threaded", "serial", timings)
        return timings["threaded"] < timings["serial"]

    # ------------------------------------------------------------------
    def _best_measured_strategy(self, n: int) -> PlanStrategy:
        """Best strategy for ``n`` from stored timings, measuring if absent.

        Timings imported through :meth:`import_wisdom` count, so a MEASURE
        planner seeded with another process's wisdom never re-times a size.
        """

        timings = self.measurements.get(n)
        if timings:
            best = min(timings, key=lambda name: timings[name])
            try:
                strategy = PlanStrategy(best)
            except ValueError:
                strategy = None
            if strategy is not None and _strategy_is_valid(strategy, n):
                return strategy
        return self._measure_strategy(n)

    # ------------------------------------------------------------------
    def _measure_strategy(self, n: int) -> PlanStrategy:
        """Time the available strategies on a random input; keep the fastest.

        Only strategies that are *correct* for the size are candidates; the
        heuristic strategy is always among them so measurement can only
        improve on the estimate.
        """

        from repro.fftlib.bluestein import bluestein_fft
        from repro.fftlib.mixed_radix import fft as mixed_fft
        from repro.fftlib.dft import direct_dft

        rng = np.random.default_rng(1234 + n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)

        candidates = {}
        candidates[PlanStrategy.MIXED_RADIX] = lambda: mixed_fft(x)
        if n <= 2048:
            candidates[PlanStrategy.DIRECT] = lambda: direct_dft(x)
        candidates[PlanStrategy.BLUESTEIN] = lambda: bluestein_fft(x)
        if has_codelet(n):
            candidates[PlanStrategy.CODELET] = lambda: mixed_fft(x)

        timings: Dict[str, float] = {}
        best_strategy = _heuristic_strategy(n)
        best_time = float("inf")
        for strategy, fn in candidates.items():
            fn()  # warm-up / twiddle-cache fill
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            timings[strategy.value] = elapsed
            if elapsed < best_time:
                best_time = elapsed
                best_strategy = strategy
        with self._lock:
            self.measurements[n] = timings
        _metrics.inc(
            "wisdom_measure_races", race="strategy", winner=best_strategy.value
        )
        if _trace.active:
            _trace.emit(
                "measure-race",
                race="strategy",
                n=int(n),
                winner=best_strategy.value,
                timings={name: float(t) for name, t in timings.items()},
            )
        return best_strategy

    # ------------------------------------------------------------------
    def lower(
        self,
        n: int,
        real: bool = False,
        threads: Optional[int] = None,
        inplace: bool = False,
        native: bool = False,
    ) -> Any:
        """The compiled :class:`~repro.fftlib.executor.StageProgram` for ``n``.

        ``real=True`` lowers the packed real-input transform
        (:class:`~repro.fftlib.executor.RealStageProgram`) instead;
        ``threads`` above 1 lowers the shared-memory six-step program
        (:class:`~repro.runtime.threaded.ThreadedSixStepProgram`);
        ``inplace=True`` lowers the in-place Stockham program
        (:class:`~repro.fftlib.executor.StockhamStageProgram`) when the
        size supports one - an explicit in-place request, a large size
        under memory pressure, and the threaded stage bodies all arrive
        here.  Lowering is memoized process-wide (programs are immutable
        and backend-independent), so this is cheap after the first call
        per size; plans created by :meth:`plan` reference the same objects.
        """

        from repro.fftlib.executor import (
            get_program,
            get_real_program,
            get_stockham_program,
            stockham_supported,
        )
        from repro.runtime.pool import resolve_thread_count

        native = bool(native)
        if real:
            return get_real_program(int(n), native=native)
        nthreads = resolve_thread_count(threads)
        if nthreads > 1:
            from repro.runtime.threaded import get_threaded_program

            return get_threaded_program(
                int(n), nthreads, inplace=bool(inplace), native=native
            )
        if inplace and stockham_supported(int(n)):
            return get_stockham_program(int(n), native=native)
        return get_program(int(n), native=native)

    # ------------------------------------------------------------------
    def forget(self) -> None:
        """Drop all accumulated wisdom."""

        with self._lock:
            self.wisdom.clear()
            self.measurements.clear()
            self.thread_measurements.clear()
            self.inplace_measurements.clear()
            self.fused_measurements.clear()
            self.native_measurements.clear()

    def export_wisdom(self) -> Dict[str, object]:
        """Serialise wisdom as ``{"n:direction:backend[:real][:tN][:ip][:nat]": strategy}``.

        Measured strategy timings, the compiled program descriptions, the
        serial-vs-threaded timings, the ping-pong-vs-Stockham timings, the
        fused-vs-scheme timings, and the native-vs-NumPy timings ride along
        under the reserved ``"__measurements__"`` / ``"__programs__"`` /
        ``"__thread_measurements__"`` / ``"__inplace_measurements__"`` /
        ``"__fused_measurements__"`` / ``"__native_measurements__"`` keys,
        so a MEASURE planner seeded from this dict never re-times a size it
        has already seen - the whole mapping stays JSON-serialisable.
        """

        data: Dict[str, object] = {}
        programs: Dict[str, str] = {}
        for (
            n, direction, backend, real, threads, inplace, native,
        ), plan in self.wisdom.items():
            key = f"{n}:{direction.value}:{backend}"
            if real:
                key += ":real"
            if threads > 1:
                key += f":t{threads}"
            if inplace:
                key += ":ip"
            if native:
                key += ":nat"
            data[key] = plan.strategy.value
            if plan.program is not None:
                programs[key] = plan.program.describe()
        if self.measurements:
            data["__measurements__"] = {
                str(n): dict(timings) for n, timings in self.measurements.items()
            }
        if self.thread_measurements:
            data["__thread_measurements__"] = {
                key: dict(timings) for key, timings in self.thread_measurements.items()
            }
        if self.inplace_measurements:
            data["__inplace_measurements__"] = {
                key: dict(timings) for key, timings in self.inplace_measurements.items()
            }
        if self.fused_measurements:
            data["__fused_measurements__"] = {
                key: dict(timings) for key, timings in self.fused_measurements.items()
            }
        if self.native_measurements:
            data["__native_measurements__"] = {
                key: dict(timings) for key, timings in self.native_measurements.items()
            }
        if programs:
            data["__programs__"] = programs
        return data

    def import_wisdom(self, data: Dict[str, object]) -> None:
        """Re-create plans from :meth:`export_wisdom` output.

        Older formats are still accepted: the pre-backend two-field keys
        (``"n:direction"``) map to the default backend, three-field keys to
        ``real=False`` / serial, and dicts without the reserved
        timing/program entries simply import no measurements.  Importing
        re-lowers the stage programs (thread timings first, so a threaded
        key re-lowers to the recorded winner), leaving the compiled-program
        cache warm as well.
        """

        timing_dicts = cast(Dict[str, Dict[str, Dict[str, float]]], data)
        with self._lock:
            for n_key, timings in dict(timing_dicts.get("__measurements__", {})).items():
                self.measurements[int(n_key)] = {
                    str(name): float(t) for name, t in dict(timings).items()
                }
            for key, timings in dict(timing_dicts.get("__thread_measurements__", {})).items():
                self.thread_measurements[str(key)] = {
                    str(name): float(t) for name, t in dict(timings).items()
                }
            for key, timings in dict(timing_dicts.get("__inplace_measurements__", {})).items():
                self.inplace_measurements[str(key)] = {
                    str(name): float(t) for name, t in dict(timings).items()
                }
            for key, timings in dict(timing_dicts.get("__fused_measurements__", {})).items():
                self.fused_measurements[str(key)] = {
                    str(name): float(t) for name, t in dict(timings).items()
                }
            for key, timings in dict(timing_dicts.get("__native_measurements__", {})).items():
                self.native_measurements[str(key)] = {
                    str(name): float(t) for name, t in dict(timings).items()
                }
        for key, strategy_name in data.items():
            if key.startswith("__"):
                continue
            parts = key.split(":")
            n = int(parts[0])
            direction = PlanDirection(parts[1])
            backend = resolve_backend_name(parts[2] if len(parts) > 2 else None)
            extras = parts[3:]
            real = "real" in extras
            inplace = "ip" in extras
            native = "nat" in extras
            threads = 1
            for part in extras:
                if len(part) > 1 and part[0] == "t" and part[1:].isdigit():
                    threads = int(part[1:])
            strategy = PlanStrategy(cast(str, strategy_name))
            # plan lowering happens outside the lock (it may take the
            # executor's own program-cache lock); only the insert is guarded
            imported = Plan(
                n,
                direction,
                strategy,
                backend=backend,
                real=real,
                threads=self._effective_threads(n, threads, allow_timing=False),
                inplace=self._effective_inplace(n, inplace, allow_timing=False),
                native=self._effective_native(n, native, allow_timing=False),
            )
            with self._lock:
                self.wisdom[
                    (n, direction, backend, real, threads, inplace, native)
                ] = imported


_DEFAULT_PLANNER = Planner()


def get_default_planner() -> Planner:
    """Return the shared process-wide planner."""

    return _DEFAULT_PLANNER


def plan_fft(
    n: int,
    direction: PlanDirection = PlanDirection.FORWARD,
    backend: Optional[str] = None,
    real: bool = False,
    threads: Optional[int] = None,
    inplace: bool = False,
    native: bool = False,
) -> Plan:
    """Convenience wrapper around the default planner."""

    return _DEFAULT_PLANNER.plan(n, direction, backend, real, threads, inplace, native)

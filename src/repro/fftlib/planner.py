"""The planner: strategy selection and plan caching ("wisdom").

FFTW's planner searches the space of decompositions and remembers the best
("wisdom").  The reproduction keeps the same interface at a much smaller
scale: the planner picks one of the execution strategies from
:class:`repro.fftlib.plan.PlanStrategy` per size, optionally by measuring, and
caches the resulting :class:`~repro.fftlib.plan.Plan` objects so repeated
requests (e.g. thousands of sub-FFT plans inside a fault campaign) are free.

Planning for the internal engine also *lowers* the size into a compiled
iterative stage program (see :mod:`repro.fftlib.executor`): the radix
schedule, per-stage twiddle tables, butterfly matrices, and base kernel are
all resolved when the plan is created, so ``execute`` is a tight loop with no
recursion and no repeated factorization.  :meth:`Planner.lower` exposes the
lowering directly.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.backends import resolve_backend_name
from repro.fftlib.codelets import has_codelet
from repro.fftlib.plan import Plan, PlanDirection, PlanStrategy

__all__ = ["PlannerPolicy", "Planner", "plan_fft", "get_default_planner"]


class PlannerPolicy(enum.Enum):
    """How much effort the planner spends choosing a strategy.

    ``ESTIMATE`` mirrors ``FFTW_ESTIMATE``: choose by a cost heuristic only.
    ``MEASURE`` mirrors ``FFTW_MEASURE``: time the candidate strategies on a
    random input of the requested size and keep the fastest.
    """

    ESTIMATE = "estimate"
    MEASURE = "measure"


def _heuristic_strategy(n: int) -> PlanStrategy:
    if has_codelet(n):
        return PlanStrategy.CODELET
    if factorization.is_prime(n):
        return PlanStrategy.DIRECT if n <= 61 else PlanStrategy.BLUESTEIN
    return PlanStrategy.MIXED_RADIX


def _strategy_is_valid(strategy: PlanStrategy, n: int) -> bool:
    """Whether a (possibly imported) strategy is correct/sane for size ``n``."""

    if strategy is PlanStrategy.CODELET:
        return has_codelet(n)
    if strategy is PlanStrategy.DIRECT:
        return n <= 2048
    return True


@dataclass
class Planner:
    """Creates and caches :class:`Plan` objects.

    Attributes
    ----------
    policy:
        Planning effort (estimate vs. measure).
    wisdom:
        Cache of previously created plans keyed by
        ``(n, direction, backend, real)``.
    """

    policy: PlannerPolicy = PlannerPolicy.ESTIMATE
    wisdom: Dict[Tuple[int, PlanDirection, str, bool], Plan] = field(default_factory=dict)
    measurements: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def plan(
        self,
        n: int,
        direction: PlanDirection = PlanDirection.FORWARD,
        backend: Optional[str] = None,
        real: bool = False,
    ) -> Plan:
        """Return a (cached) plan for an ``n``-point transform.

        ``backend`` selects the sub-FFT kernel (see
        :mod:`repro.fftlib.backends`); plans are cached per backend so a
        process can mix kernels freely.  ``real`` requests the packed
        real-input transform (``n`` real samples <-> ``n//2 + 1`` bins).
        """

        backend_name = resolve_backend_name(backend)
        real = bool(real)
        key = (int(n), direction, backend_name, real)
        cached = self.wisdom.get(key)
        if cached is not None:
            return cached

        if (
            self.policy is PlannerPolicy.MEASURE
            and n >= 32
            and backend_name == "fftlib"
            and not real
        ):
            strategy = self._best_measured_strategy(int(n))
        else:
            strategy = _heuristic_strategy(int(n))
        plan = Plan(int(n), direction, strategy, 0.0, backend_name, real)
        self.wisdom[key] = plan
        return plan

    # ------------------------------------------------------------------
    def _best_measured_strategy(self, n: int) -> PlanStrategy:
        """Best strategy for ``n`` from stored timings, measuring if absent.

        Timings imported through :meth:`import_wisdom` count, so a MEASURE
        planner seeded with another process's wisdom never re-times a size.
        """

        timings = self.measurements.get(n)
        if timings:
            best = min(timings, key=timings.get)
            try:
                strategy = PlanStrategy(best)
            except ValueError:
                strategy = None
            if strategy is not None and _strategy_is_valid(strategy, n):
                return strategy
        return self._measure_strategy(n)

    # ------------------------------------------------------------------
    def _measure_strategy(self, n: int) -> PlanStrategy:
        """Time the available strategies on a random input; keep the fastest.

        Only strategies that are *correct* for the size are candidates; the
        heuristic strategy is always among them so measurement can only
        improve on the estimate.
        """

        from repro.fftlib.bluestein import bluestein_fft
        from repro.fftlib.mixed_radix import fft as mixed_fft
        from repro.fftlib.dft import direct_dft

        rng = np.random.default_rng(1234 + n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)

        candidates = {}
        candidates[PlanStrategy.MIXED_RADIX] = lambda: mixed_fft(x)
        if n <= 2048:
            candidates[PlanStrategy.DIRECT] = lambda: direct_dft(x)
        candidates[PlanStrategy.BLUESTEIN] = lambda: bluestein_fft(x)
        if has_codelet(n):
            candidates[PlanStrategy.CODELET] = lambda: mixed_fft(x)

        timings: Dict[str, float] = {}
        best_strategy = _heuristic_strategy(n)
        best_time = float("inf")
        for strategy, fn in candidates.items():
            fn()  # warm-up / twiddle-cache fill
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            timings[strategy.value] = elapsed
            if elapsed < best_time:
                best_time = elapsed
                best_strategy = strategy
        self.measurements[n] = timings
        return best_strategy

    # ------------------------------------------------------------------
    def lower(self, n: int, real: bool = False):
        """The compiled :class:`~repro.fftlib.executor.StageProgram` for ``n``.

        ``real=True`` lowers the packed real-input transform
        (:class:`~repro.fftlib.executor.RealStageProgram`) instead.
        Lowering is memoized process-wide (programs are immutable and
        backend-independent), so this is cheap after the first call per
        size; plans created by :meth:`plan` reference the same object.
        """

        from repro.fftlib.executor import get_program, get_real_program

        return get_real_program(int(n)) if real else get_program(int(n))

    # ------------------------------------------------------------------
    def forget(self) -> None:
        """Drop all accumulated wisdom."""

        self.wisdom.clear()
        self.measurements.clear()

    def export_wisdom(self) -> Dict[str, object]:
        """Serialise wisdom as ``{"n:direction:backend[:real]": strategy}``.

        Measured strategy timings and the compiled program descriptions ride
        along under the reserved ``"__measurements__"`` / ``"__programs__"``
        keys, so a MEASURE planner seeded from this dict never re-times a
        size it has already seen - the whole mapping stays JSON-serialisable.
        """

        data: Dict[str, object] = {}
        programs: Dict[str, str] = {}
        for (n, direction, backend, real), plan in self.wisdom.items():
            key = f"{n}:{direction.value}:{backend}" + (":real" if real else "")
            data[key] = plan.strategy.value
            if plan.program is not None:
                programs[key] = plan.program.describe()
        if self.measurements:
            data["__measurements__"] = {
                str(n): dict(timings) for n, timings in self.measurements.items()
            }
        if programs:
            data["__programs__"] = programs
        return data

    def import_wisdom(self, data: Dict[str, object]) -> None:
        """Re-create plans from :meth:`export_wisdom` output.

        Older formats are still accepted: the pre-backend two-field keys
        (``"n:direction"``) map to the default backend, three-field keys to
        ``real=False``, and dicts without the reserved timing/program
        entries simply import no measurements.  Importing re-lowers the
        stage programs, so the compiled-program cache is warm as well.
        """

        for n, timings in dict(data.get("__measurements__", {})).items():
            self.measurements[int(n)] = {
                str(name): float(t) for name, t in dict(timings).items()
            }
        for key, strategy_name in data.items():
            if key.startswith("__"):
                continue
            parts = key.split(":")
            n = int(parts[0])
            direction = PlanDirection(parts[1])
            backend = resolve_backend_name(parts[2] if len(parts) > 2 else None)
            real = "real" in parts[3:]
            strategy = PlanStrategy(strategy_name)
            self.wisdom[(n, direction, backend, real)] = Plan(
                n, direction, strategy, backend=backend, real=real
            )


_DEFAULT_PLANNER = Planner()


def get_default_planner() -> Planner:
    """Return the shared process-wide planner."""

    return _DEFAULT_PLANNER


def plan_fft(
    n: int,
    direction: PlanDirection = PlanDirection.FORWARD,
    backend: Optional[str] = None,
    real: bool = False,
) -> Plan:
    """Convenience wrapper around the default planner."""

    return _DEFAULT_PLANNER.plan(n, direction, backend, real)

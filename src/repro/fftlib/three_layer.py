"""The ``N = r * k * k`` three-layer decomposition used by in-place plans.

Section 5 of the paper observes that FFTW's in-place plans for a local size
``N/p = r * k^2`` (with ``r`` small, typically 2 or 8 when ``N/p`` is a power
of two but not a perfect square) execute

1. ``r * k`` transforms of size ``k``,
2. a twiddle multiplication and ``k^2`` transforms of size ``r``, and
3. another twiddle multiplication and ``r * k`` transforms of size ``k``,

which breaks the plain two-layer online ABFT scheme (Fig. 5): by the time an
error from the first layer is detected in a later layer, the in-place input
has been overwritten and cannot be recomputed.  The parallel scheme therefore
adds a DMR-protected middle layer.  This module provides the decomposition
itself with stage-level entry points; the protection logic lives in
:mod:`repro.parallel`.

Index bookkeeping (derived from applying Equation 2 twice):

* the input is viewed as ``x3[q, s, n1] = x[(q*r + s)*k + n1]`` with
  ``q, n1 in [0, k)`` and ``s in [0, r)``;
* layer 1 transforms over ``q`` (size ``k``), layer 2 over ``s`` (size
  ``r``), layer 3 over ``n1`` (size ``k``);
* the output is ``X[j1*r*k + t*k + j2] = z[j2, t, j1]`` where ``z`` is the
  array after layer 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fftlib.plan import Plan, PlanDirection
from repro.fftlib.planner import Planner, get_default_planner
from repro.utils.validation import as_complex_vector, ensure_positive_int

__all__ = ["ThreeLayerPlan"]


class ThreeLayerPlan:
    """Explicit ``n = r * k^2`` decomposition with per-layer execution."""

    def __init__(
        self,
        n: int,
        *,
        r: Optional[int] = None,
        k: Optional[int] = None,
        direction: PlanDirection = PlanDirection.FORWARD,
        planner: Optional[Planner] = None,
    ) -> None:
        n = ensure_positive_int(n, name="n")
        if k is None:
            k = self._largest_square_factor_root(n if r is None else n // r)
        k = ensure_positive_int(k, name="k")
        if r is None:
            if n % (k * k) != 0:
                raise ValueError(f"k^2={k * k} does not divide n={n}")
            r = n // (k * k)
        r = ensure_positive_int(r, name="r")
        if r * k * k != n:
            raise ValueError(f"r * k^2 must equal n (got {r} * {k}^2 != {n})")
        self.n = n
        self.r = r
        self.k = k
        self.direction = direction
        planner = planner or get_default_planner()
        self.k_plan: Plan = planner.plan(k, direction)
        self.r_plan: Plan = planner.plan(r, direction)
        sign = 1.0 if direction is PlanDirection.BACKWARD else -1.0
        m_inner = r * k  # size of the "middle" problem
        # Twiddle for the inner (size r*k) decomposition: applied after layer
        # 1, indexed [j, s] with j in [0, k) and s in [0, r).
        j = np.arange(k).reshape(k, 1)
        s = np.arange(r).reshape(1, r)
        self._twiddle_inner = np.exp(sign * 2j * np.pi * (j * s) / m_inner)
        # Twiddle for the outer (size n) decomposition: applied after layer 2,
        # indexed [j2, j1, n1] with value omega_n^{n1 * (j1*k + j2)}.
        j2 = np.arange(k).reshape(k, 1, 1)
        j1 = np.arange(r).reshape(1, r, 1)
        n1 = np.arange(k).reshape(1, 1, k)
        self._twiddle_outer = np.exp(sign * 2j * np.pi * (n1 * (j1 * k + j2)) / n)

    # ------------------------------------------------------------------
    @staticmethod
    def _largest_square_factor_root(n: int) -> int:
        """Return the largest ``k`` such that ``k^2`` divides ``n``."""

        best = 1
        k = 1
        while k * k <= n:
            if n % (k * k) == 0:
                best = k
            k += 1
        return best

    # ------------------------------------------------------------------
    def gather_input(self, x: np.ndarray) -> np.ndarray:
        """View the flat input as the ``(k, r, k)`` working array."""

        x = as_complex_vector(x, name="x")
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        return x.reshape(self.k, self.r, self.k)

    def layer1(self, work: np.ndarray) -> np.ndarray:
        """``r * k`` transforms of size ``k`` along axis 0."""

        self._check(work)
        return self.k_plan.execute_batch(work, axis=0)

    def apply_inner_twiddle(self, work: np.ndarray) -> np.ndarray:
        self._check(work)
        return work * self._twiddle_inner[:, :, None]

    def layer2(self, work: np.ndarray) -> np.ndarray:
        """``k^2`` transforms of size ``r`` along axis 1 (identity when r=1)."""

        self._check(work)
        if self.r == 1:
            return work.copy()
        return self.r_plan.execute_batch(work, axis=1)

    def apply_outer_twiddle(self, work: np.ndarray) -> np.ndarray:
        self._check(work)
        return work * self._twiddle_outer

    def layer3(self, work: np.ndarray) -> np.ndarray:
        """``r * k`` transforms of size ``k`` along axis 2."""

        self._check(work)
        return self.k_plan.execute_batch(work, axis=2)

    def scatter_output(self, work: np.ndarray) -> np.ndarray:
        """Map the post-layer-3 array to the flat frequency-ordered output."""

        self._check(work)
        # X[j1*r*k + t*k + j2] = work[j2, t, j1]
        return np.ascontiguousarray(work.transpose(2, 1, 0)).reshape(self.n)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        work = self.gather_input(x)
        work = self.layer1(work)
        work = self.apply_inner_twiddle(work)
        work = self.layer2(work)
        work = self.apply_outer_twiddle(work)
        work = self.layer3(work)
        return self.scatter_output(work)

    # ------------------------------------------------------------------
    def _check(self, work: np.ndarray) -> None:
        if work.shape != (self.k, self.r, self.k):
            raise ValueError(
                f"working array must have shape ({self.k}, {self.r}, {self.k}), got {work.shape}"
            )

    def describe(self) -> str:
        return f"ThreeLayerPlan(n={self.n} = {self.r} x {self.k}^2, direction={self.direction.value})"

    def __repr__(self) -> str:  # pragma: no cover
        return self.describe()

"""In-place execution of the two-layer decomposition.

Parallel FFTs favour in-place plans (Section 5 of the paper): the transform
overwrites its input buffer instead of allocating a second ``N``-sized array.
The consequence that matters for fault tolerance is that *the original input
no longer exists once a stage has run*, so a detected error cannot be fixed
by simply re-running the corrupted sub-FFT from the original data - the
protected scheme must keep per-sub-FFT backups (Fig. 4 of the paper).

This module only provides the in-place execution mechanics; the protection
logic (backups, verification points, recovery) lives in
:mod:`repro.parallel.protected`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fftlib.executor import get_stockham_program, stockham_supported
from repro.fftlib.plan import PlanDirection
from repro.fftlib.planner import Planner
from repro.fftlib.two_layer import TwoLayerPlan

__all__ = ["InPlaceTwoLayerPlan"]


class InPlaceTwoLayerPlan:
    """Two-layer plan that overwrites the caller's buffer stage by stage.

    The buffer passed to the stage methods must be a contiguous
    ``complex128`` array of length ``n``; it is always interpreted as the
    ``(m, k)`` working matrix via a reshaped *view* so every write lands in
    the caller's memory.

    The whole-stage bodies reuse the in-place Stockham programs
    (:class:`~repro.fftlib.executor.StockhamStageProgram`) when the stage
    sizes support them: stage 2 transforms the contiguous ``(m, k)`` rows
    directly in the caller's buffer (one half-size scratch, no full-size
    out-of-place result to copy back), and stage 1 runs the ``m``-point
    Stockham program over gathered quarter-width column blocks.  Forward
    direction only - the stage sub-plans of a backward two-layer plan
    carry the inverse convention the Stockham lowering does not, so
    backward plans keep the out-of-place stage bodies.  The per-column
    recovery entry points (``stage*_single_inplace``) always use the
    out-of-place sub-plans, matching the protected schemes' recompute
    discipline.
    """

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        direction: PlanDirection = PlanDirection.FORWARD,
        planner: Optional[Planner] = None,
    ) -> None:
        self._oop = TwoLayerPlan(n, m, k, direction=direction, planner=planner)
        forward = direction is PlanDirection.FORWARD
        self._stockham_m = (
            get_stockham_program(self._oop.m)
            if forward and stockham_supported(self._oop.m)
            else None
        )
        self._stockham_k = (
            get_stockham_program(self._oop.k)
            if forward and stockham_supported(self._oop.k)
            else None
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._oop.n

    @property
    def m(self) -> int:
        return self._oop.m

    @property
    def k(self) -> int:
        return self._oop.k

    @property
    def twiddles(self) -> np.ndarray:
        return self._oop.twiddles

    @property
    def out_of_place(self) -> TwoLayerPlan:
        """The underlying out-of-place plan (shares twiddles and sub-plans)."""

        return self._oop

    # ------------------------------------------------------------------
    def _as_work(self, buffer: np.ndarray) -> np.ndarray:
        buffer = np.asarray(buffer)
        if buffer.dtype != np.complex128 or not buffer.flags.c_contiguous:
            raise ValueError("in-place plans require a contiguous complex128 buffer")
        if buffer.size != self.n:
            raise ValueError(f"buffer has length {buffer.size}, expected {self.n}")
        return buffer.reshape(self.m, self.k)

    # ------------------------------------------------------------------
    def stage1_inplace(self, buffer: np.ndarray) -> None:
        """Overwrite the buffer with the outputs of the ``k`` inner FFTs.

        With a Stockham ``m``-point program the columns are processed in
        quarter-width blocks: gather a ``(cols, m)`` transposed block (the
        only temporary, at most ``n/4`` elements), transform it in place,
        scatter it back - instead of materialising the full ``(m, k)``
        out-of-place stage result before overwriting.
        """

        work = self._as_work(buffer)
        if self._stockham_m is None:
            work[:, :] = self._oop.stage1(work)
            return
        k = self.k
        width = max(1, k // 4)
        for lo in range(0, k, width):
            hi = min(k, lo + width)
            block = np.ascontiguousarray(work[:, lo:hi].T)
            self._stockham_m.execute_inplace(block)
            work[:, lo:hi] = block.T

    def stage1_single_inplace(self, buffer: np.ndarray, index: int) -> None:
        """Recompute only inner sub-FFT ``index`` from the data in ``buffer``.

        Used by recovery paths after the corrupted column has been restored
        from a backup.
        """

        work = self._as_work(buffer)
        work[:, index] = self._oop.stage1_single(work, index)

    def twiddle_inplace(self, buffer: np.ndarray) -> None:
        """Multiply the buffer by the stage twiddle factors."""

        work = self._as_work(buffer)
        work *= self._oop.twiddles

    def stage2_inplace(self, buffer: np.ndarray) -> None:
        """Overwrite the buffer with the outputs of the ``m`` outer FFTs.

        The ``(m, k)`` rows are contiguous in the caller's buffer, so with
        a Stockham ``k``-point program the whole stage runs genuinely in
        place - one batched call against the single half-size scratch.
        """

        work = self._as_work(buffer)
        if self._stockham_k is None:
            work[:, :] = self._oop.stage2(work)
            return
        self._stockham_k.execute_inplace(work)

    def stage2_single_inplace(self, buffer: np.ndarray, index: int) -> None:
        work = self._as_work(buffer)
        work[index, :] = self._oop.stage2_single(work, index)

    def reorder_inplace(self, buffer: np.ndarray) -> None:
        """Apply the final output permutation (``X[j1*m+j2] = work[j2, j1]``).

        Real in-place FFTs perform this "local data adjustment" with a
        cache-oblivious transposition; at Python level a temporary of size
        ``n`` is unavoidable but the caller's buffer still receives the
        result, which is what the protected schemes rely on.
        """

        work = self._as_work(buffer)
        buffer.reshape(-1)[:] = np.ascontiguousarray(work.T).reshape(self.n)

    # ------------------------------------------------------------------
    def execute(self, buffer: np.ndarray, *, reorder: bool = True) -> np.ndarray:
        """Run the full transform in place and return the (mutated) buffer.

        With ``reorder=False`` the result is left in the ``(j2, j1)``
        "transposed" order used internally by parallel FFTs, which defer the
        permutation to the final communication step.
        """

        self.stage1_inplace(buffer)
        self.twiddle_inplace(buffer)
        self.stage2_inplace(buffer)
        if reorder:
            self.reorder_inplace(buffer)
        return buffer

    def describe(self) -> str:
        return f"InPlace{self._oop.describe()}"

    def __repr__(self) -> str:  # pragma: no cover
        return self.describe()

"""Batched mixed-radix Cooley-Tukey engine.

This is the workhorse of the FFT substrate: a recursive decimation-in-time
transform that

* peels one radix per recursion level (preferring the large hand-written
  codelets of :mod:`repro.fftlib.codelets` so the recursion stays shallow),
* is fully vectorised over arbitrary leading batch axes, which is what makes
  a pure NumPy implementation viable at the sizes used in the benchmarks, and
* falls back to a cached direct DFT for small prime factors and to the
  Bluestein chirp-z algorithm for large prime factors.

Only the *forward* transform is implemented recursively; the inverse is the
standard conjugation identity ``ifft(x) = conj(fft(conj(x))) / n``.
"""

from __future__ import annotations

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.bluestein import bluestein_fft
from repro.fftlib.codelets import apply_codelet, has_codelet
from repro.fftlib.twiddle import get_global_cache

__all__ = ["fft", "ifft", "fft_along_axis", "ifft_along_axis"]


def _contig(x: np.ndarray) -> np.ndarray:
    """``x`` itself when already C-contiguous, else a contiguous copy.

    The recursion below reshapes between levels, which requires contiguous
    storage; guarding here keeps already-contiguous views (codelet leaves,
    radix == n edge cases, callers that pass contiguous batches) copy-free.
    """

    if x.flags.c_contiguous:
        return x
    return np.ascontiguousarray(x)

# Prime sizes up to this threshold are handled by a cached DFT-matrix product;
# larger primes go through Bluestein.
_DIRECT_PRIME_THRESHOLD = 61

# Radix preference order: large codelets first to minimise recursion depth.
_RADIX_PREFERENCE = (16, 8, 6, 5, 4, 3, 2)


def _choose_radix(n: int) -> int:
    for radix in _RADIX_PREFERENCE:
        if n % radix == 0:
            return radix
    return factorization.smallest_prime_factor(n)


def _forward(x: np.ndarray) -> np.ndarray:
    """Forward transform along the last axis of ``x`` (batched)."""

    n = x.shape[-1]
    if has_codelet(n):
        return apply_codelet(x, n)
    if factorization.is_prime(n):
        if n <= _DIRECT_PRIME_THRESHOLD:
            matrix = get_global_cache().dft_matrix(n)
            return x @ matrix.T
        return bluestein_fft(x)

    radix = _choose_radix(n)
    m = n // radix

    # Decimation in time: collect the ``radix`` stride-``radix`` subsequences.
    # x[..., q*radix + s] lives at reshaped[..., q, s]; swapping the last two
    # axes groups elements of the s-th subsequence contiguously along the
    # last axis so the recursive call transforms all of them at once.
    subs = x.reshape(x.shape[:-1] + (m, radix))
    subs = np.swapaxes(subs, -1, -2)  # shape (..., radix, m)
    sub_ffts = _forward(_contig(subs))

    # Twiddle: Y[..., s, u] = sub_ffts[..., s, u] * omega_n^{s u}.
    tw = get_global_cache().stage(m, radix)  # shape (m, radix): omega_n^{j2*n1}
    sub_ffts = sub_ffts * tw.T  # broadcast over batch axes; tw.T has shape (radix, m)

    # Combine: X[..., t*m + u] = sum_s omega_radix^{s t} Y[..., s, u], i.e. a
    # radix-point DFT across the s axis for every output column u.
    combined = np.swapaxes(sub_ffts, -1, -2)  # (..., m, radix)
    combined = _forward(_contig(combined))  # (..., m, radix) -> indexed [u, t]
    out = np.swapaxes(combined, -1, -2)  # (..., radix, m) indexed [t, u]
    return _contig(out).reshape(x.shape)


def fft(x: np.ndarray) -> np.ndarray:
    """Forward DFT along the last axis (negative-exponent convention)."""

    x = np.asarray(x, dtype=np.complex128)
    if x.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if x.shape[-1] == 0:
        raise ValueError("transform length must be positive")
    return _forward(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT along the last axis, normalised by ``1/n``."""

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    return np.conj(_forward(np.conj(x))) / n


def fft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Forward DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    moved = np.moveaxis(x, axis, -1)
    out = fft(_contig(moved))
    return np.moveaxis(out, -1, axis)


def ifft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Inverse DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    moved = np.moveaxis(x, axis, -1)
    out = ifft(_contig(moved))
    return np.moveaxis(out, -1, axis)

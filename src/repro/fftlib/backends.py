"""The sub-FFT backend registry.

Every plan in this library ultimately applies a raw (unprotected) FFT kernel
to the last axis of an array.  Historically that kernel was hard-wired to the
internal :mod:`repro.fftlib.mixed_radix` engine; this module abstracts it
behind a tiny interface so that schemes, benchmarks, and the CLI can select
the kernel uniformly:

* ``"fftlib"`` - the repository's own plan-based engine (codelets,
  mixed-radix, Bluestein).  This is the faithful FFTW stand-in whose stage
  structure the ABFT schemes instrument, and the default.
* ``"numpy"`` - NumPy's pocketfft.  Much faster in wall-clock terms (it is
  compiled), which makes it the backend of choice for large fault campaigns
  and for measuring checksum overhead unclouded by pure-Python FFT cost.

Third parties can plug in additional kernels (``pyfftw``, ``scipy.fft``,
accelerator wrappers) with :func:`register_backend`; nothing above this
module needs to change.  Checksum protection is backend-agnostic: the ABFT
schemes only require that the kernel computes the DFT, so a registered
backend is automatically covered by the same verification machinery.
"""

from __future__ import annotations

import abc
import threading
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "FFTBackend",
    "FFTLibBackend",
    "NumpyFFTBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "default_backend_name",
    "set_default_backend",
    "resolve_backend_name",
]


class FFTBackend(abc.ABC):
    """A raw sub-FFT kernel: forward/backward DFTs along one axis.

    Backends are stateless; twiddle/working storage belongs to the plans
    that call them.  ``ifft`` must be fully normalised (``1/n``), matching
    the convention of :func:`numpy.fft.ifft` and the internal engine.
    """

    #: registry key (also what ``--backend`` and ``FTConfig.backend`` accept)
    name: str = "base"
    #: one-line human description for listings
    description: str = ""
    #: whether plans on this backend may lower to the shared-memory threaded
    #: six-step program (see :mod:`repro.runtime`).  Only the internal
    #: engine exposes the chunked stage structure the threaded program
    #: needs; compiled third-party kernels (pocketfft etc.) manage their own
    #: parallelism, so the planner keeps their plans serial.
    supports_threads: bool = False
    #: whether plans on this backend may lower to the in-place Stockham
    #: program (see :class:`repro.fftlib.executor.StockhamStageProgram`).
    #: Foreign kernels allocate their own output arrays, so only the
    #: internal engine can honour the half-size-working-set contract;
    #: ``Plan.execute_inplace`` on other backends degrades to
    #: transform-and-copy.
    supports_inplace: bool = False
    #: whether plans on this backend may lower their stage bodies to the
    #: generated-C native kernel tier (see :mod:`repro.fftlib.native`).
    #: Only the internal engine exposes the stage structure the generator
    #: mirrors; foreign kernels are already compiled code.  The flag means
    #: "may request", not "will get": with no working C compiler (or under
    #: ``REPRO_NO_NATIVE=1``) the lowering silently keeps its pure-NumPy
    #: stage bodies and reports the reason in ``Plan.describe()``.
    supports_native: bool = False

    @abc.abstractmethod
    def fft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Forward DFT along ``axis`` (batched over all other axes)."""

    @abc.abstractmethod
    def ifft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Normalised inverse DFT along ``axis``."""

    # -- real-input transforms -----------------------------------------
    # The base implementations derive the packed ``n//2 + 1`` layout from
    # the complex kernel, so every registered backend supports real plans
    # out of the box; backends with a native half-complex kernel override
    # them (both built-ins do).

    def rfft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Packed real-to-complex DFT along ``axis`` (``n//2 + 1`` bins)."""

        x = np.asarray(x, dtype=np.float64)
        n = x.shape[axis]
        spectrum = self.fft(x.astype(np.complex128), axis=axis)
        index = [slice(None)] * spectrum.ndim
        index[axis] = slice(0, n // 2 + 1)
        return np.ascontiguousarray(spectrum[tuple(index)])

    def irfft(self, spectrum: np.ndarray, n: Optional[int] = None, axis: int = -1) -> np.ndarray:
        """Real inverse of :meth:`rfft` along ``axis`` (length ``n``)."""

        spectrum = np.asarray(spectrum, dtype=np.complex128)
        bins = spectrum.shape[axis]
        if n is None:
            n = 2 * (bins - 1)
        if bins != n // 2 + 1:
            raise ValueError(f"spectrum has {bins} bins, expected {n // 2 + 1} for n={n}")
        index = [slice(None)] * spectrum.ndim
        index[axis] = slice(-2, 0, -1) if n % 2 == 0 else slice(-1, 0, -1)
        full = np.concatenate([spectrum, np.conj(spectrum[tuple(index)])], axis=axis)
        return np.real(self.ifft(full, axis=axis))

    def describe(self) -> str:
        return f"{self.name}: {self.description}"


class FFTLibBackend(FFTBackend):
    """The internal plan-based engine (compiled stage programs).

    Executes through :mod:`repro.fftlib.executor`: a cached, iterative stage
    program per size (codelets / DFT-matrix base kernels, BLAS rank-``r``
    combines, Bluestein for large primes) rather than the seed's per-call
    recursion - see the executor module for the lowering.
    """

    name = "fftlib"
    description = "internal compiled stage-program engine (codelets, mixed-radix, Bluestein)"
    supports_threads = True
    supports_inplace = True
    supports_native = True

    def fft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        from repro.fftlib.executor import fft_along_axis

        return fft_along_axis(x, axis)

    def ifft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        from repro.fftlib.executor import ifft_along_axis

        return ifft_along_axis(x, axis)

    def rfft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        from repro.fftlib.executor import rfft

        x = np.asarray(x, dtype=np.float64)
        if axis == -1 or axis == x.ndim - 1:
            return rfft(x)
        return np.moveaxis(rfft(np.moveaxis(x, axis, -1)), -1, axis)

    def irfft(self, spectrum: np.ndarray, n: Optional[int] = None, axis: int = -1) -> np.ndarray:
        from repro.fftlib.executor import irfft

        spectrum = np.asarray(spectrum, dtype=np.complex128)
        if axis == -1 or axis == spectrum.ndim - 1:
            return irfft(spectrum, n)
        return np.moveaxis(irfft(np.moveaxis(spectrum, axis, -1), n), -1, axis)


class NumpyFFTBackend(FFTBackend):
    """NumPy's pocketfft (compiled; the fast path for large workloads)."""

    name = "numpy"
    description = "numpy.fft (pocketfft); compiled, fastest for large sizes"

    def fft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return np.fft.fft(np.asarray(x, dtype=np.complex128), axis=axis)

    def ifft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return np.fft.ifft(np.asarray(x, dtype=np.complex128), axis=axis)

    def rfft(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return np.fft.rfft(np.asarray(x, dtype=np.float64), axis=axis)

    def irfft(self, spectrum: np.ndarray, n: Optional[int] = None, axis: int = -1) -> np.ndarray:
        return np.fft.irfft(np.asarray(spectrum, dtype=np.complex128), n=n, axis=axis)


_LOCK = threading.RLock()
_REGISTRY: Dict[str, FFTBackend] = {}
_DEFAULT_NAME = "fftlib"


def register_backend(backend: FFTBackend, *, overwrite: bool = False) -> FFTBackend:
    """Register ``backend`` under ``backend.name``; returns it for chaining."""

    name = getattr(backend, "name", "")
    if not name or name == "base":
        raise ValueError("backend must define a non-default 'name'")
    with _LOCK:
        if name in _REGISTRY and not overwrite:
            raise ValueError(f"backend {name!r} already registered (pass overwrite=True)")
        _REGISTRY[name] = backend
    return backend


def available_backends() -> Sequence[str]:
    """Names accepted by :func:`get_backend` (and ``--backend`` options)."""

    with _LOCK:
        return tuple(_REGISTRY.keys())


def get_backend(name: Optional[str] = None) -> FFTBackend:
    """Look up a backend by name (``None`` = the process-wide default)."""

    with _LOCK:
        key = name or _DEFAULT_NAME
        backend = _REGISTRY.get(key)
    if backend is None:
        raise KeyError(
            f"unknown FFT backend {key!r}; available: {', '.join(available_backends())}"
        )
    return backend


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Canonical registry name for ``name`` (validates; ``None`` = default)."""

    return get_backend(name).name


def default_backend_name() -> str:
    with _LOCK:
        return _DEFAULT_NAME


def set_default_backend(name: str) -> None:
    """Change the process-wide default backend (must already be registered)."""

    global _DEFAULT_NAME
    resolved = resolve_backend_name(name)
    with _LOCK:
        _DEFAULT_NAME = resolved


register_backend(FFTLibBackend())
register_backend(NumpyFFTBackend())

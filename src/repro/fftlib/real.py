"""Real-input transforms on the compiled execution path.

The paper's schemes operate on complex transforms, but FFTW (and any library
worth adopting) also provides real-to-complex transforms.  Both directions
route through the compiled :class:`~repro.fftlib.executor.RealStageProgram`:
even lengths run the classic packing trick (the ``n`` real samples viewed as
``n/2`` complex samples, one half-length compiled complex program, one
vectorized disentangle pass), odd lengths run the full-length compiled
complex program and keep the non-redundant bins.  Either way the program is
fetched from the shared LRU, so repeated calls pay no planning cost - the
seed's odd-length fallback re-entered the recursive engine on every call.

This module keeps the original one-dimensional convenience API; batched
callers should use :func:`repro.fftlib.executor.rfft` (arbitrary leading
axes) or a real :class:`~repro.fftlib.plan.Plan`.
"""

from __future__ import annotations

import numpy as np

from repro.fftlib.executor import get_real_program
from repro.utils.validation import ensure_positive_int

__all__ = ["rfft", "irfft"]


def rfft(x: np.ndarray) -> np.ndarray:
    """Forward transform of a real signal.

    Returns the ``n//2 + 1`` non-redundant frequency bins (same layout as
    ``numpy.fft.rfft``).
    """

    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("rfft expects a one-dimensional real array")
    n = ensure_positive_int(x.size, name="len(x)")
    return get_real_program(n).execute(x)


def irfft(spectrum: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft`, returning a real signal of length ``n``.

    ``n`` defaults to ``2 * (len(spectrum) - 1)`` (the even-length case).
    """

    spectrum = np.asarray(spectrum, dtype=np.complex128)
    if spectrum.ndim != 1:
        raise ValueError("irfft expects a one-dimensional spectrum")
    if n is None:
        n = 2 * (spectrum.size - 1)
    n = ensure_positive_int(n, name="n")
    expected_bins = n // 2 + 1
    if spectrum.size != expected_bins:
        raise ValueError(
            f"spectrum has {spectrum.size} bins, expected {expected_bins} for n={n}"
        )
    return get_real_program(n).execute_inverse(spectrum)

"""Real-input transforms built on the complex engine.

The paper's schemes operate on complex transforms, but FFTW (and any library
worth adopting) also provides real-to-complex transforms.  For even lengths
the classic packing trick is used: the ``n`` real samples are viewed as
``n/2`` complex samples, transformed with a half-length complex FFT and then
disentangled with a single post-processing pass.  Odd lengths fall back to
the complex engine.
"""

from __future__ import annotations

import numpy as np

from repro.fftlib.mixed_radix import fft as _fft, ifft as _ifft
from repro.utils.validation import ensure_positive_int

__all__ = ["rfft", "irfft"]


def rfft(x: np.ndarray) -> np.ndarray:
    """Forward transform of a real signal.

    Returns the ``n//2 + 1`` non-redundant frequency bins (same layout as
    ``numpy.fft.rfft``).
    """

    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("rfft expects a one-dimensional real array")
    n = ensure_positive_int(x.size, name="len(x)")
    if n == 1:
        return x.astype(np.complex128)
    if n % 2 != 0:
        # Odd lengths: no packing trick; use the complex engine directly.
        full = _fft(x.astype(np.complex128))
        return full[: n // 2 + 1]

    half = n // 2
    packed = x[0::2] + 1j * x[1::2]
    z = _fft(packed)

    # Disentangle: split Z into the transforms of the even and odd samples.
    k = np.arange(half + 1)
    z_ext = np.concatenate([z, z[:1]])  # Z[half] = Z[0] by periodicity
    z_conj = np.conj(z_ext[::-1])  # Z*[half - k]
    even = 0.5 * (z_ext + z_conj)
    odd = -0.5j * (z_ext - z_conj)
    twiddle = np.exp(-2j * np.pi * k / n)
    return even + twiddle * odd


def irfft(spectrum: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft`, returning a real signal of length ``n``.

    ``n`` defaults to ``2 * (len(spectrum) - 1)`` (the even-length case).
    """

    spectrum = np.asarray(spectrum, dtype=np.complex128)
    if spectrum.ndim != 1:
        raise ValueError("irfft expects a one-dimensional spectrum")
    if n is None:
        n = 2 * (spectrum.size - 1)
    n = ensure_positive_int(n, name="n")
    expected_bins = n // 2 + 1
    if spectrum.size != expected_bins:
        raise ValueError(
            f"spectrum has {spectrum.size} bins, expected {expected_bins} for n={n}"
        )

    # Rebuild the full Hermitian spectrum and run the complex inverse; the
    # result is real up to rounding, which we strip explicitly.
    if n % 2 == 0:
        negative = np.conj(spectrum[-2:0:-1])
    else:
        negative = np.conj(spectrum[-1:0:-1])
    full = np.concatenate([spectrum, negative])
    time_domain = _ifft(full)
    return np.real(time_domain)

"""Compiled iterative stage programs: the engine's fast execution path.

The recursive engine in :mod:`repro.fftlib.mixed_radix` re-derives the radix
schedule, re-looks-up twiddle tables, and pays two contiguity copies per
recursion level on *every* call.  This module moves all of that work to plan
time, FFTW-style:

* :func:`compile_program` lowers a size ``n`` once into a
  :class:`StageProgram` - an explicit, immutable list of iterative
  (Stockham-flavoured) combine :class:`Stage` descriptors sitting on top of a
  base kernel (codelet, direct DFT matrix, or Bluestein), with every
  per-stage twiddle table and butterfly matrix fetched from the shared
  :class:`~repro.fftlib.twiddle.TwiddleCache` exactly once;
* :meth:`StageProgram.execute` runs the program as a tight loop over two
  ping-pong work buffers - no recursion, no repeated factorization, no
  per-level ``ascontiguousarray`` copies - fully batched over arbitrary
  leading axes.

Algorithm
---------
The program maintains the decimation-in-time invariant as a ``(batch, q, p)``
array ``X`` with ``q * p == n``: row ``b`` holds the length-``p`` DFT of the
stride-``q`` input subsequence starting at offset ``b``.  The base kernel
establishes the invariant for ``p = base``; each combine stage of radix ``r``
then merges groups of ``r`` rows,

.. math::

    X'[b', t p + u] = \\sum_{s=0}^{r-1} \\omega_r^{t s}\\,
        \\omega_{r p}^{u s}\\, X[s q' + b', u],

which is one elementwise twiddle multiplication (the precomputed ``(r, p)``
table) followed by one rank-``r`` DFT contraction.  The contraction is
dispatched per stage: hand-written codelets exist for the small radices, but
a single BLAS ``matmul`` against the ``r x r`` DFT matrix - writing straight
into a strided view of the other ping-pong buffer so the ``t``-major output
order needs no transpose pass - measures faster for every radix the planner
emits, so that is the default kernel.  After the last stage ``q == 1`` and
the buffer holds the full transform in natural order.

Programs are cached per size in a thread-safe, size-bounded LRU (the same
shape as the plan cache), so ``Plan`` construction and the
``fftlib`` backend share one compiled program per size.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.codelets import apply_codelet, has_codelet
from repro.fftlib.twiddle import get_global_cache
from repro.telemetry import trace as _trace

__all__ = [
    "Stage",
    "StageProgram",
    "RealStageProgram",
    "StockhamStageProgram",
    "compile_program",
    "get_program",
    "get_real_program",
    "get_stockham_program",
    "stockham_supported",
    "program_cache_info",
    "clear_program_cache",
    "fft",
    "ifft",
    "fft_along_axis",
    "ifft_along_axis",
    "rfft",
    "irfft",
]

# Prime base sizes up to this threshold use a cached DFT-matrix product;
# larger primes go through Bluestein (mirrors the recursive engine).
_DIRECT_PRIME_THRESHOLD = 61

# Radix preference: large radices first so programs stay short (the BLAS
# combine amortizes its call overhead over r butterfly points).
_RADIX_PREFERENCE = (16, 8, 6, 5, 4, 3, 2)


def _choose_radix(n: int) -> int:
    for radix in _RADIX_PREFERENCE:
        if n % radix == 0:
            return radix
    return factorization.smallest_prime_factor(n)


def lower(n: int) -> Tuple[int, Tuple[int, ...]]:
    """Split ``n`` into ``(base, radices)`` with ``base * prod(radices) == n``.

    ``base`` is the bottom-level transform length (a codelet size or a
    prime); ``radices`` lists the combine radices in the order the recursive
    engine would peel them (outermost first).  This is the schedule the
    planner lowers into a :class:`StageProgram`.
    """

    radices = []
    m = int(n)
    while not has_codelet(m) and not factorization.is_prime(m):
        r = _choose_radix(m)
        radices.append(r)
        m //= r
    # A tiny base under large combines leaves the bottom stage as a
    # memory-bound (batch, q, 2..8) matmul that dominates the whole program
    # (2^13 ran 4x slower than 2^12 because of it); folding the innermost
    # combine into the base instead yields one well-shaped direct DFT of a
    # moderate size.
    while radices and m < 16 and m * radices[-1] <= 64:
        m *= radices.pop()
    return m, tuple(radices)


@dataclass(frozen=True)
class Stage:
    """One iterative combine stage of a compiled program.

    Attributes
    ----------
    radix:
        Number of length-``span`` transforms merged per output transform.
    span:
        Length ``p`` of the transforms already completed when this stage
        runs; the stage produces transforms of length ``radix * span``.
    count:
        Number of output transforms ``q' = n / (radix * span)`` remaining
        after this stage (1 for the final stage).
    twiddle:
        The ``(radix, span)`` table ``omega_{radix*span}^{s u}`` applied
        before the combine (one :class:`TwiddleCache` hit at compile time).
    matrix:
        The ``radix x radix`` DFT matrix of the combine butterfly (symmetric,
        so it is used untransposed in the matmul).
    """

    radix: int
    span: int
    count: int
    twiddle: np.ndarray
    matrix: np.ndarray


class StageProgram:
    """A fully lowered, reusable execution recipe for one transform size.

    Immutable after construction and safe to share across threads: the only
    mutable state used during execution is a pair of thread-local ping-pong
    buffers.
    """

    __slots__ = (
        "n",
        "base",
        "base_kind",
        "base_matrix",
        "stages",
        "native",
        "native_fallback_reason",
    )

    def __init__(self, n: int, *, native: bool = False) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        base, radices = lower(self.n)
        self.base = base
        if base == self.n and has_codelet(base):
            self.base_kind = "codelet"
            self.base_matrix = None
        elif factorization.is_prime(base) and base > _DIRECT_PRIME_THRESHOLD:
            self.base_kind = "bluestein"
            self.base_matrix = None
        else:
            # Codelet-sized or small-prime base below combine stages: a
            # single batched product with the cached DFT matrix beats the
            # codelet call chains (BLAS) and handles both cases uniformly.
            self.base_kind = "direct"
            self.base_matrix = get_global_cache().dft_matrix(base)
        stages = []
        span = base
        for radix in reversed(radices):  # combine bottom-up
            stages.append(
                Stage(
                    radix=radix,
                    span=span,
                    count=self.n // (radix * span),
                    twiddle=get_global_cache().stage(radix, span),
                    matrix=get_global_cache().dft_matrix(radix),
                )
            )
            span *= radix
        self.stages: Tuple[Stage, ...] = tuple(stages)
        #: native kernel lowering (generated C via ctypes), or ``None`` with
        #: the fallback reason - requesting it never fails, it degrades.
        self.native = None
        self.native_fallback_reason = None
        if native:
            from repro.fftlib.native import build_native_program

            self.native, self.native_fallback_reason = build_native_program(self)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Forward DFT along the last axis of ``x`` (batched, out-of-place)."""

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        n = self.n
        if x.shape[-1] != n:
            raise ValueError(
                f"program of size {n} applied to array with last axis {x.shape[-1]}"
            )
        shape = x.shape
        batch = x.size // n
        xs = x.reshape(batch, n)
        if not xs.flags.c_contiguous:
            # reprolint: alloc-ok - normalisation fallback, never taken for
            # conforming (contiguous) callers
            xs = np.ascontiguousarray(xs)

        native = self.native
        if native is not None:
            # One foreign call per transform: generated C stage bodies, GIL
            # released for the call's duration (ctypes), result written into
            # the out-of-place contract's result array.
            # reprolint: alloc-ok - the result array itself (out-of-place
            # contract, same as the pure-NumPy final stage below)
            out = np.empty((batch, n), dtype=np.complex128)
            if self.stages:
                work_a, work_b = _work_buffers(batch * n)
                native.execute(xs, out, work_a, work_b)
            else:
                native.execute(xs, out, None, None)
            return out.reshape(shape)

        if not self.stages:
            # Whole transform handled by the base kernel.
            if self.base_kind == "codelet":
                return apply_codelet(xs, n).reshape(shape)
            if self.base_kind == "bluestein":
                from repro.fftlib.bluestein import bluestein_fft

                return bluestein_fft(xs).reshape(shape)
            return np.matmul(xs, self.base_matrix).reshape(shape)

        work_a, work_b = _work_buffers(batch * n)

        # --- base kernel: length-`base` DFTs of all stride-q subsequences --
        base = self.base
        q = n // base
        gathered = xs.reshape(batch, base, q).transpose(0, 2, 1)  # view
        if self.base_kind == "bluestein":
            from repro.fftlib.bluestein import bluestein_fft

            # reprolint: alloc-ok - the Bluestein base kernel allocates its
            # own output; large-prime sizes never hit the matmul fast path
            current = np.ascontiguousarray(bluestein_fft(gathered))
        else:
            current = np.matmul(
                gathered, self.base_matrix, out=work_a[: batch * n].reshape(batch, q, base)
            )

        # --- combine stages: tight twiddle-multiply + rank-r DFT loop ------
        last = len(self.stages) - 1
        for index, stage in enumerate(self.stages):
            r, p, count = stage.radix, stage.span, stage.count
            grouped = work_b[: batch * n].reshape(batch, r, count, p)
            np.multiply(
                current.reshape(batch, r, count, p),
                stage.twiddle[:, None, :],
                out=grouped,
            )
            if index == last:
                # reprolint: alloc-ok - the result array itself (out-of-place
                # contract); execute_into is the allocation-free variant
                target = np.empty((batch, count, r * p), dtype=np.complex128)
            else:
                target = work_a[: batch * n].reshape(batch, count, r * p)
            # t-major output without a transpose pass: matmul writes into a
            # strided view whose last axis is the butterfly output index.
            np.matmul(
                grouped.transpose(0, 2, 3, 1),
                stage.matrix,
                out=target.reshape(batch, count, r, p).transpose(0, 1, 3, 2),
            )
            current = target
        return current.reshape(shape)

    # ------------------------------------------------------------------
    def profile(self, x: np.ndarray):
        """One *timed* execution, broken into base-kernel and combine phases.

        Returns a :class:`repro.telemetry.profile.ProfileResult` whose
        entries mirror the stage loop of :meth:`execute` (same kernels, same
        buffers, a ``perf_counter`` pair around each phase).  Diagnostic
        path: unlike the hot execute methods it may allocate and format
        freely, which is why it lives outside the ``execute*`` naming that
        the hot-path contract (and reprolint) covers.
        """

        import time

        from repro.telemetry.profile import ProfileEntry, ProfileResult

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        n = self.n
        if x.shape[-1] != n:
            raise ValueError(
                f"program of size {n} applied to array with last axis {x.shape[-1]}"
            )
        shape = x.shape
        batch = x.size // n
        xs = np.ascontiguousarray(x.reshape(batch, n))
        entries = []
        perf = time.perf_counter

        def _result(current, total):
            return ProfileResult(
                n=n,
                description=self.describe(),
                entries=tuple(entries),
                total_seconds=total,
                output=current.reshape(shape),
            )

        if self.native is not None:
            out = np.empty((batch, n), dtype=np.complex128)
            start = perf()
            if self.stages:
                work_a, work_b = _work_buffers(batch * n)
                self.native.execute(xs, out, work_a, work_b)
            else:
                self.native.execute(xs, out, None, None)
            elapsed = perf() - start
            entries.append(
                ProfileEntry("native kernel (one foreign call)", elapsed)
            )
            return _result(out, elapsed)

        if not self.stages:
            start = perf()
            if self.base_kind == "codelet":
                out = apply_codelet(xs, n)
            elif self.base_kind == "bluestein":
                from repro.fftlib.bluestein import bluestein_fft

                out = bluestein_fft(xs)
            else:
                out = np.matmul(xs, self.base_matrix)
            elapsed = perf() - start
            entries.append(ProfileEntry(f"base {self.base_kind}({self.base})", elapsed))
            return _result(out, elapsed)

        work_a, work_b = _work_buffers(batch * n)
        base = self.base
        q = n // base
        gathered = xs.reshape(batch, base, q).transpose(0, 2, 1)
        start = perf()
        if self.base_kind == "bluestein":
            from repro.fftlib.bluestein import bluestein_fft

            current = np.ascontiguousarray(bluestein_fft(gathered))
        else:
            current = np.matmul(
                gathered, self.base_matrix, out=work_a[: batch * n].reshape(batch, q, base)
            )
        entries.append(ProfileEntry(f"base {self.base_kind}({self.base})", perf() - start))

        last = len(self.stages) - 1
        total = entries[0].seconds
        for index, stage in enumerate(self.stages):
            r, p, count = stage.radix, stage.span, stage.count
            start = perf()
            grouped = work_b[: batch * n].reshape(batch, r, count, p)
            np.multiply(
                current.reshape(batch, r, count, p),
                stage.twiddle[:, None, :],
                out=grouped,
            )
            if index == last:
                target = np.empty((batch, count, r * p), dtype=np.complex128)
            else:
                target = work_a[: batch * n].reshape(batch, count, r * p)
            np.matmul(
                grouped.transpose(0, 2, 3, 1),
                stage.matrix,
                out=target.reshape(batch, count, r, p).transpose(0, 1, 3, 2),
            )
            elapsed = perf() - start
            entries.append(
                ProfileEntry(f"combine radix {r} (span {p} -> {r * p})", elapsed)
            )
            total += elapsed
            current = target
        return _result(current, total)

    # ------------------------------------------------------------------
    def execute_into(self, data: np.ndarray, work: np.ndarray) -> np.ndarray:
        """Run the program between two caller-provided equal-size buffers.

        ``data`` holds the input and is clobbered (it becomes the twiddle
        staging area); the result lands in ``work``, which is returned.
        Both must be ``(batch, n)`` complex128 arrays whose *last* axis is
        unit-stride (leading strides are free - the in-place Stockham path
        passes row-strided halves of the caller's buffer) and they must not
        overlap.  Nothing is allocated: every reshape only splits an axis
        (always a view) and every kernel writes through a strided view, so
        this is the allocation-free core that
        :class:`StockhamStageProgram` builds its half-transforms on.

        Bluestein bases are not supported (their convolution needs its own
        scratch); callers gate on :func:`stockham_supported`.
        """

        if self.base_kind == "bluestein":
            raise ValueError("execute_into does not support Bluestein base kernels")
        n = self.n
        if data.ndim != 2 or data.shape != work.shape or data.shape[-1] != n:
            raise ValueError(
                f"execute_into expects matching (batch, {n}) buffers, got "
                f"{data.shape} and {work.shape}"
            )
        batch = data.shape[0]

        native = self.native
        if (
            native is not None
            and data.strides[-1] == data.itemsize
            and work.strides[-1] == work.itemsize
        ):
            # Same two-buffer discipline in one GIL-free call (the C driver
            # stages the first combine through `data` when the stage count
            # is odd so the result still lands in `work`).
            return native.execute_into(data, work)

        if not self.stages:
            if self.base_kind == "codelet":
                apply_codelet(data, n, out=work)
            else:
                np.matmul(data, self.base_matrix, out=work)
            return work

        # --- base kernel: stride-q gather view of `data`, result in `work`
        base = self.base
        q = n // base
        gathered = data.reshape(batch, base, q).transpose(0, 2, 1)  # view
        np.matmul(gathered, self.base_matrix, out=work.reshape(batch, q, base))

        # --- combine stages: twiddle stage into `data` (dead input), rank-r
        # DFT back into `work`; the result therefore stays in `work` for
        # every stage, including the last.
        for stage in self.stages:
            r, p, count = stage.radix, stage.span, stage.count
            grouped = data.reshape(batch, r, count, p)
            np.multiply(
                work.reshape(batch, r, count, p),
                stage.twiddle[:, None, :],
                out=grouped,
            )
            np.matmul(
                grouped.transpose(0, 2, 3, 1),
                stage.matrix,
                out=work.reshape(batch, count, r, p).transpose(0, 1, 3, 2),
            )
        return work

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (base kernel plus combine radices)."""

        combines = "*".join(str(s.radix) for s in self.stages) or "-"
        if self.native is not None:
            kernels = ", native"
        elif self.native_fallback_reason is not None:
            kernels = ", native-fallback"
        else:
            kernels = ""
        return (
            f"StageProgram(n={self.n}, base={self.base}[{self.base_kind}], "
            f"combine={combines}{kernels})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def compile_program(n: int) -> StageProgram:
    """Lower size ``n`` into a fresh (uncached) :class:`StageProgram`.

    Most callers want :func:`get_program`, which memoizes compilation in a
    thread-safe LRU; this entry point exists for tests and planner
    experiments that need an independent program object.
    """

    return StageProgram(n)


class RealStageProgram:
    """A compiled real-to-complex transform of one size (conjugate-even packing).

    For even ``n`` the ``n`` real samples are viewed as ``n/2`` complex
    samples, transformed with the cached half-length complex
    :class:`StageProgram`, and disentangled with one vectorized pass:

    .. math::

        X[k] = A_k\\,Z_{ext}[k] + B_k\\,\\overline{Z_{ext}[h-k]},
        \\qquad
        A_k = \\tfrac{1}{2}(1 - i\\,\\omega_n^k),\\;
        B_k = \\tfrac{1}{2}(1 + i\\,\\omega_n^k),

    with ``h = n/2`` and ``Z_ext[h] = Z[0]``.  The inverse uses the conjugate
    coefficients (``Z[k] = conj(A_k) X[k] + conj(B_k) conj(X[h-k])``) followed
    by the half-length inverse, so both directions run at half the complex
    flop/byte cost.  Odd lengths have no packing trick; they run the
    full-length complex program and keep the ``n//2 + 1`` non-redundant bins
    (still compiled - the seed's fallback re-entered the recursive engine).

    Like :class:`StageProgram`, instances are immutable after construction,
    batched over arbitrary leading axes, and memoized in the same LRU
    (:func:`get_real_program`).
    """

    __slots__ = ("n", "bins", "half", "program", "_a", "_b", "_ia", "_ib", "_native")

    def __init__(self, n: int, *, native: bool = False) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        self.bins = self.n // 2 + 1
        self._native = bool(native)
        if self.n % 2 == 0 and self.n > 1:
            self.half = self.n // 2
            self.program = get_program(self.half, native=self._native)
            w = np.exp(-2j * np.pi * np.arange(self.bins) / self.n)
            self._a = 0.5 * (1.0 - 1j * w)
            self._b = 0.5 * (1.0 + 1j * w)
            # The inverse entangle uses the conjugate coefficients on every
            # call; precompute them once so the hot paths never conjugate a
            # table per transform.
            self._ia = np.conj(self._a)
            self._ib = np.conj(self._b)
        else:
            self.half = 0
            self.program = get_program(self.n, native=self._native) if self.n > 1 else None
            self._a = self._b = self._ia = self._ib = None

    @property
    def stockham(self) -> Optional["StockhamStageProgram"]:
        """The in-place half-length lowering, or ``None`` when unsupported.

        Fetched lazily from the shared program LRU (it is only needed by
        the overwrite execution mode): the packed view aliases the caller's
        float buffer, so an overwrite-mode rfft destroys its input and
        needs no ping-pong buffers at all.
        """

        if self.half and stockham_supported(self.half):
            return get_stockham_program(self.half, native=self._native)
        return None

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Packed forward transform along the last axis of a real array."""

        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        if x.shape[-1] != self.n:
            raise ValueError(
                f"real program of size {self.n} applied to array with last axis {x.shape[-1]}"
            )
        if self.n == 1:
            return x.astype(np.complex128)  # reprolint: alloc-ok - trivial n=1 path
        if self.half == 0:
            # Odd lengths fall back to the full-length complex transform;
            # the packed even-length pipeline below is the real fast path.
            # reprolint: alloc-ok - cold odd-length fallback (widen + slice copy)
            full = self.program.execute(x.astype(np.complex128))
            return np.ascontiguousarray(full[..., : self.bins])  # reprolint: alloc-ok
        return self.disentangle(self.transform_half(self.pack(x)))

    # ------------------------------------------------------------------
    # the three even-length pipeline steps, exposed separately so callers
    # (the ABFT fast path) can verify the half-length sub-transform's
    # checksum *between* them - interior online verification instead of
    # only end-to-end.
    # ------------------------------------------------------------------
    def pack(self, x: np.ndarray) -> np.ndarray:
        """View ``n`` real samples as the ``n/2`` packed complex sequence.

        Adjacent (even, odd) sample pairs ARE the complex128 memory layout,
        so the packing ``z[j] = x[2j] + i x[2j+1]`` is a zero-copy view
        (a copy happens only for non-contiguous input).  Even lengths only.
        """

        if self.half == 0:
            raise ValueError("packing requires an even transform length > 1")
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.n:
            raise ValueError(
                f"real program of size {self.n} applied to array with last axis {x.shape[-1]}"
            )
        if x.strides[-1] != x.itemsize:
            x = np.ascontiguousarray(x)
        return x.view(np.complex128)

    def transform_half(self, z: np.ndarray) -> np.ndarray:
        """The cached half-length complex transform of the packed sequence."""

        return self.program.execute(z)

    def transform_half_inplace(self, z: np.ndarray) -> np.ndarray:
        """The half-length transform *overwriting* the packed sequence.

        ``z`` is typically the zero-copy packed view of the caller's float
        buffer (:meth:`pack`), so this destroys the real input in exchange
        for running without ping-pong buffers.  Only available when the
        half size has a Stockham lowering (:attr:`supports_overwrite`).
        """

        if self.stockham is None:
            raise ValueError(
                f"real program of size {self.n} has no in-place half-length lowering"
            )
        return self.stockham.execute_inplace(z)

    @property
    def supports_overwrite(self) -> bool:
        """Whether :meth:`execute_overwrite` can actually run in place."""

        return self.stockham is not None

    def execute_overwrite(self, x: np.ndarray) -> np.ndarray:
        """Packed forward transform that may destroy its input buffer.

        When the half-length Stockham lowering exists and ``x`` is a
        contiguous writeable float64 buffer, the packed view is transformed
        in place (the caller's samples are gone afterwards - the paper's
        Section 5 in-place discipline) and only the ``n//2 + 1``-bin output
        is allocated.  Otherwise this silently degrades to the ordinary
        out-of-place :meth:`execute`.
        """

        if (
            self.stockham is not None
            and isinstance(x, np.ndarray)
            and x.dtype == np.float64
            and x.flags.c_contiguous
            and x.flags.writeable
            and x.ndim > 0
            and x.shape[-1] == self.n
        ):
            z = x.view(np.complex128)  # zero-copy packed view of the buffer
            self.stockham.execute_inplace(z)
            return self.disentangle(z)
        return self.execute(x)

    def disentangle(self, spectrum: np.ndarray) -> np.ndarray:
        """Packed ``n//2 + 1``-bin spectrum from the half-length transform.

        Disentangles on reversed-slice *views* (no index-array gathers):
        interior bins pair ``Z[k]`` with ``conj(Z[h-k])``; bins 0 and ``h``
        both pair ``Z[0]`` with itself.
        """

        h = self.half
        out = np.empty(spectrum.shape[:-1] + (self.bins,), dtype=np.complex128)
        interior = out[..., 1:h]
        np.multiply(spectrum[..., 1:h], self._a[1:h], out=interior)
        interior += self._b[1:h] * np.conj(spectrum[..., h - 1 : 0 : -1])
        z0 = spectrum[..., 0]
        out[..., 0] = self._a[0] * z0 + self._b[0] * np.conj(z0)
        out[..., h] = self._a[h] * z0 + self._b[h] * np.conj(z0)
        return out

    # ------------------------------------------------------------------
    def execute_inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Real inverse transform of a packed ``n//2 + 1``-bin spectrum."""

        spectrum = np.asarray(spectrum, dtype=np.complex128)
        if spectrum.ndim == 0:
            raise ValueError("input must have at least one dimension")
        if spectrum.shape[-1] != self.bins:
            raise ValueError(
                f"spectrum has {spectrum.shape[-1]} bins, expected {self.bins} for n={self.n}"
            )
        if self.n == 1:
            return np.real(spectrum).astype(np.float64)  # reprolint: alloc-ok - trivial n=1 path
        if self.half == 0:
            # Odd length: rebuild the Hermitian spectrum, run the compiled
            # complex inverse (conjugation identity), strip the imaginary
            # rounding noise.
            negative = np.conj(spectrum[..., -1:0:-1])
            # reprolint: alloc-ok - cold odd-length fallback (full-spectrum rebuild)
            full = np.concatenate([spectrum, negative], axis=-1)
            time_domain = np.conj(self.program.execute(np.conj(full))) / self.n
            return np.real(time_domain)
        h = self.half
        # Z[k] = conj(A_k) X[k] + conj(B_k) conj(X[h-k]), k = 0..h-1; the
        # reflected operand X[h], X[h-1], ..., X[1] is a reversed-slice view.
        # reprolint: alloc-ok - half-length entangle intermediate, becomes the
        # result's backing store via the zero-copy float64 view below
        z = np.empty(spectrum.shape[:-1] + (h,), dtype=np.complex128)
        np.multiply(spectrum[..., :h], self._ia[:h], out=z)
        z += self._ib[:h] * np.conj(spectrum[..., h:0:-1])
        time_half = np.conj(self.program.execute(np.conj(z)))
        time_half /= h
        # The complex128 layout of the half-length signal IS the interleaved
        # (even, odd) float64 sample sequence: unpacking is a zero-copy view.
        if time_half.strides[-1] != time_half.itemsize:
            time_half = np.ascontiguousarray(time_half)  # reprolint: alloc-ok - strided fallback
        return time_half.view(np.float64)

    def execute_inverse_overwrite(self, spectrum: np.ndarray) -> np.ndarray:
        """Real inverse transform that may destroy its spectrum buffer.

        The mirror of :meth:`execute_overwrite` for the inverse direction:
        when the half-length Stockham lowering exists and ``spectrum`` is a
        1-D contiguous writeable complex128 buffer of ``n//2 + 1`` bins,
        the conjugate entangle pass writes back into the buffer's first
        ``n/2`` slots (the reflected operand is staged through the shared
        half-size Stockham scratch because its reversed read range overlaps
        the write range), the half-length inverse runs in place on those
        slots, and the returned ``n`` real samples are a zero-copy float64
        view aliasing the caller's buffer - no full-size allocation at all.
        The buffer's spectrum is gone afterwards.  Anything else (batched,
        strided, read-only, or Stockham-unsupported spectra) silently
        degrades to the ordinary out-of-place :meth:`execute_inverse`.
        """

        if (
            self.stockham is not None
            and isinstance(spectrum, np.ndarray)
            and spectrum.dtype == np.complex128
            and spectrum.ndim == 1
            and spectrum.shape[-1] == self.bins
            and spectrum.flags.c_contiguous
            and spectrum.flags.writeable
        ):
            h = self.half
            z = spectrum[:h]
            scratch = _stockham_scratch(h)[:h]
            # The reflected term conj(B_k) conj(X[h-k]) first: X[h], ..,
            # X[1] overlaps the z[0..h) write range, so it is consumed into
            # the scratch before any bin is overwritten.
            np.conjugate(spectrum[h:0:-1], out=scratch)
            scratch *= self._ib[:h]
            # z[k] = conj(A_k) X[k] + staged reflected term, in the buffer.
            z *= self._ia[:h]
            z += scratch
            # Half-length inverse in place (the entangle scratch is dead by
            # now; the Stockham program reuses its first half internally).
            self.stockham.execute_inverse_inplace(z)
            # The complex128 half-signal IS the interleaved (even, odd)
            # float64 samples: the result aliases the caller's buffer.
            return z.view(np.float64)
        return self.execute_inverse(spectrum)

    # ------------------------------------------------------------------
    def profile(self, x: np.ndarray):
        """Timed per-phase breakdown of one packed forward execution.

        Same diagnostic contract as :meth:`StageProgram.profile`: pack,
        half-length transform stages, and the disentangle pass each get a
        timed entry.  Odd lengths profile the full-length complex program
        plus the bin slice.
        """

        import time

        from repro.telemetry.profile import ProfileEntry, ProfileResult

        x = np.asarray(x, dtype=np.float64)
        perf = time.perf_counter
        if self.n == 1 or self.half == 0:
            start = perf()
            out = self.execute(x)
            elapsed = perf() - start
            label = "trivial n=1" if self.n == 1 else "odd length (full complex + slice)"
            return ProfileResult(
                n=self.n,
                description=self.describe(),
                entries=(ProfileEntry(label, elapsed),),
                total_seconds=elapsed,
                output=out,
            )
        start = perf()
        z = self.pack(x)
        pack_seconds = perf() - start
        inner = self.program.profile(z)
        start = perf()
        out = self.disentangle(inner.output)
        repack_seconds = perf() - start
        entries = (
            (ProfileEntry("pack (zero-copy complex view)", pack_seconds),)
            + inner.entries
            + (ProfileEntry("disentangle (conjugate-even repack)", repack_seconds),)
        )
        return ProfileResult(
            n=self.n,
            description=self.describe(),
            entries=entries,
            total_seconds=pack_seconds + inner.total_seconds + repack_seconds,
            output=out,
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (half-length program plus repack pass)."""

        if self.n == 1:
            return "RealStageProgram(n=1, trivial)"
        if self.half == 0:
            return f"RealStageProgram(n={self.n}, odd -> {self.program.describe()})"
        return f"RealStageProgram(n={self.n}, packed -> {self.program.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class StockhamStageProgram:
    """An in-place compiled transform: caller's buffer plus one half scratch.

    The ping-pong :class:`StageProgram` doubles the working set - two
    full-size work buffers plus the output array.  At the paper's 2^20+
    sizes (Section 5) that extra memory traffic is what the in-place
    execution argument is about, so this program runs the transform *in the
    caller's buffer* with exactly one half-size scratch allocation:

    1. **deinterleave** - the odd-index samples move to the scratch ``S``
       with one strided copy; the even-index samples are compacted into the
       buffer's first half ``B1`` by a doubling schedule of
       ``ceil(log2 n/2)`` slice copies whose source and destination ranges
       never overlap (no hidden NumPy temporaries);
    2. **two half transforms** - the cached ``n/2``-point
       :class:`StageProgram` runs via :meth:`StageProgram.execute_into`,
       which ping-pongs its self-sorting combine stages between two
       *caller-provided* buffers: the even half between ``B1`` and ``B2``
       (the buffer's second half), the odd half between ``S`` and ``B1``;
    3. **autosort butterfly** - the final radix-2 DIT combine
       ``X[k] = E[k] + omega_n^k O[k]``, ``X[k+n/2] = E[k] - omega_n^k O[k]``
       writes both halves straight into their natural-order positions
       (three elementwise passes, no permutation pass, no final copy).

    Every write in steps 2-3 lands in a strided view of either the caller's
    buffer or the single scratch - the Stockham discipline of alternating
    buffers per stage, at half the usual footprint.  The half-length
    programs are shared with the out-of-place path through the program LRU,
    so compiling a Stockham program warms the ping-pong path too (and vice
    versa).

    Supported sizes: even ``n >= 2`` whose half-length program does not
    bottom out in a Bluestein base (the chirp convolution needs its own
    full-size scratch); see :func:`stockham_supported`.  Instances are
    immutable and thread-safe - the only mutable execution state is the
    thread-local scratch.
    """

    __slots__ = ("n", "half", "program", "twiddle")

    def __init__(self, n: int, *, native: bool = False) -> None:
        self.n = int(n)
        if self.n < 2 or self.n % 2:
            raise ValueError(
                f"in-place Stockham programs require an even size >= 2, got {n}"
            )
        self.half = self.n // 2
        self.program = get_program(self.half, native=native)
        if self.program.base_kind == "bluestein":
            raise ValueError(
                f"size {n} has a Bluestein half-length base; the in-place "
                f"Stockham lowering does not support it"
            )
        #: omega_n^k for k < n/2 - the only root table the autosort
        #: butterfly needs (one TwiddleCache hit at compile time).
        self.twiddle = get_global_cache().half_vector(self.n)

    # ------------------------------------------------------------------
    def execute_inplace(self, buf: np.ndarray) -> np.ndarray:
        """Forward DFT along the last axis, overwriting ``buf``.

        ``buf`` must be a writeable C-contiguous complex128 array whose
        last axis has length ``n`` (arbitrary leading batch axes).  The
        transform allocates nothing beyond the reusable thread-local
        scratch of *half* the buffer's size; the (mutated) buffer is
        returned holding the natural-order spectrum.
        """

        rows = self._as_rows(buf)
        batch = rows.shape[0]
        h = self.half
        scratch = _stockham_scratch(batch * h)[: batch * h].reshape(batch, h)
        b1 = rows[:, :h]
        b2 = rows[:, h:]

        # --- deinterleave: odds -> scratch, evens compacted into b1 -------
        scratch[...] = rows[:, 1::2]
        # Doubling schedule: destination [j, 2j) <- source [2j, 4j) (stride
        # 2).  Source start 2j == destination end, so the slices never
        # overlap and NumPy never buffers; element 0 is already in place.
        j = 1
        while j < h:
            w = min(j, h - j)
            rows[:, j : j + w] = rows[:, 2 * j : 2 * (j + w) : 2]
            j *= 2

        # --- the two half-length transforms -------------------------------
        self.program.execute_into(b1, b2)      # E = FFT(evens), staging in b1
        self.program.execute_into(scratch, b1)  # O = FFT(odds), staging in scratch

        # --- radix-2 autosort butterfly, natural order, no final copy -----
        np.multiply(b1, self.twiddle, out=scratch)  # t = omega * O
        np.add(b2, scratch, out=b1)                 # X[:h]  = E + t
        np.subtract(b2, scratch, out=b2)            # X[h:]  = E - t
        return buf

    def execute_inverse_inplace(self, buf: np.ndarray) -> np.ndarray:
        """Normalised inverse DFT along the last axis, overwriting ``buf``.

        Uses the conjugation identity in place: conjugate, forward
        transform, conjugate and scale - the same three-buffer discipline,
        still nothing allocated beyond the half-size scratch.
        """

        rows = self._as_rows(buf)
        np.conj(rows, out=rows)
        self.execute_inplace(rows)
        np.conj(rows, out=rows)
        rows *= 1.0 / self.n
        return buf

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Out-of-place convenience wrapper: copy once, transform in place.

        Gives the Stockham lowering the same call signature as
        :class:`StageProgram`, so plans can swap programs freely; the copy
        is the *only* full-size allocation on this path (the ping-pong
        executor pays it too, as its output array).
        """

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        if x.shape[-1] != self.n:
            raise ValueError(
                f"program of size {self.n} applied to array with last axis {x.shape[-1]}"
            )
        # reprolint: alloc-ok - the documented single full-size allocation of
        # the out-of-place wrapper (the ping-pong executor pays it too)
        out = np.empty(x.shape, dtype=np.complex128)
        np.copyto(out, x)
        return self.execute_inplace(out)

    # ------------------------------------------------------------------
    def _as_rows(self, buf: np.ndarray) -> np.ndarray:
        if not isinstance(buf, np.ndarray) or buf.dtype != np.complex128:
            raise ValueError("in-place execution requires a complex128 ndarray buffer")
        if not buf.flags.c_contiguous or not buf.flags.writeable:
            raise ValueError(
                "in-place execution requires a writeable C-contiguous buffer"
            )
        if buf.ndim == 0 or buf.shape[-1] != self.n:
            raise ValueError(
                f"program of size {self.n} applied to buffer with last axis "
                f"{buf.shape[-1] if buf.ndim else 0}"
            )
        return buf.reshape(-1, self.n)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (half program plus autosort combine)."""

        return (
            f"StockhamStageProgram(n={self.n}, inplace, scratch={self.half}, "
            f"half -> {self.program.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def stockham_supported(n: int) -> bool:
    """Whether size ``n`` has an in-place Stockham lowering.

    Even sizes whose half-length program bottoms out in a codelet or a
    direct small-prime DFT qualify; odd sizes have no parity split and
    Bluestein halves need their own convolution scratch.  Callers fall back
    to the ping-pong :class:`StageProgram` (plus a copy when in-place
    semantics were requested) for unsupported sizes.
    """

    n = int(n)
    if n < 2 or n % 2:
        return False
    return get_program(n // 2).base_kind != "bluestein"


# ----------------------------------------------------------------------
# thread-local ping-pong work buffers
# ----------------------------------------------------------------------

_tls = threading.local()


def _work_buffers(count: int) -> Tuple[np.ndarray, np.ndarray]:
    """Two reusable complex work buffers of at least ``count`` elements.

    Thread-local so concurrently executing plans never share scratch space;
    grown (never shrunk) as larger transforms appear.
    """

    pair = getattr(_tls, "buffers", None)
    if pair is None or pair[0].size < count:
        pair = (
            np.empty(count, dtype=np.complex128),
            np.empty(count, dtype=np.complex128),
        )
        _tls.buffers = pair
    return pair


def _stockham_scratch(count: int) -> np.ndarray:
    """The single reusable half-size scratch of the in-place Stockham path.

    Thread-local like the ping-pong pair (concurrent in-place executions
    never share it) but deliberately *separate* from it: an in-place
    transform must not inflate the out-of-place buffers, and the peak-memory
    guarantee - at most one buffer of half the working set - is what the
    scratch-accounting tests assert against.
    """

    buf = getattr(_tls, "stockham", None)
    if buf is None or buf.size < count:
        buf = np.empty(count, dtype=np.complex128)
        _tls.stockham = buf
    return buf


# ----------------------------------------------------------------------
# the program cache (shape mirrors the FTPlan "wisdom" cache)
# ----------------------------------------------------------------------

class ProgramCacheInfo(NamedTuple):
    hits: int
    misses: int
    size: int
    limit: int


_DEFAULT_PROGRAM_CACHE_LIMIT = 128

_cache_lock = threading.RLock()
#: keyed by ``n`` (complex programs), ``("real", n)`` (real programs),
#: ``("stockham", n)`` (in-place Stockham programs),
#: ``("sixstep", n, threads, inplace)`` (threaded six-step programs), or
#: ``("protected", n, optimized, memory_ft)`` (fused protected programs,
#: see :mod:`repro.fftlib.protected`).  Native-tier lowerings are distinct
#: entries under ``("native", <key>)`` so a native request never mutates
#: (or is satisfied by) the pure-NumPy program of the same size.
_programs: "OrderedDict[object, object]" = OrderedDict()
#: per-key once-guards: key -> Event set when that key's compile finishes
_inflight: dict = {}
_cache_limit = _DEFAULT_PROGRAM_CACHE_LIMIT
_hits = 0
_misses = 0


def _cached_program(key, factory):
    """Fetch ``key`` from the shared program LRU, compiling via ``factory``.

    Compilation happens *outside* the cache lock, guarded per key: the first
    thread to request a key compiles it while concurrent requests for the
    same key wait on its event (no duplicate compilation stampede), and
    requests for *different* keys compile concurrently (no serialization of
    unrelated planner threads behind one big lock).
    """

    global _hits, _misses
    while True:
        with _cache_lock:
            cached = _programs.get(key)
            if cached is not None:
                _hits += 1
                _programs.move_to_end(key)
                return cached
            guard = _inflight.get(key)
            if guard is None:
                guard = threading.Event()
                _inflight[key] = guard
                owner = True
            else:
                owner = False
        if not owner:
            # Another thread is compiling this key; wait and re-check the
            # cache (looping covers the owner failing or the entry being
            # evicted between its insert and our wake-up).
            guard.wait()
            continue
        try:
            created = factory()
        except BaseException:
            with _cache_lock:
                _inflight.pop(key, None)
            guard.set()
            raise
        with _cache_lock:
            _misses += 1
            _programs[key] = created
            while len(_programs) > _cache_limit:
                _programs.popitem(last=False)
            _inflight.pop(key, None)
        guard.set()
        if _trace.active:
            # The owner's factory path is the one actual compile per key
            # (waiters and cache hits never reach here).
            _trace.emit("program-compile", key=key, program=created.describe())
        return created


def get_program(n: int, *, native: bool = False) -> StageProgram:
    """The (cached) compiled stage program for an ``n``-point transform.

    ``native=True`` requests the generated-C kernel lowering (a separate
    cache entry); when the native tier is unavailable the returned program
    silently keeps its pure-NumPy stage bodies and records the reason on
    ``native_fallback_reason``.
    """

    n = int(n)
    if native:
        return _cached_program(("native", n), lambda: StageProgram(n, native=True))
    return _cached_program(n, lambda: StageProgram(n))


def get_real_program(n: int, *, native: bool = False) -> RealStageProgram:
    """The (cached) compiled real-to-complex program for ``n`` real samples.

    Shares the complex program LRU (keys are tagged), so a real program and
    the half-length complex program it wraps count as two entries.
    """

    n = int(n)
    if native:
        return _cached_program(
            ("native", ("real", n)), lambda: RealStageProgram(n, native=True)
        )
    return _cached_program(("real", n), lambda: RealStageProgram(n))


def get_stockham_program(n: int, *, native: bool = False) -> StockhamStageProgram:
    """The (cached) in-place Stockham program for an ``n``-point transform.

    Shares the program LRU under ``("stockham", n)`` keys; the half-length
    :class:`StageProgram` it wraps is the same object the out-of-place path
    caches, so the two lowerings share twiddle tables and butterflies.
    Raises ``ValueError`` for unsupported sizes (see
    :func:`stockham_supported`).
    """

    n = int(n)
    if native:
        return _cached_program(
            ("native", ("stockham", n)), lambda: StockhamStageProgram(n, native=True)
        )
    return _cached_program(("stockham", n), lambda: StockhamStageProgram(n))


def program_cache_info() -> ProgramCacheInfo:
    """Hit/miss/size statistics of the program cache."""

    with _cache_lock:
        return ProgramCacheInfo(_hits, _misses, len(_programs), _cache_limit)


def clear_program_cache() -> None:
    """Drop all compiled programs and reset the statistics."""

    global _hits, _misses
    with _cache_lock:
        _programs.clear()
        _hits = 0
        _misses = 0


# ----------------------------------------------------------------------
# module-level transforms (the compiled counterparts of mixed_radix.*)
# ----------------------------------------------------------------------

def fft(x: np.ndarray) -> np.ndarray:
    """Forward DFT along the last axis via the compiled stage program."""

    x = np.asarray(x, dtype=np.complex128)
    if x.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if x.shape[-1] == 0:
        raise ValueError("transform length must be positive")
    return get_program(x.shape[-1]).execute(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT along the last axis (normalised by ``1/n``).

    Uses the conjugation identity ``ifft(x) = conj(fft(conj(x))) / n`` so the
    forward program serves both directions (matching the recursive engine).
    """

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    return np.conj(fft(np.conj(x))) / n


def rfft(x: np.ndarray) -> np.ndarray:
    """Packed real-to-complex DFT along the last axis (compiled, batched)."""

    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if x.shape[-1] == 0:
        raise ValueError("transform length must be positive")
    return get_real_program(x.shape[-1]).execute(x)


def irfft(spectrum: np.ndarray, n: Optional[int] = None) -> np.ndarray:
    """Real inverse of :func:`rfft` along the last axis (compiled, batched).

    ``n`` defaults to ``2 * (bins - 1)``, the even-length case; pass it
    explicitly to recover an odd-length signal.
    """

    spectrum = np.asarray(spectrum, dtype=np.complex128)
    if spectrum.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if n is None:
        n = 2 * (spectrum.shape[-1] - 1)
    return get_real_program(n).execute_inverse(spectrum)


def fft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Forward DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    if axis == -1 or axis == x.ndim - 1:
        return fft(x)
    moved = np.moveaxis(x, axis, -1)
    return np.moveaxis(fft(moved), -1, axis)


def ifft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Inverse DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    if axis == -1 or axis == x.ndim - 1:
        return ifft(x)
    moved = np.moveaxis(x, axis, -1)
    return np.moveaxis(ifft(moved), -1, axis)

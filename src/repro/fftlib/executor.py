"""Compiled iterative stage programs: the engine's fast execution path.

The recursive engine in :mod:`repro.fftlib.mixed_radix` re-derives the radix
schedule, re-looks-up twiddle tables, and pays two contiguity copies per
recursion level on *every* call.  This module moves all of that work to plan
time, FFTW-style:

* :func:`compile_program` lowers a size ``n`` once into a
  :class:`StageProgram` - an explicit, immutable list of iterative
  (Stockham-flavoured) combine :class:`Stage` descriptors sitting on top of a
  base kernel (codelet, direct DFT matrix, or Bluestein), with every
  per-stage twiddle table and butterfly matrix fetched from the shared
  :class:`~repro.fftlib.twiddle.TwiddleCache` exactly once;
* :meth:`StageProgram.execute` runs the program as a tight loop over two
  ping-pong work buffers - no recursion, no repeated factorization, no
  per-level ``ascontiguousarray`` copies - fully batched over arbitrary
  leading axes.

Algorithm
---------
The program maintains the decimation-in-time invariant as a ``(batch, q, p)``
array ``X`` with ``q * p == n``: row ``b`` holds the length-``p`` DFT of the
stride-``q`` input subsequence starting at offset ``b``.  The base kernel
establishes the invariant for ``p = base``; each combine stage of radix ``r``
then merges groups of ``r`` rows,

.. math::

    X'[b', t p + u] = \\sum_{s=0}^{r-1} \\omega_r^{t s}\\,
        \\omega_{r p}^{u s}\\, X[s q' + b', u],

which is one elementwise twiddle multiplication (the precomputed ``(r, p)``
table) followed by one rank-``r`` DFT contraction.  The contraction is
dispatched per stage: hand-written codelets exist for the small radices, but
a single BLAS ``matmul`` against the ``r x r`` DFT matrix - writing straight
into a strided view of the other ping-pong buffer so the ``t``-major output
order needs no transpose pass - measures faster for every radix the planner
emits, so that is the default kernel.  After the last stage ``q == 1`` and
the buffer holds the full transform in natural order.

Programs are cached per size in a thread-safe, size-bounded LRU (the same
shape as the plan cache), so ``Plan`` construction and the
``fftlib`` backend share one compiled program per size.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.codelets import apply_codelet, has_codelet
from repro.fftlib.twiddle import get_global_cache

__all__ = [
    "Stage",
    "StageProgram",
    "RealStageProgram",
    "compile_program",
    "get_program",
    "get_real_program",
    "program_cache_info",
    "clear_program_cache",
    "fft",
    "ifft",
    "fft_along_axis",
    "ifft_along_axis",
    "rfft",
    "irfft",
]

# Prime base sizes up to this threshold use a cached DFT-matrix product;
# larger primes go through Bluestein (mirrors the recursive engine).
_DIRECT_PRIME_THRESHOLD = 61

# Radix preference: large radices first so programs stay short (the BLAS
# combine amortizes its call overhead over r butterfly points).
_RADIX_PREFERENCE = (16, 8, 6, 5, 4, 3, 2)


def _choose_radix(n: int) -> int:
    for radix in _RADIX_PREFERENCE:
        if n % radix == 0:
            return radix
    return factorization.smallest_prime_factor(n)


def lower(n: int) -> Tuple[int, Tuple[int, ...]]:
    """Split ``n`` into ``(base, radices)`` with ``base * prod(radices) == n``.

    ``base`` is the bottom-level transform length (a codelet size or a
    prime); ``radices`` lists the combine radices in the order the recursive
    engine would peel them (outermost first).  This is the schedule the
    planner lowers into a :class:`StageProgram`.
    """

    radices = []
    m = int(n)
    while not has_codelet(m) and not factorization.is_prime(m):
        r = _choose_radix(m)
        radices.append(r)
        m //= r
    # A tiny base under large combines leaves the bottom stage as a
    # memory-bound (batch, q, 2..8) matmul that dominates the whole program
    # (2^13 ran 4x slower than 2^12 because of it); folding the innermost
    # combine into the base instead yields one well-shaped direct DFT of a
    # moderate size.
    while radices and m < 16 and m * radices[-1] <= 64:
        m *= radices.pop()
    return m, tuple(radices)


@dataclass(frozen=True)
class Stage:
    """One iterative combine stage of a compiled program.

    Attributes
    ----------
    radix:
        Number of length-``span`` transforms merged per output transform.
    span:
        Length ``p`` of the transforms already completed when this stage
        runs; the stage produces transforms of length ``radix * span``.
    count:
        Number of output transforms ``q' = n / (radix * span)`` remaining
        after this stage (1 for the final stage).
    twiddle:
        The ``(radix, span)`` table ``omega_{radix*span}^{s u}`` applied
        before the combine (one :class:`TwiddleCache` hit at compile time).
    matrix:
        The ``radix x radix`` DFT matrix of the combine butterfly (symmetric,
        so it is used untransposed in the matmul).
    """

    radix: int
    span: int
    count: int
    twiddle: np.ndarray
    matrix: np.ndarray


class StageProgram:
    """A fully lowered, reusable execution recipe for one transform size.

    Immutable after construction and safe to share across threads: the only
    mutable state used during execution is a pair of thread-local ping-pong
    buffers.
    """

    __slots__ = ("n", "base", "base_kind", "base_matrix", "stages")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        base, radices = lower(self.n)
        self.base = base
        if base == self.n and has_codelet(base):
            self.base_kind = "codelet"
            self.base_matrix = None
        elif factorization.is_prime(base) and base > _DIRECT_PRIME_THRESHOLD:
            self.base_kind = "bluestein"
            self.base_matrix = None
        else:
            # Codelet-sized or small-prime base below combine stages: a
            # single batched product with the cached DFT matrix beats the
            # codelet call chains (BLAS) and handles both cases uniformly.
            self.base_kind = "direct"
            self.base_matrix = get_global_cache().dft_matrix(base)
        stages = []
        span = base
        for radix in reversed(radices):  # combine bottom-up
            stages.append(
                Stage(
                    radix=radix,
                    span=span,
                    count=self.n // (radix * span),
                    twiddle=get_global_cache().stage(radix, span),
                    matrix=get_global_cache().dft_matrix(radix),
                )
            )
            span *= radix
        self.stages: Tuple[Stage, ...] = tuple(stages)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Forward DFT along the last axis of ``x`` (batched, out-of-place)."""

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        n = self.n
        if x.shape[-1] != n:
            raise ValueError(
                f"program of size {n} applied to array with last axis {x.shape[-1]}"
            )
        shape = x.shape
        batch = x.size // n
        xs = x.reshape(batch, n)
        if not xs.flags.c_contiguous:
            xs = np.ascontiguousarray(xs)

        if not self.stages:
            # Whole transform handled by the base kernel.
            if self.base_kind == "codelet":
                return apply_codelet(xs, n).reshape(shape)
            if self.base_kind == "bluestein":
                from repro.fftlib.bluestein import bluestein_fft

                return bluestein_fft(xs).reshape(shape)
            return np.matmul(xs, self.base_matrix).reshape(shape)

        work_a, work_b = _work_buffers(batch * n)

        # --- base kernel: length-`base` DFTs of all stride-q subsequences --
        base = self.base
        q = n // base
        gathered = xs.reshape(batch, base, q).transpose(0, 2, 1)  # view
        if self.base_kind == "bluestein":
            from repro.fftlib.bluestein import bluestein_fft

            current = np.ascontiguousarray(bluestein_fft(gathered))
        else:
            current = np.matmul(
                gathered, self.base_matrix, out=work_a[: batch * n].reshape(batch, q, base)
            )

        # --- combine stages: tight twiddle-multiply + rank-r DFT loop ------
        last = len(self.stages) - 1
        for index, stage in enumerate(self.stages):
            r, p, count = stage.radix, stage.span, stage.count
            grouped = work_b[: batch * n].reshape(batch, r, count, p)
            np.multiply(
                current.reshape(batch, r, count, p),
                stage.twiddle[:, None, :],
                out=grouped,
            )
            if index == last:
                target = np.empty((batch, count, r * p), dtype=np.complex128)
            else:
                target = work_a[: batch * n].reshape(batch, count, r * p)
            # t-major output without a transpose pass: matmul writes into a
            # strided view whose last axis is the butterfly output index.
            np.matmul(
                grouped.transpose(0, 2, 3, 1),
                stage.matrix,
                out=target.reshape(batch, count, r, p).transpose(0, 1, 3, 2),
            )
            current = target
        return current.reshape(shape)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (base kernel plus combine radices)."""

        combines = "*".join(str(s.radix) for s in self.stages) or "-"
        return (
            f"StageProgram(n={self.n}, base={self.base}[{self.base_kind}], "
            f"combine={combines})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def compile_program(n: int) -> StageProgram:
    """Lower size ``n`` into a fresh (uncached) :class:`StageProgram`.

    Most callers want :func:`get_program`, which memoizes compilation in a
    thread-safe LRU; this entry point exists for tests and planner
    experiments that need an independent program object.
    """

    return StageProgram(n)


class RealStageProgram:
    """A compiled real-to-complex transform of one size (conjugate-even packing).

    For even ``n`` the ``n`` real samples are viewed as ``n/2`` complex
    samples, transformed with the cached half-length complex
    :class:`StageProgram`, and disentangled with one vectorized pass:

    .. math::

        X[k] = A_k\\,Z_{ext}[k] + B_k\\,\\overline{Z_{ext}[h-k]},
        \\qquad
        A_k = \\tfrac{1}{2}(1 - i\\,\\omega_n^k),\\;
        B_k = \\tfrac{1}{2}(1 + i\\,\\omega_n^k),

    with ``h = n/2`` and ``Z_ext[h] = Z[0]``.  The inverse uses the conjugate
    coefficients (``Z[k] = conj(A_k) X[k] + conj(B_k) conj(X[h-k])``) followed
    by the half-length inverse, so both directions run at half the complex
    flop/byte cost.  Odd lengths have no packing trick; they run the
    full-length complex program and keep the ``n//2 + 1`` non-redundant bins
    (still compiled - the seed's fallback re-entered the recursive engine).

    Like :class:`StageProgram`, instances are immutable after construction,
    batched over arbitrary leading axes, and memoized in the same LRU
    (:func:`get_real_program`).
    """

    __slots__ = ("n", "bins", "half", "program", "_a", "_b")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        self.bins = self.n // 2 + 1
        if self.n % 2 == 0 and self.n > 1:
            self.half = self.n // 2
            self.program = get_program(self.half)
            w = np.exp(-2j * np.pi * np.arange(self.bins) / self.n)
            self._a = 0.5 * (1.0 - 1j * w)
            self._b = 0.5 * (1.0 + 1j * w)
        else:
            self.half = 0
            self.program = get_program(self.n) if self.n > 1 else None
            self._a = self._b = None

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Packed forward transform along the last axis of a real array."""

        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        if x.shape[-1] != self.n:
            raise ValueError(
                f"real program of size {self.n} applied to array with last axis {x.shape[-1]}"
            )
        if self.n == 1:
            return x.astype(np.complex128)
        if self.half == 0:
            # Odd length: full-length compiled complex transform, keep the
            # non-redundant bins.
            full = self.program.execute(x.astype(np.complex128))
            return np.ascontiguousarray(full[..., : self.bins])
        return self.disentangle(self.transform_half(self.pack(x)))

    # ------------------------------------------------------------------
    # the three even-length pipeline steps, exposed separately so callers
    # (the ABFT fast path) can verify the half-length sub-transform's
    # checksum *between* them - interior online verification instead of
    # only end-to-end.
    # ------------------------------------------------------------------
    def pack(self, x: np.ndarray) -> np.ndarray:
        """View ``n`` real samples as the ``n/2`` packed complex sequence.

        Adjacent (even, odd) sample pairs ARE the complex128 memory layout,
        so the packing ``z[j] = x[2j] + i x[2j+1]`` is a zero-copy view
        (a copy happens only for non-contiguous input).  Even lengths only.
        """

        if self.half == 0:
            raise ValueError("packing requires an even transform length > 1")
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.n:
            raise ValueError(
                f"real program of size {self.n} applied to array with last axis {x.shape[-1]}"
            )
        if x.strides[-1] != x.itemsize:
            x = np.ascontiguousarray(x)
        return x.view(np.complex128)

    def transform_half(self, z: np.ndarray) -> np.ndarray:
        """The cached half-length complex transform of the packed sequence."""

        return self.program.execute(z)

    def disentangle(self, spectrum: np.ndarray) -> np.ndarray:
        """Packed ``n//2 + 1``-bin spectrum from the half-length transform.

        Disentangles on reversed-slice *views* (no index-array gathers):
        interior bins pair ``Z[k]`` with ``conj(Z[h-k])``; bins 0 and ``h``
        both pair ``Z[0]`` with itself.
        """

        h = self.half
        out = np.empty(spectrum.shape[:-1] + (self.bins,), dtype=np.complex128)
        interior = out[..., 1:h]
        np.multiply(spectrum[..., 1:h], self._a[1:h], out=interior)
        interior += self._b[1:h] * np.conj(spectrum[..., h - 1 : 0 : -1])
        z0 = spectrum[..., 0]
        out[..., 0] = self._a[0] * z0 + self._b[0] * np.conj(z0)
        out[..., h] = self._a[h] * z0 + self._b[h] * np.conj(z0)
        return out

    # ------------------------------------------------------------------
    def execute_inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Real inverse transform of a packed ``n//2 + 1``-bin spectrum."""

        spectrum = np.asarray(spectrum, dtype=np.complex128)
        if spectrum.ndim == 0:
            raise ValueError("input must have at least one dimension")
        if spectrum.shape[-1] != self.bins:
            raise ValueError(
                f"spectrum has {spectrum.shape[-1]} bins, expected {self.bins} for n={self.n}"
            )
        if self.n == 1:
            return np.real(spectrum).astype(np.float64)
        if self.half == 0:
            # Odd length: rebuild the Hermitian spectrum, run the compiled
            # complex inverse (conjugation identity), strip the imaginary
            # rounding noise.
            negative = np.conj(spectrum[..., -1:0:-1])
            full = np.concatenate([spectrum, negative], axis=-1)
            time_domain = np.conj(self.program.execute(np.conj(full))) / self.n
            return np.real(time_domain)
        h = self.half
        # Z[k] = conj(A_k) X[k] + conj(B_k) conj(X[h-k]), k = 0..h-1; the
        # reflected operand X[h], X[h-1], ..., X[1] is a reversed-slice view.
        z = np.empty(spectrum.shape[:-1] + (h,), dtype=np.complex128)
        np.multiply(spectrum[..., :h], np.conj(self._a[:h]), out=z)
        z += np.conj(self._b[:h]) * np.conj(spectrum[..., h:0:-1])
        time_half = np.conj(self.program.execute(np.conj(z)))
        time_half /= h
        # The complex128 layout of the half-length signal IS the interleaved
        # (even, odd) float64 sample sequence: unpacking is a zero-copy view.
        if time_half.strides[-1] != time_half.itemsize:
            time_half = np.ascontiguousarray(time_half)
        return time_half.view(np.float64)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (half-length program plus repack pass)."""

        if self.n == 1:
            return "RealStageProgram(n=1, trivial)"
        if self.half == 0:
            return f"RealStageProgram(n={self.n}, odd -> {self.program.describe()})"
        return f"RealStageProgram(n={self.n}, packed -> {self.program.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# ----------------------------------------------------------------------
# thread-local ping-pong work buffers
# ----------------------------------------------------------------------

_tls = threading.local()


def _work_buffers(count: int) -> Tuple[np.ndarray, np.ndarray]:
    """Two reusable complex work buffers of at least ``count`` elements.

    Thread-local so concurrently executing plans never share scratch space;
    grown (never shrunk) as larger transforms appear.
    """

    pair = getattr(_tls, "buffers", None)
    if pair is None or pair[0].size < count:
        pair = (
            np.empty(count, dtype=np.complex128),
            np.empty(count, dtype=np.complex128),
        )
        _tls.buffers = pair
    return pair


# ----------------------------------------------------------------------
# the program cache (shape mirrors the FTPlan "wisdom" cache)
# ----------------------------------------------------------------------

class ProgramCacheInfo(NamedTuple):
    hits: int
    misses: int
    size: int
    limit: int


_DEFAULT_PROGRAM_CACHE_LIMIT = 128

_cache_lock = threading.RLock()
#: keyed by ``n`` (complex programs), ``("real", n)`` (real programs), or
#: ``("sixstep", n, threads)`` (threaded six-step programs)
_programs: "OrderedDict[object, object]" = OrderedDict()
#: per-key once-guards: key -> Event set when that key's compile finishes
_inflight: dict = {}
_cache_limit = _DEFAULT_PROGRAM_CACHE_LIMIT
_hits = 0
_misses = 0


def _cached_program(key, factory):
    """Fetch ``key`` from the shared program LRU, compiling via ``factory``.

    Compilation happens *outside* the cache lock, guarded per key: the first
    thread to request a key compiles it while concurrent requests for the
    same key wait on its event (no duplicate compilation stampede), and
    requests for *different* keys compile concurrently (no serialization of
    unrelated planner threads behind one big lock).
    """

    global _hits, _misses
    while True:
        with _cache_lock:
            cached = _programs.get(key)
            if cached is not None:
                _hits += 1
                _programs.move_to_end(key)
                return cached
            guard = _inflight.get(key)
            if guard is None:
                guard = threading.Event()
                _inflight[key] = guard
                owner = True
            else:
                owner = False
        if not owner:
            # Another thread is compiling this key; wait and re-check the
            # cache (looping covers the owner failing or the entry being
            # evicted between its insert and our wake-up).
            guard.wait()
            continue
        try:
            created = factory()
        except BaseException:
            with _cache_lock:
                _inflight.pop(key, None)
            guard.set()
            raise
        with _cache_lock:
            _misses += 1
            _programs[key] = created
            while len(_programs) > _cache_limit:
                _programs.popitem(last=False)
            _inflight.pop(key, None)
        guard.set()
        return created


def get_program(n: int) -> StageProgram:
    """The (cached) compiled stage program for an ``n``-point transform."""

    n = int(n)
    return _cached_program(n, lambda: StageProgram(n))


def get_real_program(n: int) -> RealStageProgram:
    """The (cached) compiled real-to-complex program for ``n`` real samples.

    Shares the complex program LRU (keys are tagged), so a real program and
    the half-length complex program it wraps count as two entries.
    """

    n = int(n)
    return _cached_program(("real", n), lambda: RealStageProgram(n))


def program_cache_info() -> ProgramCacheInfo:
    """Hit/miss/size statistics of the program cache."""

    with _cache_lock:
        return ProgramCacheInfo(_hits, _misses, len(_programs), _cache_limit)


def clear_program_cache() -> None:
    """Drop all compiled programs and reset the statistics."""

    global _hits, _misses
    with _cache_lock:
        _programs.clear()
        _hits = 0
        _misses = 0


# ----------------------------------------------------------------------
# module-level transforms (the compiled counterparts of mixed_radix.*)
# ----------------------------------------------------------------------

def fft(x: np.ndarray) -> np.ndarray:
    """Forward DFT along the last axis via the compiled stage program."""

    x = np.asarray(x, dtype=np.complex128)
    if x.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if x.shape[-1] == 0:
        raise ValueError("transform length must be positive")
    return get_program(x.shape[-1]).execute(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT along the last axis (normalised by ``1/n``).

    Uses the conjugation identity ``ifft(x) = conj(fft(conj(x))) / n`` so the
    forward program serves both directions (matching the recursive engine).
    """

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    return np.conj(fft(np.conj(x))) / n


def rfft(x: np.ndarray) -> np.ndarray:
    """Packed real-to-complex DFT along the last axis (compiled, batched)."""

    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if x.shape[-1] == 0:
        raise ValueError("transform length must be positive")
    return get_real_program(x.shape[-1]).execute(x)


def irfft(spectrum: np.ndarray, n: Optional[int] = None) -> np.ndarray:
    """Real inverse of :func:`rfft` along the last axis (compiled, batched).

    ``n`` defaults to ``2 * (bins - 1)``, the even-length case; pass it
    explicitly to recover an odd-length signal.
    """

    spectrum = np.asarray(spectrum, dtype=np.complex128)
    if spectrum.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if n is None:
        n = 2 * (spectrum.shape[-1] - 1)
    return get_real_program(n).execute_inverse(spectrum)


def fft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Forward DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    if axis == -1 or axis == x.ndim - 1:
        return fft(x)
    moved = np.moveaxis(x, axis, -1)
    return np.moveaxis(fft(moved), -1, axis)


def ifft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Inverse DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    if axis == -1 or axis == x.ndim - 1:
        return ifft(x)
    moved = np.moveaxis(x, axis, -1)
    return np.moveaxis(ifft(moved), -1, axis)

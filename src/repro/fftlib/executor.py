"""Compiled iterative stage programs: the engine's fast execution path.

The recursive engine in :mod:`repro.fftlib.mixed_radix` re-derives the radix
schedule, re-looks-up twiddle tables, and pays two contiguity copies per
recursion level on *every* call.  This module moves all of that work to plan
time, FFTW-style:

* :func:`compile_program` lowers a size ``n`` once into a
  :class:`StageProgram` - an explicit, immutable list of iterative
  (Stockham-flavoured) combine :class:`Stage` descriptors sitting on top of a
  base kernel (codelet, direct DFT matrix, or Bluestein), with every
  per-stage twiddle table and butterfly matrix fetched from the shared
  :class:`~repro.fftlib.twiddle.TwiddleCache` exactly once;
* :meth:`StageProgram.execute` runs the program as a tight loop over two
  ping-pong work buffers - no recursion, no repeated factorization, no
  per-level ``ascontiguousarray`` copies - fully batched over arbitrary
  leading axes.

Algorithm
---------
The program maintains the decimation-in-time invariant as a ``(batch, q, p)``
array ``X`` with ``q * p == n``: row ``b`` holds the length-``p`` DFT of the
stride-``q`` input subsequence starting at offset ``b``.  The base kernel
establishes the invariant for ``p = base``; each combine stage of radix ``r``
then merges groups of ``r`` rows,

.. math::

    X'[b', t p + u] = \\sum_{s=0}^{r-1} \\omega_r^{t s}\\,
        \\omega_{r p}^{u s}\\, X[s q' + b', u],

which is one elementwise twiddle multiplication (the precomputed ``(r, p)``
table) followed by one rank-``r`` DFT contraction.  The contraction is
dispatched per stage: hand-written codelets exist for the small radices, but
a single BLAS ``matmul`` against the ``r x r`` DFT matrix - writing straight
into a strided view of the other ping-pong buffer so the ``t``-major output
order needs no transpose pass - measures faster for every radix the planner
emits, so that is the default kernel.  After the last stage ``q == 1`` and
the buffer holds the full transform in natural order.

Programs are cached per size in a thread-safe, size-bounded LRU (the same
shape as the plan cache), so ``Plan`` construction and the
``fftlib`` backend share one compiled program per size.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.fftlib import factorization
from repro.fftlib.codelets import apply_codelet, has_codelet
from repro.fftlib.twiddle import get_global_cache

__all__ = [
    "Stage",
    "StageProgram",
    "compile_program",
    "get_program",
    "program_cache_info",
    "clear_program_cache",
    "fft",
    "ifft",
    "fft_along_axis",
    "ifft_along_axis",
]

# Prime base sizes up to this threshold use a cached DFT-matrix product;
# larger primes go through Bluestein (mirrors the recursive engine).
_DIRECT_PRIME_THRESHOLD = 61

# Radix preference: large radices first so programs stay short (the BLAS
# combine amortizes its call overhead over r butterfly points).
_RADIX_PREFERENCE = (16, 8, 6, 5, 4, 3, 2)


def _choose_radix(n: int) -> int:
    for radix in _RADIX_PREFERENCE:
        if n % radix == 0:
            return radix
    return factorization.smallest_prime_factor(n)


def lower(n: int) -> Tuple[int, Tuple[int, ...]]:
    """Split ``n`` into ``(base, radices)`` with ``base * prod(radices) == n``.

    ``base`` is the bottom-level transform length (a codelet size or a
    prime); ``radices`` lists the combine radices in the order the recursive
    engine would peel them (outermost first).  This is the schedule the
    planner lowers into a :class:`StageProgram`.
    """

    radices = []
    m = int(n)
    while not has_codelet(m) and not factorization.is_prime(m):
        r = _choose_radix(m)
        radices.append(r)
        m //= r
    return m, tuple(radices)


@dataclass(frozen=True)
class Stage:
    """One iterative combine stage of a compiled program.

    Attributes
    ----------
    radix:
        Number of length-``span`` transforms merged per output transform.
    span:
        Length ``p`` of the transforms already completed when this stage
        runs; the stage produces transforms of length ``radix * span``.
    count:
        Number of output transforms ``q' = n / (radix * span)`` remaining
        after this stage (1 for the final stage).
    twiddle:
        The ``(radix, span)`` table ``omega_{radix*span}^{s u}`` applied
        before the combine (one :class:`TwiddleCache` hit at compile time).
    matrix:
        The ``radix x radix`` DFT matrix of the combine butterfly (symmetric,
        so it is used untransposed in the matmul).
    """

    radix: int
    span: int
    count: int
    twiddle: np.ndarray
    matrix: np.ndarray


class StageProgram:
    """A fully lowered, reusable execution recipe for one transform size.

    Immutable after construction and safe to share across threads: the only
    mutable state used during execution is a pair of thread-local ping-pong
    buffers.
    """

    __slots__ = ("n", "base", "base_kind", "base_matrix", "stages")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        if self.n <= 0:
            raise ValueError("transform length must be positive")
        base, radices = lower(self.n)
        self.base = base
        if base == self.n and has_codelet(base):
            self.base_kind = "codelet"
            self.base_matrix = None
        elif factorization.is_prime(base) and base > _DIRECT_PRIME_THRESHOLD:
            self.base_kind = "bluestein"
            self.base_matrix = None
        else:
            # Codelet-sized or small-prime base below combine stages: a
            # single batched product with the cached DFT matrix beats the
            # codelet call chains (BLAS) and handles both cases uniformly.
            self.base_kind = "direct"
            self.base_matrix = get_global_cache().dft_matrix(base)
        stages = []
        span = base
        for radix in reversed(radices):  # combine bottom-up
            stages.append(
                Stage(
                    radix=radix,
                    span=span,
                    count=self.n // (radix * span),
                    twiddle=get_global_cache().stage(radix, span),
                    matrix=get_global_cache().dft_matrix(radix),
                )
            )
            span *= radix
        self.stages: Tuple[Stage, ...] = tuple(stages)

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Forward DFT along the last axis of ``x`` (batched, out-of-place)."""

        x = np.asarray(x, dtype=np.complex128)
        if x.ndim == 0:
            raise ValueError("input must have at least one dimension")
        n = self.n
        if x.shape[-1] != n:
            raise ValueError(
                f"program of size {n} applied to array with last axis {x.shape[-1]}"
            )
        shape = x.shape
        batch = x.size // n
        xs = x.reshape(batch, n)
        if not xs.flags.c_contiguous:
            xs = np.ascontiguousarray(xs)

        if not self.stages:
            # Whole transform handled by the base kernel.
            if self.base_kind == "codelet":
                return apply_codelet(xs, n).reshape(shape)
            if self.base_kind == "bluestein":
                from repro.fftlib.bluestein import bluestein_fft

                return bluestein_fft(xs).reshape(shape)
            return np.matmul(xs, self.base_matrix).reshape(shape)

        work_a, work_b = _work_buffers(batch * n)

        # --- base kernel: length-`base` DFTs of all stride-q subsequences --
        base = self.base
        q = n // base
        gathered = xs.reshape(batch, base, q).transpose(0, 2, 1)  # view
        if self.base_kind == "bluestein":
            from repro.fftlib.bluestein import bluestein_fft

            current = np.ascontiguousarray(bluestein_fft(gathered))
        else:
            current = np.matmul(
                gathered, self.base_matrix, out=work_a[: batch * n].reshape(batch, q, base)
            )

        # --- combine stages: tight twiddle-multiply + rank-r DFT loop ------
        last = len(self.stages) - 1
        for index, stage in enumerate(self.stages):
            r, p, count = stage.radix, stage.span, stage.count
            grouped = work_b[: batch * n].reshape(batch, r, count, p)
            np.multiply(
                current.reshape(batch, r, count, p),
                stage.twiddle[:, None, :],
                out=grouped,
            )
            if index == last:
                target = np.empty((batch, count, r * p), dtype=np.complex128)
            else:
                target = work_a[: batch * n].reshape(batch, count, r * p)
            # t-major output without a transpose pass: matmul writes into a
            # strided view whose last axis is the butterfly output index.
            np.matmul(
                grouped.transpose(0, 2, 3, 1),
                stage.matrix,
                out=target.reshape(batch, count, r, p).transpose(0, 1, 3, 2),
            )
            current = target
        return current.reshape(shape)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line program listing (base kernel plus combine radices)."""

        combines = "*".join(str(s.radix) for s in self.stages) or "-"
        return (
            f"StageProgram(n={self.n}, base={self.base}[{self.base_kind}], "
            f"combine={combines})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def compile_program(n: int) -> StageProgram:
    """Lower size ``n`` into a fresh (uncached) :class:`StageProgram`.

    Most callers want :func:`get_program`, which memoizes compilation in a
    thread-safe LRU; this entry point exists for tests and planner
    experiments that need an independent program object.
    """

    return StageProgram(n)


# ----------------------------------------------------------------------
# thread-local ping-pong work buffers
# ----------------------------------------------------------------------

_tls = threading.local()


def _work_buffers(count: int) -> Tuple[np.ndarray, np.ndarray]:
    """Two reusable complex work buffers of at least ``count`` elements.

    Thread-local so concurrently executing plans never share scratch space;
    grown (never shrunk) as larger transforms appear.
    """

    pair = getattr(_tls, "buffers", None)
    if pair is None or pair[0].size < count:
        pair = (
            np.empty(count, dtype=np.complex128),
            np.empty(count, dtype=np.complex128),
        )
        _tls.buffers = pair
    return pair


# ----------------------------------------------------------------------
# the program cache (shape mirrors the FTPlan "wisdom" cache)
# ----------------------------------------------------------------------

class ProgramCacheInfo(NamedTuple):
    hits: int
    misses: int
    size: int
    limit: int


_DEFAULT_PROGRAM_CACHE_LIMIT = 128

_cache_lock = threading.RLock()
_programs: "OrderedDict[int, StageProgram]" = OrderedDict()
_cache_limit = _DEFAULT_PROGRAM_CACHE_LIMIT
_hits = 0
_misses = 0


def get_program(n: int) -> StageProgram:
    """The (cached) compiled stage program for an ``n``-point transform."""

    global _hits, _misses
    key = int(n)
    with _cache_lock:
        cached = _programs.get(key)
        if cached is not None:
            _hits += 1
            _programs.move_to_end(key)
            return cached
    created = StageProgram(key)  # compile outside the lock
    with _cache_lock:
        existing = _programs.get(key)
        if existing is not None:
            _hits += 1
            _programs.move_to_end(key)
            return existing
        _misses += 1
        _programs[key] = created
        while len(_programs) > _cache_limit:
            _programs.popitem(last=False)
        return created


def program_cache_info() -> ProgramCacheInfo:
    """Hit/miss/size statistics of the program cache."""

    with _cache_lock:
        return ProgramCacheInfo(_hits, _misses, len(_programs), _cache_limit)


def clear_program_cache() -> None:
    """Drop all compiled programs and reset the statistics."""

    global _hits, _misses
    with _cache_lock:
        _programs.clear()
        _hits = 0
        _misses = 0


# ----------------------------------------------------------------------
# module-level transforms (the compiled counterparts of mixed_radix.*)
# ----------------------------------------------------------------------

def fft(x: np.ndarray) -> np.ndarray:
    """Forward DFT along the last axis via the compiled stage program."""

    x = np.asarray(x, dtype=np.complex128)
    if x.ndim == 0:
        raise ValueError("input must have at least one dimension")
    if x.shape[-1] == 0:
        raise ValueError("transform length must be positive")
    return get_program(x.shape[-1]).execute(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT along the last axis (normalised by ``1/n``).

    Uses the conjugation identity ``ifft(x) = conj(fft(conj(x))) / n`` so the
    forward program serves both directions (matching the recursive engine).
    """

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    return np.conj(fft(np.conj(x))) / n


def fft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Forward DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    if axis == -1 or axis == x.ndim - 1:
        return fft(x)
    moved = np.moveaxis(x, axis, -1)
    return np.moveaxis(fft(moved), -1, axis)


def ifft_along_axis(x: np.ndarray, axis: int) -> np.ndarray:
    """Inverse DFT along an arbitrary axis."""

    x = np.asarray(x, dtype=np.complex128)
    if axis == -1 or axis == x.ndim - 1:
        return ifft(x)
    moved = np.moveaxis(x, axis, -1)
    return np.moveaxis(ifft(moved), -1, axis)

"""Integer factorization helpers used by the planner.

FFTW factors a transform size into a sequence of radices; the choice of
radices determines the plan tree.  The helpers here provide prime
factorizations, "FFT-friendly" factor orderings (large radices first so the
recursion stays shallow), and the balanced two-factor split used by the
highest decomposition level that the ABFT scheme protects.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.utils.validation import ensure_positive_int

__all__ = [
    "prime_factors",
    "factor_pairs",
    "balanced_split",
    "largest_prime_factor",
    "is_prime",
    "smallest_prime_factor",
    "radix_schedule",
]


@lru_cache(maxsize=4096)
def smallest_prime_factor(n: int) -> int:
    """Return the smallest prime factor of ``n`` (``n`` itself when prime)."""

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return 1
    if n % 2 == 0:
        return 2
    if n % 3 == 0:
        return 3
    i = 5
    while i * i <= n:
        if n % i == 0:
            return i
        if n % (i + 2) == 0:
            return i + 2
        i += 6
    return n


def is_prime(n: int) -> bool:
    """Return ``True`` when ``n`` is prime."""

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return False
    return smallest_prime_factor(n) == n


@lru_cache(maxsize=4096)
def prime_factors(n: int) -> Tuple[int, ...]:
    """Return the prime factorization of ``n`` as a non-decreasing tuple."""

    n = ensure_positive_int(n, name="n")
    factors: List[int] = []
    value = n
    while value > 1:
        p = smallest_prime_factor(value)
        factors.append(p)
        value //= p
    return tuple(factors)


def largest_prime_factor(n: int) -> int:
    """Return the largest prime factor of ``n`` (1 for ``n == 1``)."""

    factors = prime_factors(n)
    return factors[-1] if factors else 1


def factor_pairs(n: int) -> List[Tuple[int, int]]:
    """Return all ordered factor pairs ``(a, b)`` with ``a * b == n, a <= b``."""

    n = ensure_positive_int(n, name="n")
    pairs: List[Tuple[int, int]] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            pairs.append((d, n // d))
        d += 1
    return pairs


def balanced_split(n: int) -> Tuple[int, int]:
    """Split ``n = m * k`` with ``m >= k`` and both as close to sqrt(n) as possible.

    This is the highest-level decomposition used by
    :class:`repro.fftlib.two_layer.TwoLayerDecomposition`; the paper relies on
    both factors being Theta(sqrt(N)) so a single recomputation after a fault
    costs only O(sqrt(N) log sqrt(N)).
    """

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return 1, 1
    pairs = factor_pairs(n)
    k, m = pairs[-1]
    if m < k:
        m, k = k, m
    return m, k


def radix_schedule(n: int, *, prefer_large: bool = True) -> Tuple[int, ...]:
    """Return a radix schedule whose product is ``n``.

    The mixed-radix engine peels radices in this order.  ``prefer_large``
    groups repeated small primes into composite radices (4, 8, 9, 16, 25, ...)
    up to 16 so the recursion depth, and hence Python-level overhead, stays
    low; this mirrors FFTW's preference for larger codelets.
    """

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return (1,)
    factors = list(prime_factors(n))
    if not prefer_large:
        return tuple(factors)

    schedule: List[int] = []
    i = 0
    while i < len(factors):
        p = factors[i]
        run = 1
        while i + run < len(factors) and factors[i + run] == p:
            run += 1
        remaining = run
        # Greedily combine identical primes into the largest power <= 16.
        max_power = 1
        while p ** (max_power + 1) <= 16:
            max_power += 1
        while remaining > 0:
            take = min(max_power, remaining)
            schedule.append(p ** take)
            remaining -= take
        i += run
    schedule.sort(reverse=True)
    return tuple(schedule)

"""A from-scratch, plan-based FFT library (the repository's FFTW stand-in).

The SC'17 paper instruments FFTW, whose execution of a large transform is a
tree of plans: the highest level splits an ``N``-point problem into ``k``
``m``-point sub-transforms, a twiddle-factor multiplication, and ``m``
``k``-point sub-transforms.  The online ABFT scheme attaches checksums to the
boundaries of exactly those stages.  This package provides the same
structure:

``backends``
    The sub-FFT kernel registry: the internal engine below vs.
    ``numpy.fft`` (pocketfft) vs. anything registered by the user, selected
    uniformly by schemes, benchmarks, and the CLI.
``dft``
    Reference O(N^2) discrete Fourier transforms used for validation and as
    the base-case "codelet" for small prime sizes.
``codelets``
    Hand-written butterflies for tiny sizes (1-8, 16), batched over leading
    axes, mirroring FFTW codelets.
``mixed_radix``
    A recursive decimation-in-time Cooley-Tukey engine for arbitrary sizes,
    vectorised over a batch axis (kept as the reference/seed-style path).
``executor``
    The compiled execution path: sizes are lowered once into iterative
    stage programs (precomputed twiddle tables, base kernels, rank-``r``
    combines) executed over ping-pong work buffers - this is what plans and
    the ``fftlib`` backend actually run.
``bluestein``
    Chirp-z transform for large prime sizes.
``plan`` / ``planner``
    Plan objects with precomputed twiddle factors and a small planner that
    picks a strategy per size (mirroring FFTW's estimate mode).
``two_layer``
    The explicit highest-level ``N = m * k`` decomposition with stage-level
    entry points (per-sub-FFT execution, twiddle stage) used by the ABFT
    schemes in :mod:`repro.core`.
``three_layer``
    The ``N = r * k^2`` decomposition used by in-place plans in the parallel
    scheme (Fig. 5 of the paper).
``real``
    Real-input forward/backward transforms built on the complex engine.
"""

from repro.fftlib.backends import (
    FFTBackend,
    FFTLibBackend,
    NumpyFFTBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
)
from repro.fftlib.dft import direct_dft, direct_idft, dft_matrix
from repro.fftlib.twiddle import TwiddleCache, twiddle_factors, omega
from repro.fftlib.codelets import SUPPORTED_CODELET_SIZES, apply_codelet, has_codelet
from repro.fftlib.mixed_radix import (
    fft as mixed_radix_fft,
    ifft as mixed_radix_ifft,
    fft_along_axis,
)
from repro.fftlib.executor import (
    StageProgram,
    StockhamStageProgram,
    compile_program,
    get_program,
    get_stockham_program,
    stockham_supported,
    program_cache_info,
    clear_program_cache,
)
from repro.fftlib.bluestein import bluestein_fft
from repro.fftlib.plan import Plan, PlanDirection
from repro.fftlib.planner import Planner, PlannerPolicy, plan_fft, get_default_planner
from repro.fftlib.two_layer import TwoLayerDecomposition, TwoLayerPlan
from repro.fftlib.three_layer import ThreeLayerPlan
from repro.fftlib.inplace import InPlaceTwoLayerPlan
from repro.fftlib.real import rfft, irfft

__all__ = [
    "FFTBackend",
    "FFTLibBackend",
    "NumpyFFTBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "set_default_backend",
    "direct_dft",
    "direct_idft",
    "dft_matrix",
    "TwiddleCache",
    "twiddle_factors",
    "omega",
    "SUPPORTED_CODELET_SIZES",
    "apply_codelet",
    "has_codelet",
    "mixed_radix_fft",
    "mixed_radix_ifft",
    "fft_along_axis",
    "StageProgram",
    "StockhamStageProgram",
    "compile_program",
    "get_program",
    "get_stockham_program",
    "stockham_supported",
    "program_cache_info",
    "clear_program_cache",
    "bluestein_fft",
    "Plan",
    "PlanDirection",
    "Planner",
    "PlannerPolicy",
    "plan_fft",
    "get_default_planner",
    "TwoLayerDecomposition",
    "TwoLayerPlan",
    "ThreeLayerPlan",
    "InPlaceTwoLayerPlan",
    "rfft",
    "irfft",
]

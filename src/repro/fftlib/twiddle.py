"""Twiddle-factor computation and caching.

The paper's convention (Section 2.1) is :math:`\\omega_N = e^{-2\\pi i / N}`,
i.e. the *forward* transform uses negative exponents.  Twiddle tables are the
single largest trigonometric cost of a software FFT, so the cache here is
shared by every plan in the process; FFTW amortizes the same cost through its
plan/wisdom machinery.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import NamedTuple, Tuple

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = [
    "omega",
    "twiddle_factors",
    "half_twiddle_factors",
    "stage_twiddles",
    "TwiddleCache",
    "TwiddleCacheInfo",
    "get_global_cache",
]


class TwiddleCacheInfo(NamedTuple):
    """Hit/miss/size statistics of a :class:`TwiddleCache`."""

    hits: int
    misses: int
    size: int
    limit: int


def omega(n: int, *, inverse: bool = False) -> complex:
    """Return the principal ``n``-th root of unity used by the transform."""

    n = ensure_positive_int(n, name="n")
    sign = 1.0 if inverse else -1.0
    return complex(np.exp(sign * 2j * np.pi / n))


def twiddle_factors(n: int, *, inverse: bool = False) -> np.ndarray:
    """Return the vector ``[omega_n^0, omega_n^1, ..., omega_n^{n-1}]``."""

    n = ensure_positive_int(n, name="n")
    sign = 1.0 if inverse else -1.0
    return np.exp(sign * 2j * np.pi * np.arange(n) / n)


def half_twiddle_factors(n: int, *, inverse: bool = False) -> np.ndarray:
    """The first half of the ``n``-th roots, ``[omega_n^0, ..., omega_n^{n//2-1}]``.

    This is the per-stage layout of the in-place Stockham combine
    (:class:`repro.fftlib.executor.StockhamStageProgram`): the final
    radix-2 autosort butterfly pairs ``X[k]``/``X[k+n/2]`` and only ever
    multiplies by the lower half of the root table, so caching the half
    vector keeps the in-place path's table footprint at ``n/2`` as well.
    """

    n = ensure_positive_int(n, name="n")
    sign = 1.0 if inverse else -1.0
    return np.exp(sign * 2j * np.pi * np.arange(n // 2) / n)


def stage_twiddles(m: int, k: int, *, inverse: bool = False) -> np.ndarray:
    """Return the ``(m, k)`` twiddle matrix ``W[j2, n1] = omega_{m k}^{n1 j2}``.

    This is the factor applied between the two layers of the ``N = m * k``
    Cooley-Tukey decomposition (Equation 2 of the paper): the output of the
    inner ``m``-point transforms, indexed by output frequency ``j2`` and inner
    transform index ``n1``, is multiplied elementwise by ``W`` before the
    outer ``k``-point transforms.
    """

    m = ensure_positive_int(m, name="m")
    k = ensure_positive_int(k, name="k")
    n = m * k
    sign = 1.0 if inverse else -1.0
    j2 = np.arange(m).reshape(m, 1)
    n1 = np.arange(k).reshape(1, k)
    return np.exp(sign * 2j * np.pi * (j2 * n1) / n)


class TwiddleCache:
    """Thread-safe, size-bounded LRU cache of twiddle tables.

    Keys are ``(kind, parameters, inverse)`` tuples.  The cache is bounded by
    entry count rather than bytes and evicts least-recently-used entries
    (the same policy as the plan cache, so a long-running campaign that
    cycles through many sizes keeps its hot tables); hit/miss counters are
    exposed through :meth:`cache_info` for tests and diagnostics.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._store: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _get(self, key: Tuple, builder) -> np.ndarray:
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                self._store.move_to_end(key)
                return cached
            self.misses += 1
        value = builder()  # build outside the lock; first insert wins a race
        with self._lock:
            existing = self._store.get(key)
            if existing is not None:
                self._store.move_to_end(key)
                return existing
            self._store[key] = value
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return value

    def cache_info(self) -> TwiddleCacheInfo:
        """Hit/miss/size statistics (thread-safe snapshot)."""

        with self._lock:
            return TwiddleCacheInfo(
                hits=self.hits,
                misses=self.misses,
                size=len(self._store),
                limit=self.max_entries,
            )

    def vector(self, n: int, *, inverse: bool = False) -> np.ndarray:
        key = ("vector", int(n), bool(inverse))
        return self._get(key, lambda: twiddle_factors(n, inverse=inverse))

    def half_vector(self, n: int, *, inverse: bool = False) -> np.ndarray:
        key = ("halfvec", int(n), bool(inverse))
        return self._get(key, lambda: half_twiddle_factors(n, inverse=inverse))

    def stage(self, m: int, k: int, *, inverse: bool = False) -> np.ndarray:
        key = ("stage", int(m), int(k), bool(inverse))
        return self._get(key, lambda: stage_twiddles(m, k, inverse=inverse))

    def dft_matrix(self, n: int, *, inverse: bool = False) -> np.ndarray:
        from repro.fftlib.dft import dft_matrix as _dft_matrix

        key = ("matrix", int(n), bool(inverse))
        return self._get(key, lambda: _dft_matrix(n, inverse=inverse))

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


_GLOBAL_CACHE = TwiddleCache()


def get_global_cache() -> TwiddleCache:
    """Return the process-wide twiddle cache shared by all plans."""

    return _GLOBAL_CACHE

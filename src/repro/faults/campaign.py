"""Randomized fault-injection campaigns.

A campaign repeats the same protected computation many times, each time with
a freshly armed injector, and aggregates what happened: was the fault
detected, was it corrected, and how large is the remaining relative error of
the output.  This is the machinery behind Table 6 (coverage distribution
over 1000 runs) and the fault rows of Tables 1-3.

The campaign is deliberately scheme-agnostic: it drives two callables
(``make_input`` and ``run_trial``) so it can wrap any of the sequential or
parallel schemes without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSpec
from repro.utils.rng import default_rng

__all__ = ["TrialOutcome", "CampaignResult", "CoverageCampaign", "relative_inf_error"]


def relative_inf_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """The paper's error metric ``||x' - x||_inf / ||x||_inf`` (Section 9.4.3)."""

    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    denom = np.max(np.abs(reference))
    if denom == 0:
        return float(np.max(np.abs(candidate - reference)))
    return float(np.max(np.abs(candidate - reference)) / denom)


@dataclass(frozen=True)
class TrialOutcome:
    """Outcome of one injected trial."""

    trial: int
    injected: int
    detected: bool
    corrected: bool
    uncorrected: bool
    relative_error: float

    @property
    def silent_corruption(self) -> bool:
        """A fault fired but nothing was detected."""

        return self.injected > 0 and not self.detected


@dataclass
class CampaignResult:
    """Aggregated statistics over all trials of a campaign."""

    outcomes: List[TrialOutcome] = field(default_factory=list)

    def add(self, outcome: TrialOutcome) -> None:
        self.outcomes.append(outcome)

    # ------------------------------------------------------------------
    @property
    def trials(self) -> int:
        return len(self.outcomes)

    @property
    def detection_rate(self) -> float:
        injected = [o for o in self.outcomes if o.injected]
        if not injected:
            return 1.0
        return sum(o.detected for o in injected) / len(injected)

    @property
    def correction_rate(self) -> float:
        injected = [o for o in self.outcomes if o.injected]
        if not injected:
            return 1.0
        return sum(o.corrected for o in injected) / len(injected)

    @property
    def uncorrected_fraction(self) -> float:
        """Fraction of trials whose correction failed outright (Table 6 col. 2)."""

        if not self.outcomes:
            return 0.0
        return sum(o.uncorrected for o in self.outcomes) / len(self.outcomes)

    def fraction_with_error_above(self, bound: float) -> float:
        """Fraction of trials with relative output error above ``bound``.

        Uncorrected trials count as infinite error, mirroring the paper.
        """

        if not self.outcomes:
            return 0.0
        count = 0
        for o in self.outcomes:
            err = float("inf") if o.uncorrected else o.relative_error
            if err > bound:
                count += 1
        return count / len(self.outcomes)

    def coverage_at(self, bound: float) -> float:
        """Fault coverage when ``bound`` is the acceptable output error."""

        return 1.0 - self.fraction_with_error_above(bound)

    def error_distribution(self, bounds: Sequence[float]) -> Dict[float, float]:
        """Map each bound to the fraction of trials exceeding it (Table 6 row)."""

        return {b: self.fraction_with_error_above(b) for b in bounds}

    def summary(self) -> Dict[str, float]:
        return {
            "trials": float(self.trials),
            "detection_rate": self.detection_rate,
            "correction_rate": self.correction_rate,
            "uncorrected_fraction": self.uncorrected_fraction,
        }


class CoverageCampaign:
    """Drive many injected trials of a protected computation.

    Parameters
    ----------
    make_input:
        ``make_input(trial, rng) -> ndarray`` producing the input vector.
    run_trial:
        ``run_trial(x, injector) -> (output, detected, corrected, uncorrected)``.
        The boolean triple describes what the scheme reported; ``output`` is
        the (possibly still corrupted) result.
    reference:
        ``reference(x) -> ndarray`` computing the fault-free ground truth.
    make_faults:
        ``make_faults(trial, rng) -> list[FaultSpec]`` describing the faults
        to arm for this trial (may be empty for fault-free control trials).
    seed:
        Seed of the campaign-level RNG (inputs, fault placement).
    """

    def __init__(
        self,
        *,
        make_input: Callable[[int, np.random.Generator], np.ndarray],
        run_trial: Callable[[np.ndarray, FaultInjector], tuple],
        reference: Callable[[np.ndarray], np.ndarray],
        make_faults: Callable[[int, np.random.Generator], List[FaultSpec]],
        seed: Optional[int] = None,
    ) -> None:
        self.make_input = make_input
        self.run_trial = run_trial
        self.reference = reference
        self.make_faults = make_faults
        self.seed = seed

    def run(self, trials: int) -> CampaignResult:
        """Run ``trials`` independent injected trials and aggregate them."""

        if trials <= 0:
            raise ValueError("trials must be positive")
        rng = default_rng(self.seed)
        result = CampaignResult()
        for trial in range(trials):
            # Preserve real-valued inputs (rfft campaigns); complexify the
            # rest so legacy trial callables keep their exact dtype.
            x = np.asarray(self.make_input(trial, rng))
            x = x.astype(np.float64 if not np.iscomplexobj(x) else np.complex128)
            specs = self.make_faults(trial, rng)
            injector = FaultInjector(specs=list(specs), rng=rng)
            expected = self.reference(x.copy())
            output, detected, corrected, uncorrected = self.run_trial(x.copy(), injector)
            rel_err = relative_inf_error(expected, np.asarray(output))
            result.add(
                TrialOutcome(
                    trial=trial,
                    injected=injector.fired_count,
                    detected=bool(detected),
                    corrected=bool(corrected),
                    uncorrected=bool(uncorrected),
                    relative_error=rel_err,
                )
            )
        return result

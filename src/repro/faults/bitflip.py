"""IEEE-754 bit manipulation for memory-fault injection.

Table 6 of the paper injects *single bit flips* into the input or output
array of a 2^25-point FFT and only considers flips of "higher" bits because
low-mantissa flips are numerically masked.  These helpers flip a chosen bit
of a ``float64`` (or of one component of a ``complex128``) by reinterpreting
the value as a 64-bit integer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["flip_bit_in_float", "flip_bit_in_complex", "random_high_bit", "HIGH_BIT_RANGE"]

#: Bits considered "high" for the purposes of Table 6: the sign bit, the 11
#: exponent bits and the top mantissa bits (positions 40-63 of the little
#: endian representation).  Flipping below this range changes the value by a
#: relative amount smaller than ~1e-6, which the paper observes is usually
#: masked by round-off.
HIGH_BIT_RANGE = (40, 64)


def flip_bit_in_float(value: float, bit: int) -> float:
    """Return ``value`` with bit ``bit`` (0 = LSB, 63 = sign) flipped."""

    if not 0 <= int(bit) < 64:
        raise ValueError(f"bit must be in [0, 64), got {bit}")
    as_int = np.float64(value).view(np.uint64)
    flipped = np.uint64(as_int ^ np.uint64(1) << np.uint64(int(bit)))
    return float(flipped.view(np.float64))


def flip_bit_in_complex(value: complex, bit: int, *, imaginary: bool = False) -> complex:
    """Flip one bit of the real (or imaginary) component of a complex number."""

    real, imag = float(np.real(value)), float(np.imag(value))
    if imaginary:
        imag = flip_bit_in_float(imag, bit)
    else:
        real = flip_bit_in_float(real, bit)
    return complex(real, imag)


def random_high_bit(
    rng: np.random.Generator, *, low: Optional[int] = None, high: Optional[int] = None
) -> int:
    """Draw a random bit position from the "high bit" range used by Table 6."""

    lo = HIGH_BIT_RANGE[0] if low is None else int(low)
    hi = HIGH_BIT_RANGE[1] if high is None else int(high)
    if not 0 <= lo < hi <= 64:
        raise ValueError(f"invalid bit range [{lo}, {hi})")
    return int(rng.integers(lo, hi))

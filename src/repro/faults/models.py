"""Fault model definitions.

A :class:`FaultSpec` describes *what* to corrupt and *where*; it is armed
inside a :class:`repro.faults.injector.FaultInjector` and fires when the
protected computation visits the matching site.  A fired spec produces a
:class:`FaultEvent` record so campaigns can correlate injected faults with
detection/correction outcomes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["FaultKind", "FaultSite", "FaultSpec", "FaultEvent"]


class FaultKind(enum.Enum):
    """The corruption applied to the targeted element."""

    #: Add a constant to the element (the paper's computational-fault model).
    ADD_CONSTANT = "add-constant"
    #: Overwrite the element with a constant (the paper's memory-fault model).
    SET_CONSTANT = "set-constant"
    #: Flip one bit of the IEEE-754 representation (Table 6 methodology).
    BIT_FLIP = "bit-flip"


class FaultSite(enum.Enum):
    """Named locations in the protected FFT where faults can strike.

    The sequential schemes visit the ``STAGE1_*`` / ``TWIDDLE`` / ``STAGE2_*``
    / array sites; the parallel scheme additionally visits the communication
    and per-rank sites.  The ``index`` of a :class:`FaultSpec` selects the
    sub-FFT (or rank, or block) at that site.
    """

    # data-at-rest sites (memory faults)
    INPUT = "input"
    STAGE1_INPUT = "stage1-input"
    INTERMEDIATE = "intermediate"
    STAGE2_INPUT = "stage2-input"
    OUTPUT = "output"

    # computation sites (computational faults strike the produced values)
    STAGE1_COMPUTE = "stage1-compute"
    TWIDDLE_COMPUTE = "twiddle-compute"
    STAGE2_COMPUTE = "stage2-compute"
    CHECKSUM_COMPUTE = "checksum-compute"

    # parallel-only sites
    COMM_BLOCK = "comm-block"
    RANK_LOCAL_FFT = "rank-local-fft"
    RANK_LOCAL_MEMORY = "rank-local-memory"


#: Sites whose corruption models a *computational* error (strikes freshly
#: produced values); everything else models a memory error.
COMPUTE_SITES = frozenset(
    {
        FaultSite.STAGE1_COMPUTE,
        FaultSite.TWIDDLE_COMPUTE,
        FaultSite.STAGE2_COMPUTE,
        FaultSite.CHECKSUM_COMPUTE,
        FaultSite.RANK_LOCAL_FFT,
    }
)


@dataclass
class FaultSpec:
    """Description of a single fault to inject.

    Parameters
    ----------
    site:
        Where the fault strikes (see :class:`FaultSite`).
    index:
        Which sub-FFT / rank / block at that site; ``None`` matches the first
        visit to the site regardless of index.
    element:
        Offset of the corrupted element within the visited array; ``None``
        selects a random element using the injector's RNG.
    kind:
        Corruption model.
    magnitude:
        Constant used by ``ADD_CONSTANT`` / ``SET_CONSTANT``.
    bit:
        Bit position (0-63 over the float64 representation) used by
        ``BIT_FLIP``; ``None`` selects a random high (exponent/high-mantissa)
        bit, matching the paper's observation that low-bit flips are usually
        masked.
    imaginary:
        Corrupt the imaginary part instead of the real part.
    rank:
        Restrict the fault to one simulated rank (parallel campaigns).
    fire_once:
        When ``True`` (default) the spec disarms after firing, so recovery
        re-executions are not corrupted again.  Persistent faults (``False``)
        model a sticky hardware defect.
    """

    site: FaultSite
    index: Optional[int] = None
    element: Optional[int] = None
    kind: FaultKind = FaultKind.ADD_CONSTANT
    magnitude: float = 1.0
    bit: Optional[int] = None
    imaginary: bool = False
    rank: Optional[int] = None
    fire_once: bool = True
    fired: int = field(default=0, compare=False)

    @property
    def is_computational(self) -> bool:
        """Whether this spec models a computational (logic-unit) error."""

        return self.site in COMPUTE_SITES

    def matches(self, site: FaultSite, index: Optional[int], rank: Optional[int]) -> bool:
        """Return ``True`` when this (still armed) spec applies to a visit."""

        if self.fire_once and self.fired:
            return False
        if site is not self.site:
            return False
        if self.index is not None and index is not None and int(self.index) != int(index):
            return False
        if self.rank is not None and rank is not None and int(self.rank) != int(rank):
            return False
        return True


@dataclass(frozen=True)
class FaultEvent:
    """Record of a fault that actually fired."""

    site: FaultSite
    index: Optional[int]
    element: int
    kind: FaultKind
    rank: Optional[int]
    original_value: complex
    corrupted_value: complex

    @property
    def delta(self) -> complex:
        """The value change caused by the fault."""

        return self.corrupted_value - self.original_value

"""The site-based fault injector.

Protected schemes call :meth:`FaultInjector.visit` at well-defined points of
their execution ("sites"), handing over the live array for that site.  The
injector checks its armed :class:`~repro.faults.models.FaultSpec` list and,
on a match, corrupts one element *in place* and records a
:class:`~repro.faults.models.FaultEvent`.

Keeping injection outside the schemes (rather than corrupting inputs up
front) is what lets the campaigns target the paper's specific scenarios:
"an error strikes the input of the second FFT" (Table 5, e2), "a
computational error strikes one m-point FFT" (Table 1, 1c), "two memory
faults on different processors" (Tables 2-3), and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.faults.bitflip import flip_bit_in_complex, random_high_bit
from repro.faults.models import FaultEvent, FaultKind, FaultSite, FaultSpec
from repro.utils.rng import default_rng

__all__ = ["FaultInjector", "NullInjector"]


class NullInjector:
    """Injector that never fires; used for fault-free runs.

    Schemes accept ``injector=None`` and substitute this object so the hot
    path does not need ``if injector is not None`` checks everywhere.
    ``is_live`` is ``False``: schemes may skip per-site visit loops and use
    their plan-time constants directly, because no fault can strike.
    """

    #: no faults can ever fire through this injector
    is_live = False

    events: List[FaultEvent] = []

    def visit(
        self,
        site: FaultSite,
        array: np.ndarray,
        *,
        index: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> bool:
        return False

    @property
    def fired_count(self) -> int:
        return 0

    def reset(self) -> None:  # pragma: no cover - trivial
        pass


@dataclass
class FaultInjector:
    """Armed with a list of fault specs; corrupts visited arrays in place."""

    #: a live injector: schemes must expose every fault site (visit loops,
    #: DMR-recomputed checksum vectors) exactly as the paper's algorithms do
    is_live = True

    specs: List[FaultSpec] = field(default_factory=list)
    rng: Optional[np.random.Generator] = None
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = default_rng()
        self.specs = list(self.specs)

    # ------------------------------------------------------------------
    # arming helpers
    # ------------------------------------------------------------------
    def arm(self, spec: FaultSpec) -> "FaultInjector":
        """Add a spec (chainable)."""

        self.specs.append(spec)
        return self

    def arm_computational(
        self,
        site: FaultSite = FaultSite.STAGE1_COMPUTE,
        *,
        index: Optional[int] = None,
        element: Optional[int] = None,
        magnitude: float = 1.0,
        rank: Optional[int] = None,
    ) -> "FaultInjector":
        """Arm the paper's computational-fault model (add a constant)."""

        return self.arm(
            FaultSpec(
                site=site,
                index=index,
                element=element,
                kind=FaultKind.ADD_CONSTANT,
                magnitude=magnitude,
                rank=rank,
            )
        )

    def arm_memory(
        self,
        site: FaultSite = FaultSite.INTERMEDIATE,
        *,
        index: Optional[int] = None,
        element: Optional[int] = None,
        magnitude: float = 1.0,
        rank: Optional[int] = None,
    ) -> "FaultInjector":
        """Arm the paper's memory-fault model (overwrite with a constant)."""

        return self.arm(
            FaultSpec(
                site=site,
                index=index,
                element=element,
                kind=FaultKind.SET_CONSTANT,
                magnitude=magnitude,
                rank=rank,
            )
        )

    def arm_bitflip(
        self,
        site: FaultSite,
        *,
        index: Optional[int] = None,
        element: Optional[int] = None,
        bit: Optional[int] = None,
        imaginary: bool = False,
        rank: Optional[int] = None,
    ) -> "FaultInjector":
        """Arm a single-bit-flip memory fault (Table 6 methodology)."""

        return self.arm(
            FaultSpec(
                site=site,
                index=index,
                element=element,
                kind=FaultKind.BIT_FLIP,
                bit=bit,
                imaginary=imaginary,
                rank=rank,
            )
        )

    # ------------------------------------------------------------------
    # the hook called by protected schemes
    # ------------------------------------------------------------------
    def visit(
        self,
        site: FaultSite,
        array: np.ndarray,
        *,
        index: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> bool:
        """Possibly corrupt ``array`` in place; return ``True`` if a fault fired.

        ``array`` must be a writable ``complex128`` array; the corrupted
        element is chosen by the matching spec (or at random within the
        array when the spec does not pin one down).
        """

        fired_any = False
        for spec in self.specs:
            if not spec.matches(site, index, rank):
                continue
            self._apply(spec, array, site, index, rank)
            fired_any = True
        return fired_any

    # ------------------------------------------------------------------
    def _apply(
        self,
        spec: FaultSpec,
        array: np.ndarray,
        site: FaultSite,
        index: Optional[int],
        rank: Optional[int],
    ) -> None:
        if array.size == 0:  # pragma: no cover - defensive
            return
        if spec.element is None:
            element = int(self.rng.integers(0, array.size))
        else:
            element = int(spec.element) % array.size
        # Index through the original (possibly non-contiguous view) so the
        # corruption lands in the caller's memory; flattening would silently
        # copy strided views and the "fault" would never be observed.
        location = np.unravel_index(element, array.shape)
        original = complex(array[location])

        # Real-valued layouts (rfft inputs / irfft outputs) store a single
        # component per element; bit flips target that component and the
        # corrupted value is stored without an imaginary part.
        is_real_array = np.isrealobj(array)
        if spec.kind is FaultKind.ADD_CONSTANT:
            corrupted = original + complex(spec.magnitude)
        elif spec.kind is FaultKind.SET_CONSTANT:
            corrupted = complex(spec.magnitude)
        elif spec.kind is FaultKind.BIT_FLIP:
            bit = spec.bit if spec.bit is not None else random_high_bit(self.rng)
            imaginary = spec.imaginary and not is_real_array
            corrupted = flip_bit_in_complex(original, bit, imaginary=imaginary)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown fault kind {spec.kind}")

        array[location] = corrupted.real if is_real_array else corrupted
        spec.fired += 1
        self.events.append(
            FaultEvent(
                site=site,
                index=index,
                element=element,
                kind=spec.kind,
                rank=rank,
                original_value=original,
                corrupted_value=corrupted,
            )
        )

    # ------------------------------------------------------------------
    @property
    def fired_count(self) -> int:
        """Total number of faults that have fired."""

        return len(self.events)

    def reset(self) -> None:
        """Re-arm all specs and clear the event log."""

        for spec in self.specs:
            spec.fired = 0
        self.events.clear()

    @classmethod
    def from_specs(cls, specs: Sequence[FaultSpec], *, seed: Optional[int] = None) -> "FaultInjector":
        return cls(specs=list(specs), rng=default_rng(seed))

"""Fault models and injection machinery.

The paper evaluates its schemes by *injecting* soft errors (Sections 9.2.2,
9.3.2, 9.4.2 and 9.4.3):

* **computational faults** - an element of a sub-FFT's freshly computed
  output is perturbed (the paper adds a constant), modelling a transient
  error in a logic unit;
* **memory faults** - an element of a live data array (input, intermediate
  or output) is overwritten or has a single bit flipped, modelling an
  uncorrected memory upset.

This package provides those fault models, a site-based injector that the
ABFT schemes consult at well-defined points of their execution, and campaign
drivers that run many randomized trials and aggregate detection/correction
statistics (used by Tables 1-3, 5 and 6).
"""

from repro.faults.models import FaultKind, FaultSite, FaultSpec, FaultEvent
from repro.faults.bitflip import flip_bit_in_float, flip_bit_in_complex, random_high_bit
from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.campaign import CampaignResult, CoverageCampaign, TrialOutcome

__all__ = [
    "FaultKind",
    "FaultSite",
    "FaultSpec",
    "FaultEvent",
    "flip_bit_in_float",
    "flip_bit_in_complex",
    "random_high_bit",
    "FaultInjector",
    "NullInjector",
    "CampaignResult",
    "CoverageCampaign",
    "TrialOutcome",
]

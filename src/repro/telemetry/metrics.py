"""The metrics registry: sharded counters, gauges, and cache-surface collectors.

One process-wide :class:`Registry` aggregates everything the library already
counts - the plan LRU, the program LRU, the twiddle cache, the worker pool,
the native kernel cache - plus the ABFT activity counters fed by
:class:`repro.core.detection.FTReport` and the planner/runtime fallback
counters, and renders the merged view as a plain dict, JSON, or Prometheus
text exposition format.

Concurrency design
------------------
Counters are **per-thread sharded**: each thread increments its own plain
dict (registered once under the registry lock, then touched lock-free), and
readers merge all shards on demand.  Chunk-parallel ``execute_many`` workers
therefore never contend on a counter, and an increment costs one dict
operation.  Merging tolerates concurrent increments by retrying the shard
snapshot; counts are monotone, so a retried snapshot is always consistent.

Gauges and collectors are read-mostly and sit behind the registry lock.
Collectors are zero-argument callables returning a mapping (registered
lazily so this module never imports the subsystems it observes - no import
cycles); their results appear under ``snapshot()["caches"]``.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Registry",
    "registry",
    "inc",
    "set_gauge",
    "register_collector",
    "unregister_collector",
    "counters",
    "collector_names",
    "snapshot",
    "render_prometheus",
    "prometheus_exposition",
    "reset",
]

#: a counter key: (name, ((label, value), ...)) with labels sorted
CounterKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _shard_snapshot(shard: Dict[CounterKey, int]) -> Dict[CounterKey, int]:
    """Copy one thread's shard, tolerating concurrent inserts."""

    for _ in range(8):
        try:
            return dict(shard)
        except RuntimeError:  # resized mid-copy by its owning thread
            continue
    return dict(shard)  # last attempt propagates if the race persists


class Registry:
    """A process-wide registry of counters, gauges, and info-surface collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: List[Dict[CounterKey, int]] = []
        self._gauges: Dict[str, float] = {}
        self._collectors: Dict[str, Callable[[], Mapping[str, Any]]] = {}

    # -- counters ------------------------------------------------------
    def _shard(self) -> Dict[CounterKey, int]:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = {}
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    def inc(self, name: str, amount: int = 1, **labels: str) -> None:
        """Add ``amount`` to the monotone counter ``name`` (with ``labels``).

        Lock-free after a thread's first increment: each thread owns a
        private shard merged on read.
        """

        if labels:
            key: CounterKey = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        else:
            key = (name, ())
        shard = self._shard()
        shard[key] = shard.get(key, 0) + amount

    def counters(self) -> Dict[CounterKey, int]:
        """All counters merged across every thread's shard."""

        with self._lock:
            shards = list(self._shards)
        merged: Dict[CounterKey, int] = {}
        for shard in shards:
            for key, value in _shard_snapshot(shard).items():
                merged[key] = merged.get(key, 0) + value
        return merged

    # -- gauges --------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge ``name`` to ``value``."""

        with self._lock:
            self._gauges[name] = float(value)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    # -- collectors ----------------------------------------------------
    def register_collector(self, name: str, fn: Callable[[], Mapping[str, Any]]) -> None:
        """Register a zero-argument info-surface collector (e.g. a cache_info).

        Re-registering a name replaces the collector; results appear under
        ``snapshot()["caches"][name]``.
        """

        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(
        self, name: str, fn: Optional[Callable[[], Mapping[str, Any]]] = None
    ) -> None:
        """Remove a collector so a retired surface stops rendering.

        With ``fn`` given, the name is only removed while it still maps to
        that collector - a component shutting down after something else
        re-registered the name (two in-process servers in one test run)
        must not tear down its successor's surface.
        """

        with self._lock:
            if fn is None or self._collectors.get(name) == fn:
                self._collectors.pop(name, None)

    def collector_names(self) -> List[str]:
        """Names of the registered info-surface collectors (sorted)."""

        with self._lock:
            return sorted(self._collectors)

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """Run every collector; a failing collector reports its error inline."""

        with self._lock:
            collectors = list(self._collectors.items())
        surfaces: Dict[str, Dict[str, Any]] = {}
        for name, fn in collectors:
            try:
                surfaces[name] = dict(fn())
            except Exception as exc:  # a down surface must not hide the rest
                surfaces[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return surfaces

    # -- export --------------------------------------------------------
    @staticmethod
    def _render_key(key: CounterKey) -> str:
        name, labels = key
        if not labels:
            return name
        rendered = ",".join(f'{k}="{v}"' for k, v in labels)
        return f"{name}{{{rendered}}}"

    def snapshot(self) -> Dict[str, Any]:
        """The merged registry as one plain dict (counters, gauges, caches)."""

        return {
            "counters": {
                self._render_key(key): value
                for key, value in sorted(self.counters().items())
            },
            "gauges": dict(sorted(self.gauges().items())),
            "caches": self.collect(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Counters become ``repro_<name>_total`` counter series; gauges and
        every numeric field of the collected cache surfaces become
        ``repro_<surface>_<field>`` gauges.

        This is the **only** rendering path: ``repro stats --prometheus``
        and the serve daemon's ``/metrics`` endpoint both go through
        :func:`prometheus_exposition`, so the two can never drift.
        """

        lines: List[str] = []
        by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], int]]] = {}
        for (name, labels), value in sorted(self.counters().items()):
            by_name.setdefault(name, []).append((labels, value))
        for name, series in by_name.items():
            metric = f"repro_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            for labels, value in series:
                if labels:
                    rendered = ",".join(
                        f'{_sanitize(k)}="{v}"' for k, v in labels
                    )
                    lines.append(f"{metric}{{{rendered}}} {value}")
                else:
                    lines.append(f"{metric} {value}")
        for name, value in sorted(self.gauges().items()):
            metric = f"repro_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")
        for surface, fields in sorted(self.collect().items()):
            for field, value in sorted(fields.items()):
                if isinstance(value, bool):
                    value = int(value)
                if not isinstance(value, (int, float)):
                    continue
                metric = f"repro_{_sanitize(surface)}_{_sanitize(field)}"
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {value}")
        return "\n".join(lines) + "\n"

    # -- test support --------------------------------------------------
    def reset(self) -> None:
        """Zero every counter and gauge (collectors stay registered)."""

        with self._lock:
            for shard in self._shards:
                shard.clear()
            self._gauges.clear()


_REGISTRY = Registry()


def registry() -> Registry:
    """The process-wide registry instance."""

    return _REGISTRY


def inc(name: str, amount: int = 1, **labels: str) -> None:
    _REGISTRY.inc(name, amount, **labels)


def set_gauge(name: str, value: float) -> None:
    _REGISTRY.set_gauge(name, value)


def register_collector(name: str, fn: Callable[[], Mapping[str, Any]]) -> None:
    _REGISTRY.register_collector(name, fn)


def unregister_collector(
    name: str, fn: Optional[Callable[[], Mapping[str, Any]]] = None
) -> None:
    _REGISTRY.unregister_collector(name, fn)


def counters() -> Dict[CounterKey, int]:
    return _REGISTRY.counters()


def snapshot() -> Dict[str, Any]:
    return _REGISTRY.snapshot()


def render_prometheus() -> str:
    return _REGISTRY.render_prometheus()


def prometheus_exposition() -> bytes:
    """The Prometheus exposition as the exact bytes every consumer serves.

    The CLI writes these bytes to ``stdout.buffer`` and the serve daemon's
    ``/metrics`` endpoint sends them as the response body - one call path,
    byte-identical output (pinned by ``tests/server/test_metrics_parity``).
    """

    return _REGISTRY.render_prometheus().encode("utf-8")


def collector_names() -> List[str]:
    return _REGISTRY.collector_names()


def reset() -> None:
    _REGISTRY.reset()


# ----------------------------------------------------------------------
# default collectors: every existing cache_info()/pool_info() surface.
# Imports happen at *collection* time so observing a subsystem never
# imports it (and never creates an import cycle).
# ----------------------------------------------------------------------

def _collect_plan_cache() -> Mapping[str, Any]:
    from repro.core.ftplan import plan_cache_info

    return plan_cache_info()._asdict()


def _collect_program_cache() -> Mapping[str, Any]:
    from repro.fftlib.executor import program_cache_info

    return program_cache_info()._asdict()


def _collect_twiddle_cache() -> Mapping[str, Any]:
    from repro.fftlib.twiddle import get_global_cache

    return get_global_cache().cache_info()._asdict()


def _collect_pool() -> Mapping[str, Any]:
    from repro.runtime import pool_info

    return pool_info()._asdict()


def _collect_native() -> Mapping[str, Any]:
    from repro.fftlib.native import native_info

    return native_info()


register_collector("plan_cache", _collect_plan_cache)
register_collector("program_cache", _collect_program_cache)
register_collector("twiddle_cache", _collect_twiddle_cache)
register_collector("pool", _collect_pool)
register_collector("native", _collect_native)

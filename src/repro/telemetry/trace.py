"""Structured event trace: a bounded ring buffer with an opt-in JSONL sink.

Every instrumented subsystem emits typed event records here - plan compiles,
program compiles, native compiles/disk hits/failures, threshold violations,
repairs, capability fallbacks, wisdom MEASURE races - so "what happened
during this run" has one answer instead of a debugger session.

Hot-path contract
-----------------
Tracing is **disabled by default** and every call site is written as::

    if _trace.active: _trace.emit("threshold-violation", site=site, ...)

so the disabled path costs exactly one module-attribute check - no
allocation, no lock, no formatting.  :func:`emit` itself may allocate and
lock freely: it only ever runs when the user opted in via
:func:`enable_trace` or the ``REPRO_TRACE`` environment variable.  The
reprolint ``hotpath-alloc`` rule enforces the guard shape at the emit call
sites inside hot functions.

Enabled, events land in a bounded ring (:func:`events` reads it back) and,
when a path was given, as one JSON object per line in an append-mode JSONL
file - the format the telemetry acceptance campaign greps.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_RING_CAPACITY",
    "active",
    "emit",
    "enable_trace",
    "disable_trace",
    "trace_path",
    "events",
    "clear_events",
]

DEFAULT_RING_CAPACITY = 1024

#: The one-attribute-check gate every instrumented call site reads.  Rebound
#: (never mutated in place) by :func:`enable_trace` / :func:`disable_trace`.
active: bool = False

_lock = threading.Lock()
_ring: "deque[Dict[str, Any]]" = deque(maxlen=DEFAULT_RING_CAPACITY)
_sink = None
_sink_path: Optional[str] = None
_seq = 0


def _json_default(value: Any) -> str:
    return str(value)


def emit(kind: str, /, **fields: Any) -> None:
    """Record one event (call sites must gate on :data:`active` first).

    ``kind`` is positional-only so events may carry a ``kind=...`` field of
    their own (the ``fallback`` events do).  ``fields`` should be
    JSON-representable; anything else is stringified.  A broken sink
    (closed file, full disk) never propagates into the transform that
    emitted the event.
    """

    global _seq
    with _lock:
        _seq += 1
        record: Dict[str, Any] = {"seq": _seq, "ts": time.time(), "event": str(kind)}
        record.update(fields)
        _ring.append(record)
        if _sink is not None:
            try:
                _sink.write(json.dumps(record, default=_json_default) + "\n")
                _sink.flush()
            except (OSError, ValueError):
                pass


def enable_trace(
    path: Optional[str] = None, *, ring_capacity: Optional[int] = None
) -> None:
    """Turn event tracing on, optionally mirroring events to a JSONL file.

    ``path`` is opened in append mode (one JSON object per line); omit it to
    trace into the in-process ring only.  ``ring_capacity`` resizes the ring
    (oldest events drop first).  Honoured automatically at import time when
    the ``REPRO_TRACE`` environment variable names a path.
    """

    global active, _sink, _sink_path, _ring
    with _lock:
        if ring_capacity is not None and ring_capacity != _ring.maxlen:
            _ring = deque(_ring, maxlen=max(1, int(ring_capacity)))
        if path is not None:
            if _sink is not None:
                try:
                    _sink.close()
                except OSError:
                    pass
            _sink = open(path, "a", encoding="utf-8")
            _sink_path = str(path)
    # reprolint: lock-ok - single-reference rebind of the hot-path gate;
    # readers take one racy bool read by design (the disabled path must not
    # lock), and rebinding after the sink is published keeps emit() safe.
    active = True


def disable_trace() -> None:
    """Turn event tracing off and close any JSONL sink."""

    global active, _sink, _sink_path
    # reprolint: lock-ok - gate drops before the sink closes, so late racy
    # readers at worst emit into the ring; emit() itself locks around _sink.
    active = False
    with _lock:
        if _sink is not None:
            try:
                _sink.close()
            except OSError:
                pass
        _sink = None
        _sink_path = None


def trace_path() -> Optional[str]:
    """Path of the active JSONL sink, or ``None``."""

    with _lock:
        return _sink_path


def events(kind: Optional[str] = None) -> List[Dict[str, Any]]:
    """Snapshot of the ring buffer (filtered to ``kind`` when given)."""

    with _lock:
        snapshot = list(_ring)
    if kind is None:
        return snapshot
    return [record for record in snapshot if record.get("event") == kind]


def clear_events() -> None:
    """Drop the ring buffer's contents (the sequence counter keeps going)."""

    with _lock:
        _ring.clear()


_env_path = os.environ.get("REPRO_TRACE")
if _env_path:
    enable_trace(_env_path)
del _env_path

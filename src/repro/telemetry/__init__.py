"""Unified telemetry: metrics registry, event trace, and timing profiles.

The paper's value proposition is *what the ABFT layer did at runtime* -
detections, locations, corrections, threshold decisions, fallbacks.  This
package gives those outcomes one home with three pillars:

**Metrics registry** (:func:`registry`, :func:`snapshot`,
:func:`render_prometheus`): named monotone counters (per-site/per-scheme
ABFT activity, native fallbacks by reason, capability fallbacks, wisdom
MEASURE race outcomes) merged with every existing ``cache_info()`` /
``pool_info()`` surface, exportable as a plain dict, JSON, or Prometheus
text.  Counters are per-thread sharded and merged on read, so
chunk-parallel workers never contend.

**Event trace** (:func:`enable_trace`, :func:`events`): a bounded ring of
typed event records (plan/program/native compiles, threshold violations,
repairs, fallbacks) with an opt-in JSONL sink - ``REPRO_TRACE=path`` or
``enable_trace(path)``.  Disabled (the default), every emit site costs one
attribute check and nothing else.

**Timing profiles** (``plan.profile(x)``, ``repro profile``): one timed
execution broken into base kernel, combine stages, checksum encode, and tap
verification phases.

This is the observability layer the ``repro serve`` daemon mounts as its
``/metrics`` (Prometheus, via :func:`prometheus_exposition`) and ``/stats``
(JSON ``snapshot()``) endpoints; see ``docs/metrics.md`` for the reference
table of every counter and event.
"""

from repro.telemetry.metrics import (
    Registry,
    collector_names,
    counters,
    inc,
    prometheus_exposition,
    register_collector,
    registry,
    render_prometheus,
    reset,
    set_gauge,
    snapshot,
    unregister_collector,
)
from repro.telemetry.profile import ProfileEntry, ProfileResult
from repro.telemetry.trace import (
    clear_events,
    disable_trace,
    emit,
    enable_trace,
    events,
    trace_path,
)

__all__ = [
    "Registry",
    "registry",
    "counters",
    "inc",
    "set_gauge",
    "register_collector",
    "unregister_collector",
    "snapshot",
    "render_prometheus",
    "prometheus_exposition",
    "collector_names",
    "reset",
    "enable_trace",
    "disable_trace",
    "trace_path",
    "emit",
    "events",
    "clear_events",
    "ProfileEntry",
    "ProfileResult",
]

"""Stage-level timing profiles: the data types behind ``plan.profile(x)``.

A profile is one *timed* execution broken into labelled phases: the base
kernel, each lowered combine stage, the checksum encode pass, and the tap
verification of a protected plan.  The timing instrumentation lives on the
program objects themselves (:meth:`repro.fftlib.executor.StageProgram.
profile`, :meth:`repro.core.ftplan.FTPlan.profile`); this module only holds
the result containers and the text rendering the ``repro profile`` CLI
prints, so it stays stdlib-only and import-cycle-free.

Profiling deliberately runs *outside* the hot-path contract: a profiled
execution may allocate, lock, and format freely - it is a diagnostic run,
never the steady-state path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

__all__ = ["ProfileEntry", "ProfileResult"]


@dataclass(frozen=True)
class ProfileEntry:
    """One timed phase of a profiled execution."""

    label: str
    seconds: float


@dataclass(frozen=True)
class ProfileResult:
    """The per-phase breakdown of one profiled execution."""

    n: int
    description: str
    entries: Tuple[ProfileEntry, ...]
    total_seconds: float
    #: the profiled execution's output (so a profile run is still a
    #: usable transform); excluded from equality and repr.
    output: Any = field(default=None, compare=False, repr=False)

    def format(self) -> str:
        """Human-readable per-phase table (what ``repro profile`` prints)."""

        lines: List[str] = [self.description]
        width = max((len(e.label) for e in self.entries), default=0)
        denom = self.total_seconds if self.total_seconds > 0 else 1.0
        for entry in self.entries:
            share = 100.0 * entry.seconds / denom
            lines.append(
                f"  {entry.label.ljust(width)}  {entry.seconds * 1e6:12.1f} us  {share:5.1f}%"
            )
        lines.append(
            f"  {'total'.ljust(width)}  {self.total_seconds * 1e6:12.1f} us  100.0%"
        )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()

"""Machine models used to convert work into virtual time.

A :class:`MachineModel` is a handful of rates (sustained flop rate per rank,
memory bandwidth per rank, network latency and per-rank bisection bandwidth).
It is intentionally crude - the goal is to reproduce the *shape* of the
paper's parallel results (who wins, how overlap helps, how overhead scales
with p and N), not to predict TIANHE-2 runtimes to the second.

Two presets are provided:

``TIANHE2_LIKE``
    Rates in the ballpark of one TIANHE-2 node slice per MPI rank (the paper
    runs 24 ranks per node); used by the Fig. 8 / Table 2-3 benchmarks so
    virtual times land in the same order of magnitude as the paper's
    seconds.
``LAPTOP_LIKE``
    Rates representative of the machine running this reproduction; used by
    tests and examples where absolute magnitude is irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "TIANHE2_LIKE", "LAPTOP_LIKE"]


@dataclass(frozen=True)
class MachineModel:
    """Rates describing one rank of the simulated machine.

    Parameters
    ----------
    flops_per_second:
        Sustained floating-point rate of one rank on FFT-like code (well
        below peak; FFTs are memory-bound).
    memory_bandwidth:
        Bytes/second of streaming memory traffic per rank.  Checksum
        generation and verification passes are charged against this rather
        than the flop rate because they are pure streaming operations.
    network_latency:
        Per-message latency in seconds.
    network_bandwidth:
        Bytes/second a rank can inject into the network.
    """

    name: str
    flops_per_second: float
    memory_bandwidth: float
    network_latency: float
    network_bandwidth: float

    # ------------------------------------------------------------------
    def compute_time(self, flops: float) -> float:
        """Seconds needed for ``flops`` floating-point operations."""

        if flops <= 0:
            return 0.0
        return float(flops) / self.flops_per_second

    def streaming_time(self, data_bytes: float) -> float:
        """Seconds needed to stream ``data_bytes`` through memory once."""

        if data_bytes <= 0:
            return 0.0
        return float(data_bytes) / self.memory_bandwidth

    def fft_time(self, n: int, batch: int = 1) -> float:
        """Seconds for ``batch`` transforms of size ``n`` (5 n log2 n model)."""

        import numpy as np

        if n <= 1:
            return 0.0
        flops = 5.0 * n * float(np.log2(n)) * batch
        return self.compute_time(flops)

    def message_time(self, data_bytes: float, messages: int = 1) -> float:
        """Seconds for ``messages`` messages totalling ``data_bytes``."""

        return messages * self.network_latency + float(data_bytes) / self.network_bandwidth

    def alltoall_time(self, bytes_per_rank: float, ranks: int) -> float:
        """Seconds for an all-to-all where each rank exchanges ``bytes_per_rank``.

        Modelled as ``ranks - 1`` point-to-point messages per rank, pipelined
        so a rank's cost is the sum of its own sends (a common flat model for
        large transposes).
        """

        if ranks <= 1:
            return 0.0
        per_peer = bytes_per_rank / ranks
        return (ranks - 1) * self.message_time(per_peer)


#: Roughly one MPI rank on a TIANHE-2 compute node (two Xeon E5-2692 + custom
#: TH-Express interconnect shared by 24 ranks per node).  The flop rate is
#: calibrated to the paper's *sequential* FFTW measurements (Table 1: a
#: 2^25-point transform in 3.71 s is an effective ~1.1 GFlop/s per core on
#: 5 N log2 N operations); the network latency is an effective per-peer
#: all-to-all cost that folds in synchronisation and NIC contention from 24
#: ranks per node, which is what makes large-p strong scaling
#: communication-bound as in the paper's Table 2.
TIANHE2_LIKE = MachineModel(
    name="tianhe2-like",
    flops_per_second=1.1e9,
    memory_bandwidth=2.0e9,
    network_latency=5.0e-4,
    network_bandwidth=0.25e9,
)

#: A single laptop/container core running NumPy.
LAPTOP_LIKE = MachineModel(
    name="laptop-like",
    flops_per_second=1.0e9,
    memory_bandwidth=8.0e9,
    network_latency=1.0e-6,
    network_bandwidth=4.0e9,
)

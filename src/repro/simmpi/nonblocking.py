"""Non-blocking send/receive handles for the overlap schedule.

Algorithm 3 of the paper restructures each transposition as a pipeline of
``Isend``/``Irecv``/``Iwait`` calls with two send and two receive buffers, so
that while one pair of messages is in flight the rank generates the next send
buffer and verifies/processes the previously received one.

In this single-process simulation the "network" delivers immediately, so the
classes here exist to (a) express the same schedule shape, (b) track which
work items were issued while a request was outstanding - that set is exactly
the work the virtual timeline may hide behind communication - and (c) let
tests assert the pipeline issues the right operations in the right order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Request", "NonBlockingEngine"]


@dataclass
class Request:
    """Handle for an outstanding (simulated) non-blocking transfer."""

    tag: int
    source: int
    dest: int
    payload: np.ndarray
    completed: bool = False
    #: Names of work items issued between Isend/Irecv and the matching wait;
    #: this is the work that can be overlapped with the transfer.
    overlapped_work: List[str] = field(default_factory=list)

    def wait(self) -> np.ndarray:
        self.completed = True
        return self.payload


class NonBlockingEngine:
    """Issues and completes simulated non-blocking transfers.

    The engine pairs ``isend``/``irecv`` by ``(source, dest, tag)``; because
    delivery is immediate, ``irecv`` returns the payload that was (or will
    be) posted by the matching ``isend`` of the same step.  Work registered
    through :meth:`log_work` while any request is outstanding is attributed
    to those requests, which is what the timeline uses to size the hideable
    portion of a phase.
    """

    def __init__(self) -> None:
        self._mailbox: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._outstanding: List[Request] = []
        self.issued_events: List[str] = []

    # ------------------------------------------------------------------
    def isend(self, payload: np.ndarray, *, source: int, dest: int, tag: int = 0) -> Request:
        payload = np.array(payload, copy=True)
        self._mailbox[(source, dest, tag)] = payload
        request = Request(tag=tag, source=source, dest=dest, payload=payload)
        self._outstanding.append(request)
        self.issued_events.append(f"isend:{source}->{dest}:{tag}")
        return request

    def irecv(self, *, source: int, dest: int, tag: int = 0) -> Request:
        key = (source, dest, tag)
        payload = self._mailbox.get(key)
        if payload is None:
            payload = np.empty(0, dtype=np.complex128)
        request = Request(tag=tag, source=source, dest=dest, payload=payload)
        self._outstanding.append(request)
        self.issued_events.append(f"irecv:{source}->{dest}:{tag}")
        return request

    def log_work(self, name: str) -> None:
        """Record work issued while transfers are outstanding (overlappable)."""

        self.issued_events.append(f"work:{name}")
        for request in self._outstanding:
            if not request.completed:
                request.overlapped_work.append(name)

    def wait(self, request: Request) -> np.ndarray:
        self.issued_events.append(f"wait:{request.source}->{request.dest}:{request.tag}")
        payload = request.wait()
        self._outstanding = [r for r in self._outstanding if not r.completed]
        # Late-binding: if the matching isend was posted after the irecv,
        # fetch the payload now.
        if payload.size == 0:
            stored = self._mailbox.get((request.source, request.dest, request.tag))
            if stored is not None:
                return stored
        return payload

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def overlapped_work_items(self) -> List[str]:
        """All work item names that were overlapped with some transfer."""

        items: List[str] = []
        for event in self.issued_events:
            if event.startswith("work:"):
                items.append(event[5:])
        return items

"""Virtual timeline: per-rank clocks with overlap accounting.

The parallel schemes advance the timeline phase by phase:

* ``compute`` phases advance each rank's clock by its own work; a barrier at
  the end aligns all ranks to the maximum (the six-step FFT is bulk
  synchronous - every transpose is a global synchronisation point);
* ``communicate`` phases charge the all-to-all cost;
* ``overlapped`` phases charge ``max(communication, hideable work)`` plus any
  non-hideable remainder - this is how the benefit of Algorithm 3's
  communication-computation overlap is accounted.

The timeline also keeps a named record of every phase so benchmarks can
print a per-phase breakdown (e.g. how much of the fault-tolerance work was
hidden behind which transposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["PhaseRecord", "VirtualTimeline"]


@dataclass(frozen=True)
class PhaseRecord:
    """One named phase of the simulated execution."""

    name: str
    kind: str  # "compute", "comm", "overlap"
    duration: float
    compute_time: float = 0.0
    comm_time: float = 0.0
    hidden_time: float = 0.0


@dataclass
class VirtualTimeline:
    """Per-rank virtual clocks plus a phase log."""

    ranks: int
    clocks: np.ndarray = field(init=False)
    phases: List[PhaseRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ValueError("ranks must be positive")
        self.clocks = np.zeros(self.ranks, dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Current makespan (time of the slowest rank)."""

        return float(np.max(self.clocks))

    def phase_breakdown(self) -> Dict[str, float]:
        """Total duration charged per phase name."""

        out: Dict[str, float] = {}
        for phase in self.phases:
            out[phase.name] = out.get(phase.name, 0.0) + phase.duration
        return out

    def total_of_kind(self, kind: str) -> float:
        return sum(p.duration for p in self.phases if p.kind == kind)

    # ------------------------------------------------------------------
    def compute(self, name: str, per_rank_seconds) -> float:
        """A bulk-synchronous compute phase.

        ``per_rank_seconds`` is either a scalar (same work on every rank) or a
        sequence of length ``ranks``.  All ranks synchronise at the end of the
        phase; the phase duration is the maximum per-rank time.
        """

        seconds = self._broadcast(per_rank_seconds)
        duration = float(np.max(seconds)) if seconds.size else 0.0
        self.clocks += seconds
        self._synchronise()
        self.phases.append(PhaseRecord(name, "compute", duration, compute_time=duration))
        return duration

    def communicate(self, name: str, seconds: float) -> float:
        """A global communication phase (same cost charged to every rank)."""

        duration = float(seconds)
        self.clocks += duration
        self._synchronise()
        self.phases.append(PhaseRecord(name, "comm", duration, comm_time=duration))
        return duration

    def overlapped(
        self, name: str, comm_seconds: float, hideable_per_rank, extra_per_rank=0.0
    ) -> float:
        """A communication phase with work hidden behind it (Algorithm 3).

        ``hideable_per_rank`` is the work each rank can execute while its
        messages are in flight; ``extra_per_rank`` is work in that phase that
        cannot be hidden (it is simply added).  The phase duration per rank is
        ``max(comm, hideable) + extra``.
        """

        hideable = self._broadcast(hideable_per_rank)
        extra = self._broadcast(extra_per_rank)
        per_rank = np.maximum(float(comm_seconds), hideable) + extra
        duration = float(np.max(per_rank)) if per_rank.size else 0.0
        hidden = float(np.max(np.minimum(float(comm_seconds), hideable))) if hideable.size else 0.0
        self.clocks += per_rank
        self._synchronise()
        self.phases.append(
            PhaseRecord(
                name,
                "overlap",
                duration,
                compute_time=float(np.max(hideable + extra)),
                comm_time=float(comm_seconds),
                hidden_time=hidden,
            )
        )
        return duration

    # ------------------------------------------------------------------
    def _broadcast(self, values) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 0:
            return np.full(self.ranks, float(arr))
        if arr.shape != (self.ranks,):
            raise ValueError(f"expected scalar or length-{self.ranks} sequence, got shape {arr.shape}")
        return arr

    def _synchronise(self) -> None:
        self.clocks[:] = np.max(self.clocks)

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Multi-line textual breakdown of the simulated execution."""

        lines = [f"virtual time: {self.elapsed:.6f} s over {self.ranks} ranks"]
        for phase in self.phases:
            extra = ""
            if phase.kind == "overlap":
                extra = f" (comm {phase.comm_time:.6f}s, hidden {phase.hidden_time:.6f}s)"
            lines.append(f"  {phase.name:<28s} {phase.kind:<8s} {phase.duration:.6f}s{extra}")
        return "\n".join(lines)

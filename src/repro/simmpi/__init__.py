"""A simulated message-passing runtime and virtual-time cost model.

The paper's parallel evaluation runs FT-FFTW on TIANHE-2 with MPI.  This
reproduction has neither MPI nor a cluster, so the parallel schemes execute
on a *simulated* communicator:

* :mod:`repro.simmpi.comm` holds the per-rank data blocks in memory and
  implements the block-transpose (all-to-all) exchanges of the six-step FFT,
  including per-block checksums and in-transit fault injection;
* :mod:`repro.simmpi.nonblocking` provides Isend/Irecv/Wait handles so the
  communication-computation overlap schedule of Algorithm 3 can be expressed
  in the same shape as the paper's pseudo-code;
* :mod:`repro.simmpi.machine` / :mod:`repro.simmpi.timeline` translate the
  per-rank operation counts and communicated bytes into *virtual time* using
  a simple latency/bandwidth/compute-rate machine model.  Virtual time is
  what the parallel benchmarks report (a single Python process cannot
  exhibit real scaling), with wall-clock time shown alongside as a sanity
  check.

The protocol executed by the simulated ranks is identical to the paper's:
what is verified before/after each transposition, which checksums travel
with the data, and what can be overlapped.
"""

from repro.simmpi.machine import MachineModel, TIANHE2_LIKE, LAPTOP_LIKE
from repro.simmpi.timeline import PhaseRecord, VirtualTimeline
from repro.simmpi.comm import BlockChecksums, DistributedVector, SimCommunicator
from repro.simmpi.nonblocking import Request, NonBlockingEngine

__all__ = [
    "MachineModel",
    "TIANHE2_LIKE",
    "LAPTOP_LIKE",
    "PhaseRecord",
    "VirtualTimeline",
    "BlockChecksums",
    "DistributedVector",
    "SimCommunicator",
    "Request",
    "NonBlockingEngine",
]

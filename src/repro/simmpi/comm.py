"""The simulated communicator and distributed vectors.

Data distribution follows the paper's parallel 1-D FFT: the global vector of
``N`` complex elements is block-distributed over ``p`` ranks (rank ``r``
holds ``x[r*N/p : (r+1)*N/p]``), and every transposition exchanges the
``j``-th sub-block of rank ``i`` with the ``i``-th sub-block of rank ``j``.

The communicator tracks message and byte counts (used by the virtual-time
model and by the communication-overhead analysis of Section 7.5) and can
attach the paper's two locating checksums to every communicated block so
that in-transit corruption is detected and repaired at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checksums import memory_weights_classic, repair_single_error
from repro.faults.models import FaultSite
from repro.utils.validation import ensure_positive_int

__all__ = ["DistributedVector", "BlockChecksums", "SimCommunicator"]


@dataclass
class DistributedVector:
    """A global complex vector split into equal per-rank blocks."""

    blocks: List[np.ndarray]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a distributed vector needs at least one block")
        size = self.blocks[0].size
        for i, block in enumerate(self.blocks):
            if block.size != size:
                raise ValueError(f"rank {i} block has size {block.size}, expected {size}")
        self.blocks = [np.ascontiguousarray(b, dtype=np.complex128) for b in self.blocks]

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, x: np.ndarray, ranks: int) -> "DistributedVector":
        x = np.ascontiguousarray(x, dtype=np.complex128)
        ranks = ensure_positive_int(ranks, name="ranks")
        if x.size % ranks != 0:
            raise ValueError(f"global size {x.size} is not divisible by {ranks} ranks")
        local = x.size // ranks
        return cls([x[r * local:(r + 1) * local].copy() for r in range(ranks)])

    def to_global(self) -> np.ndarray:
        return np.concatenate(self.blocks)

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> int:
        return len(self.blocks)

    @property
    def local_size(self) -> int:
        return self.blocks[0].size

    @property
    def global_size(self) -> int:
        return self.ranks * self.local_size

    def local(self, rank: int) -> np.ndarray:
        return self.blocks[rank]

    def copy(self) -> "DistributedVector":
        return DistributedVector([b.copy() for b in self.blocks])


@dataclass(frozen=True)
class BlockChecksums:
    """The two locating checksums of one communicated block (Section 5)."""

    s1: complex
    s2: complex

    @classmethod
    def of(cls, block: np.ndarray, w1: np.ndarray, w2: np.ndarray) -> "BlockChecksums":
        return cls(complex(np.dot(w1, block)), complex(np.dot(w2, block)))


@dataclass
class SimCommunicator:
    """In-memory stand-in for the MPI communicator used by parallel FT-FFTW.

    Parameters
    ----------
    ranks:
        Number of simulated MPI ranks.
    injector:
        Optional fault injector; blocks in transit are exposed at the
        ``COMM_BLOCK`` site (``index`` = destination rank, ``rank`` = source).
    protect_messages:
        Attach/verify the two locating checksums on every communicated block
        (adds ``2 p`` complex values per rank and transpose, the 2p/n
        communication overhead derived in Section 7.5).
    """

    ranks: int
    injector: Optional[object] = None
    protect_messages: bool = True
    bytes_sent: int = 0
    messages_sent: int = 0
    corrected_blocks: int = 0
    unrecoverable_blocks: int = 0
    checksum_tolerance: float = 1e-8

    def __post_init__(self) -> None:
        ensure_positive_int(self.ranks, name="ranks")

    # ------------------------------------------------------------------
    def _account(self, data_bytes: int, messages: int) -> None:
        self.bytes_sent += int(data_bytes)
        self.messages_sent += int(messages)

    # ------------------------------------------------------------------
    def exchange_blocks(self, send: Sequence[Sequence[np.ndarray]]) -> List[List[np.ndarray]]:
        """All-to-all exchange: ``send[i][j]`` goes from rank ``i`` to rank ``j``.

        Returns ``recv`` with ``recv[j][i] = send[i][j]`` (post-corruption,
        post-repair).  Every block is copied, mirroring a real network
        transfer, and optionally protected by checksums.
        """

        p = self.ranks
        if len(send) != p or any(len(row) != p for row in send):
            raise ValueError(f"send must be a {p} x {p} grid of blocks")

        recv: List[List[np.ndarray]] = [[None] * p for _ in range(p)]
        for src in range(p):
            for dst in range(p):
                recv[dst][src] = self.exchange_blocks_single(src, dst, send[src][dst])
        return recv

    def exchange_blocks_single(self, src: int, dst: int, block: np.ndarray) -> np.ndarray:
        """Transit path of a single block: copy, protect, corrupt, verify, repair.

        Used both by :meth:`exchange_blocks` and by the pipelined
        (Algorithm 3) transpose, so blocking and overlapped communication
        share exactly the same protection semantics.
        """

        block = np.ascontiguousarray(block, dtype=np.complex128)
        payload = block.copy()
        checksums: Optional[BlockChecksums] = None
        weights: Tuple[Optional[np.ndarray], Optional[np.ndarray]] = (None, None)
        if self.protect_messages and payload.size:
            weights = memory_weights_classic(payload.size)
            checksums = BlockChecksums.of(payload, weights[0], weights[1])

        # In-transit corruption.
        if self.injector is not None:
            self.injector.visit(FaultSite.COMM_BLOCK, payload, index=dst, rank=src)

        self._account(payload.nbytes + (32 if checksums else 0), 1 if src != dst else 0)

        # Receiver-side verification and repair.
        if checksums is not None and payload.size:
            with np.errstate(over="ignore", invalid="ignore"):
                residual = abs(np.dot(weights[0], payload) - checksums.s1)
            scale = max(1.0, abs(checksums.s1))
            # not(<=) so that an overflowed (non-finite) residual counts as a
            # mismatch instead of silently passing.
            if not residual <= self.checksum_tolerance * scale:
                repaired = repair_single_error(
                    payload, weights[0], weights[1], checksums.s1, checksums.s2
                )
                if repaired is None:
                    self.unrecoverable_blocks += 1
                else:
                    self.corrected_blocks += 1
        return payload

    # ------------------------------------------------------------------
    def transpose(self, dist: DistributedVector) -> DistributedVector:
        """The six-step FFT's block transposition.

        Rank ``i``'s local block is split into ``p`` sub-blocks; sub-block
        ``j`` is sent to rank ``j``.  The received sub-blocks are concatenated
        in source-rank order.
        """

        p = self.ranks
        if dist.ranks != p:
            raise ValueError("distributed vector has a different rank count")
        local = dist.local_size
        if local % p != 0:
            raise ValueError(f"local size {local} is not divisible by {p} ranks")
        sub = local // p
        send = [
            [dist.local(i)[j * sub:(j + 1) * sub] for j in range(p)]
            for i in range(p)
        ]
        recv = self.exchange_blocks(send)
        return DistributedVector([np.concatenate(recv[j]) for j in range(p)])

    # ------------------------------------------------------------------
    def bytes_per_rank_per_transpose(self, local_size: int) -> int:
        """Bytes one rank injects into the network during one transposition."""

        p = self.ranks
        sub = local_size // p
        payload = sub * 16 * (p - 1)  # complex128 = 16 bytes, p-1 remote peers
        checksum_overhead = 32 * (p - 1) if self.protect_messages else 0
        return payload + checksum_overhead

    def reset_counters(self) -> None:
        self.bytes_sent = 0
        self.messages_sent = 0
        self.corrected_blocks = 0
        self.unrecoverable_blocks = 0

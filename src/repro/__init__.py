"""repro: online ABFT for the fast Fourier transform.

A from-scratch reproduction of *Liang et al., "Correcting Soft Errors Online
in Fast Fourier Transform", SC'17*: a plan-based FFT library (the FFTW
stand-in), the offline and online algorithm-based fault tolerance schemes,
fault injection machinery, a simulated-MPI parallel in-place scheme with
communication-computation overlap, and the paper's analytic overhead model.

Quick start
-----------
>>> import numpy as np
>>> from repro import FaultTolerantFFT
>>> ft = FaultTolerantFFT(4096)                     # opt-online+mem scheme
>>> x = np.random.default_rng(0).standard_normal(4096) + 0j
>>> result = ft.forward(x)
>>> bool(np.allclose(result.output, np.fft.fft(x)))
True
>>> result.report.detected                           # nothing went wrong
False

See ``examples/`` for fault-injection demos and ``benchmarks/`` for the
harnesses that regenerate every table and figure of the paper.
"""

from repro.core.api import FaultTolerantFFT, available_schemes, create_scheme, ft_fft
from repro.core.base import OptimizationFlags, SchemeResult
from repro.core.thresholds import RoundoffModel, ThresholdPolicy
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec

__version__ = "1.0.0"

__all__ = [
    "FaultTolerantFFT",
    "available_schemes",
    "create_scheme",
    "ft_fft",
    "OptimizationFlags",
    "SchemeResult",
    "RoundoffModel",
    "ThresholdPolicy",
    "FaultInjector",
    "FaultKind",
    "FaultSite",
    "FaultSpec",
    "__version__",
]

"""repro: online ABFT for the fast Fourier transform.

A from-scratch reproduction of *Liang et al., "Correcting Soft Errors Online
in Fast Fourier Transform", SC'17*: a plan-based FFT library (the FFTW
stand-in), the offline and online algorithm-based fault tolerance schemes,
fault injection machinery, a simulated-MPI parallel in-place scheme with
communication-computation overlap, and the paper's analytic overhead model.

Quick start
-----------
The public API is plan-centric (FFTW-style *plan once, execute many*):

>>> import numpy as np
>>> import repro
>>> p = repro.plan(4096)                            # opt-online+mem scheme
>>> x = np.random.default_rng(0).standard_normal(4096) + 0j
>>> result = p.execute(x)
>>> bool(np.allclose(result.output, np.fft.fft(x)))
True
>>> result.report.detected                          # nothing went wrong
False
>>> repro.plan(4096) is p                           # plans are cached
True

Plans are configured declaratively and cached by ``(n, config)``:

>>> p = repro.plan(4096, backend="numpy")           # pocketfft kernel
>>> p = repro.plan(4096, "opt-offline")             # legacy registry name
>>> p = repro.plan(4096, repro.FTConfig(kind="online", optimized=True,
...                                     memory_ft=False))

and support protected inverses and vectorized batched execution:

>>> X = np.random.default_rng(1).standard_normal((64, 4096)) + 0j
>>> batch = repro.plan(4096).execute_many(X)        # vectorized protection
>>> bool(np.allclose(batch.output, np.fft.fft(X, axis=-1)))
True

Real signals are first-class: ``real=True`` plans run a compiled
half-complex program (~2x fewer flops/bytes) and protect the packed
``n//2 + 1`` spectrum directly:

>>> xr = np.random.default_rng(2).standard_normal(4096)
>>> pr = repro.plan(4096, real=True)
>>> bool(np.allclose(pr.execute(xr).output, np.fft.rfft(xr)))
True

Multicore execution is a config knob: ``threads=N`` (or ``0`` for the
``REPRO_THREADS``/core-count automatic size) runs fault-free batches
chunk-parallel on a shared worker pool with per-chunk checksum
verification; for single *unprotected* transforms, the threaded six-step
lowering lives on the raw plan layer
(``repro.fftlib.planner.plan_fft(n, threads=N)``):

>>> pt = repro.plan(4096, threads=2)
>>> batch = pt.execute_many(X)
>>> bool(np.allclose(batch.output, np.fft.fft(X, axis=-1)))
True

The pre-1.1 entry points (``FaultTolerantFFT``, ``create_scheme``,
``ft_fft``) remain available as deprecation shims over the plan API.

See ``examples/`` for fault-injection demos and ``benchmarks/`` for the
harnesses that regenerate every table and figure of the paper.
"""

from repro import telemetry
from repro.core.api import FaultTolerantFFT, available_schemes, create_scheme, ft_fft
from repro.core.base import OptimizationFlags, SchemeResult
from repro.core.config import FTConfig
from repro.core.ftplan import (
    BatchResult,
    FTPlan,
    PlanCacheInfo,
    clear_plan_cache,
    plan,
    plan_cache_info,
    set_plan_cache_limit,
)
from repro.core.thresholds import RoundoffModel, ThresholdPolicy
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec
from repro.fftlib.backends import (
    FFTBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.runtime import (
    PoolInfo,
    ThreadedSixStepProgram,
    configure_pool,
    default_thread_count,
    pool_info,
    shutdown_pool,
)

__version__ = "1.1.0"


def native_cache_info() -> dict:
    """Counters and status of the native kernel tier (compiles, disk hits,
    failures, programs built, fallbacks), mirroring :func:`plan_cache_info`
    and the other ``*_info`` surfaces.  The same numbers appear under
    ``repro.telemetry.snapshot()["caches"]["native"]``.
    """

    from repro.fftlib.native import native_info

    return native_info()


__all__ = [
    "telemetry",
    "native_cache_info",
    "plan",
    "FTPlan",
    "FTConfig",
    "BatchResult",
    "PlanCacheInfo",
    "plan_cache_info",
    "clear_plan_cache",
    "set_plan_cache_limit",
    "FFTBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "FaultTolerantFFT",
    "available_schemes",
    "create_scheme",
    "ft_fft",
    "OptimizationFlags",
    "SchemeResult",
    "RoundoffModel",
    "ThresholdPolicy",
    "FaultInjector",
    "FaultKind",
    "FaultSite",
    "FaultSpec",
    "PoolInfo",
    "ThreadedSixStepProgram",
    "configure_pool",
    "default_thread_count",
    "pool_info",
    "shutdown_pool",
    "__version__",
]

"""Wire protocol of the transform server.

One transform request is a *frame*: a single JSON head line terminated by
``\\n``, followed immediately by the raw little-endian payload bytes.  The
head names the transform length ``n``, the protection config (the legacy
scheme-name grammar of :meth:`repro.core.config.FTConfig.from_name`, e.g.
``"opt-online+mem+real+t2"``), and optionally a fault-injection spec.  The
payload is the input row: ``n`` float64 samples for real configs, ``n``
complex128 samples otherwise - exactly the bytes of the numpy array, no
base64, no per-element framing.

A transform response mirrors the shape: one JSON head line (``ok``, ``n``,
``bins``, ``scheme``, the batch coordinates, and the per-row
:class:`repro.core.detection.FTReport` summary), then the spectrum as raw
complex128 bytes.  Errors are plain JSON bodies carrying ``ok: false``, a
message, and a machine-readable ``kind``.

The parse functions here are the server's per-request hot path (reprolint's
``hotpath-alloc`` rule watches them): one ``json.loads``, a handful of dict
lookups, and a zero-copy :func:`numpy.frombuffer` view per request.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.config import FTConfig
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec

__all__ = [
    "DEFAULT_CONFIG",
    "FRAME_CONTENT_TYPE",
    "MAX_HEAD_BYTES",
    "ProtocolError",
    "RequestHead",
    "canonical_config",
    "parse_head",
    "parse_payload",
    "validate_inject",
    "build_injector",
    "encode_request",
    "encode_response",
    "parse_response",
]

FRAME_CONTENT_TYPE = "application/x-repro-frame"
DEFAULT_CONFIG = "opt-online+mem"
#: Upper bound on the JSON head line; a request head is tens of bytes, so
#: anything near this limit is garbage (or an attempt to buffer-bloat).
MAX_HEAD_BYTES = 8192

_HEAD_FIELDS = frozenset({"n", "config", "inject"})
_INJECT_FIELDS = frozenset({"site", "kind", "magnitude", "bit", "index", "element"})
_SITE_VALUES = frozenset(site.value for site in FaultSite)
_KIND_VALUES = frozenset(kind.value for kind in FaultKind)


class ProtocolError(Exception):
    """A malformed, oversized, or otherwise rejected request.

    ``status`` is the HTTP status the server answers with; ``kind`` is the
    machine-readable error class clients (and the ``server_errors`` counter)
    key on: ``malformed``, ``oversized``, ``draining``, ``internal``, ...
    """

    def __init__(self, message: str, *, status: int = 400, kind: str = "malformed") -> None:
        super().__init__(message)
        self.status = int(status)
        self.kind = str(kind)


@lru_cache(maxsize=256)
def canonical_config(name: str) -> Tuple[str, bool]:
    """Canonical scheme name and real-input flag for a request config string.

    Round-tripping through :class:`FTConfig` canonicalizes flag order (so
    ``"opt-online+mem+t2+real"`` and ``"opt-online+mem+real+t2"`` land in
    the same batch group) and validates the name in one step.  Cached: the
    server sees the same handful of config strings millions of times.
    """

    try:
        config = FTConfig.from_name(name)
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"unknown config {name!r}: {exc}") from None
    return config.to_name(), config.real


@dataclass(frozen=True)
class RequestHead:
    """Parsed JSON head of one transform request frame."""

    n: int
    #: canonical scheme name; ``(n, config)`` is the micro-batch group key
    config: str
    real: bool
    inject: Optional[Dict[str, Any]] = None

    @property
    def itemsize(self) -> int:
        return 8 if self.real else 16

    @property
    def payload_bytes(self) -> int:
        return self.n * self.itemsize


def parse_head(line: bytes) -> RequestHead:
    """Parse one request head line (hot: one ``json.loads`` per request)."""

    if len(line) > MAX_HEAD_BYTES:
        raise ProtocolError(
            f"head line of {len(line)} bytes exceeds the {MAX_HEAD_BYTES} byte limit",
            status=413,
            kind="oversized",
        )
    try:
        head = json.loads(line)
    except ValueError:
        raise ProtocolError("head line is not valid JSON") from None
    if not isinstance(head, dict):
        raise ProtocolError("head must be a JSON object")
    unknown = set(head) - _HEAD_FIELDS
    if unknown:
        raise ProtocolError(f"unknown head fields: {sorted(unknown)}")
    n = head.get("n")
    if not isinstance(n, int) or isinstance(n, bool) or n < 2:
        raise ProtocolError(f"'n' must be an integer >= 2, got {n!r}")
    name = head.get("config", DEFAULT_CONFIG)
    if not isinstance(name, str):
        raise ProtocolError(f"'config' must be a scheme name string, got {name!r}")
    config, real = canonical_config(name)
    inject = head.get("inject")
    if inject is not None:
        inject = validate_inject(inject)
    return RequestHead(n=n, config=config, real=real, inject=inject)


def parse_payload(head: RequestHead, body: "memoryview | bytes") -> np.ndarray:
    """View the payload bytes as the request's input row (hot: zero-copy).

    The returned array is a read-only view of ``body``; the batch path
    copies it via ``np.stack`` and the scalar path takes a private
    ``np.array`` copy before any injector may mutate it.
    """

    expected = head.payload_bytes
    if len(body) != expected:
        raise ProtocolError(
            f"payload is {len(body)} bytes, expected {expected} "
            f"({head.n} x {'float64' if head.real else 'complex128'})"
        )
    return np.frombuffer(body, dtype=np.float64 if head.real else np.complex128)


def validate_inject(spec: Any) -> Dict[str, Any]:
    """Normalise a request's fault-injection spec (defaults filled in)."""

    if not isinstance(spec, dict):
        raise ProtocolError("'inject' must be a JSON object")
    unknown = set(spec) - _INJECT_FIELDS
    if unknown:
        raise ProtocolError(f"unknown inject fields: {sorted(unknown)}")
    site = spec.get("site", FaultSite.STAGE1_COMPUTE.value)
    if site not in _SITE_VALUES:
        raise ProtocolError(f"unknown fault site {site!r}")
    kind = spec.get("kind", FaultKind.ADD_CONSTANT.value)
    if kind not in _KIND_VALUES:
        raise ProtocolError(f"unknown fault kind {kind!r}")
    magnitude = spec.get("magnitude", 10.0)
    if isinstance(magnitude, bool) or not isinstance(magnitude, (int, float)):
        raise ProtocolError(f"inject field 'magnitude' must be a number, got {magnitude!r}")
    normalised: Dict[str, Any] = {"site": site, "kind": kind, "magnitude": float(magnitude)}
    for field in ("bit", "index", "element"):
        value = spec.get(field)
        if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
            raise ProtocolError(f"inject field {field!r} must be an integer, got {value!r}")
        normalised[field] = value
    return normalised


def build_injector(inject: Dict[str, Any]) -> FaultInjector:
    """An armed :class:`FaultInjector` from a validated inject spec."""

    spec = FaultSpec(
        site=FaultSite(inject["site"]),
        kind=FaultKind(inject["kind"]),
        magnitude=inject["magnitude"],
        bit=inject["bit"],
        index=inject["index"],
        element=inject["element"],
    )
    return FaultInjector(specs=[spec])


def encode_request(
    x: np.ndarray,
    config: str = DEFAULT_CONFIG,
    inject: Optional[Dict[str, Any]] = None,
) -> bytes:
    """One request frame (client side): head line + raw payload bytes."""

    canonical, real = canonical_config(config)
    # reprolint: alloc-ok - the request buffer itself (client side): one
    # contiguous dtype-normalised copy so the payload is exactly n items
    x = np.ascontiguousarray(x, dtype=np.float64 if real else np.complex128)
    if x.ndim != 1:
        raise ProtocolError(f"request payload must be one row, got shape {x.shape}")
    head: Dict[str, Any] = {"n": int(x.size), "config": canonical}
    if inject is not None:
        head["inject"] = validate_inject(inject)
    return json.dumps(head, separators=(",", ":")).encode("ascii") + b"\n" + x.tobytes()


def encode_response(meta: Dict[str, Any], payload: Optional[np.ndarray]) -> bytes:
    """One response body: JSON head line + raw little-endian spectrum bytes."""

    head = json.dumps(meta, separators=(",", ":")).encode("ascii") + b"\n"
    if payload is None:
        return head
    # reprolint: alloc-ok - the response buffer itself: one contiguous copy
    # of the spectrum row so the socket write is a single buffer
    return head + np.ascontiguousarray(payload).tobytes()


def parse_response(body: bytes) -> Tuple[Dict[str, Any], Optional[np.ndarray]]:
    """Split a response body back into its meta dict and spectrum row."""

    line, sep, payload = body.partition(b"\n")
    if not sep:
        raise ProtocolError("response is missing its head line")
    try:
        meta = json.loads(line)
    except ValueError:
        raise ProtocolError("response head is not valid JSON") from None
    if not isinstance(meta, dict):
        raise ProtocolError("response head must be a JSON object")
    if not payload:
        return meta, None
    bins = meta.get("bins")
    spectrum = np.frombuffer(payload, dtype=np.complex128)
    if isinstance(bins, int) and spectrum.size != bins:
        raise ProtocolError(f"response payload has {spectrum.size} bins, head says {bins}")
    return meta, spectrum

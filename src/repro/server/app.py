"""The transform daemon: an asyncio HTTP front end over the :class:`Batcher`.

A deliberately small HTTP/1.1 server (stdlib only - ``asyncio`` streams and
hand-rolled request parsing) listening on localhost TCP and/or a unix
socket.  Endpoints:

``POST /v1/transform``
    One request frame (see :mod:`repro.server.protocol`); the row joins a
    micro-batch and the response carries its spectrum plus the per-row
    fault-tolerance summary.
``GET /healthz``
    Liveness: status (``ok``/``draining``), uptime, pid.
``GET /stats``
    The telemetry registry ``snapshot()`` as JSON.
``GET /metrics``
    Prometheus text exposition - byte-identical to
    ``repro stats --prometheus`` (both call
    :func:`repro.telemetry.prometheus_exposition`).

Connections are keep-alive and serve requests sequentially; concurrency
comes from many connections, which is also what makes the micro-batch
window fill up.  Every observability endpoint counts itself *before*
rendering, so a scrape's body already includes that scrape - and a
quiesced process renders the same bytes from the CLI afterwards.

Graceful drain: SIGTERM (via :meth:`TransformServer.request_shutdown`)
stops accepting connections, answers new transforms with 503, lets queued
and in-flight batches complete and deliver, then closes lingering
keep-alive connections and the worker pool.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.server import protocol
from repro.server.batching import Batcher
from repro.server.protocol import ProtocolError
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

__all__ = ["DEFAULT_PORT", "DEFAULT_MAX_PAYLOAD", "TransformServer", "ServerThread"]

DEFAULT_PORT = 8791
#: payload ceiling (bytes): 64 MiB = a 4M-point complex row
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class TransformServer:
    """The always-on transform daemon (one instance per process).

    Construct, then ``await start()`` inside a running event loop;
    ``await run()`` is the start-serve-drain convenience the CLI uses.
    All mutable state is confined to the loop thread except the telemetry
    counters (sharded) and the executor-side jobs.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = DEFAULT_PORT,
        unix_path: Optional[str] = None,
        window: float = 0.0,
        max_batch: int = 32,
        workers: int = 1,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        if port is None and unix_path is None:
            raise ValueError("serve needs a TCP port, a unix socket path, or both")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.window = max(0.0, float(window))
        self.max_batch = max(1, int(max_batch))
        self.workers = max(1, int(workers))
        self.max_payload = int(max_payload)
        #: TCP port actually bound (resolves ``port=0`` ephemeral binds)
        self.bound_port: Optional[int] = None
        self._batcher: Optional[Batcher] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._writers: Set[asyncio.StreamWriter] = set()
        self._handlers: Set["asyncio.Task[None]"] = set()
        self._connections = 0
        self._draining = False
        self._finished = False
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "TransformServer":
        """Bind the listeners and register the ``server`` telemetry surface."""

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started_at = time.monotonic()
        self._batcher = Batcher(
            self._loop,
            window=self.window,
            max_batch=self.max_batch,
            workers=self.workers,
            # Zero-window batching target: open connections bound how many
            # requests can be in flight, so a group that reaches this count
            # flushes without waiting for its grace timer.
            peers=lambda: self._connections,
        )
        # A transform frame at n=4096 is ~64 KiB; asyncio's default 64 KiB
        # stream limit makes readexactly drain it in watermark-sized nibbles
        # (measured ~2x the per-frame streaming cost).  Size the buffer to
        # swallow a whole max-size frame in one read.
        limit = max(2**16, min(self.max_payload + protocol.MAX_HEAD_BYTES, 2**24))
        if self.unix_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle, path=self.unix_path, limit=limit
                )
            )
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port, limit=limit
            )
            self.bound_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        _metrics.register_collector("server", self._collect)
        return self

    async def run(self, *, install_signal_handlers: bool = False) -> None:
        """Start, serve until :meth:`request_shutdown`, then drain."""

        await self.start()
        await self.serve_forever(install_signal_handlers=install_signal_handlers)

    async def serve_forever(self, *, install_signal_handlers: bool = False) -> None:
        """Serve (after :meth:`start`) until :meth:`request_shutdown`, then drain."""

        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix loop or nested loop: Ctrl-C still works
        assert self._stop is not None
        await self._stop.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain and exit (signal-handler safe)."""

        self._draining = True  # refuse new transforms immediately
        if self._stop is not None:
            self._stop.set()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop listening, drain pending work, release the worker pool."""

        if self._finished:
            return
        self._finished = True
        self._draining = True
        # A retired surface must not shadow a later server's (or render
        # stale state forever in embedding processes); the guard keeps a
        # stopping server from tearing down a successor's registration.
        _metrics.unregister_collector("server", self._collect)
        if _trace.active:
            _trace.emit(
                "serve-drain",
                pending_rows=0 if self._batcher is None else self._batcher.pending_rows,
                inflight=0 if self._batcher is None else self._batcher.inflight_batches,
            )
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        if self._batcher is not None and drain:
            await self._batcher.drain()
        # Idle keep-alive connections would otherwise pin the process; the
        # drained responses above are already flushed.
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            _done, pending = await asyncio.wait(set(self._handlers), timeout=5.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self.unix_path is not None and os.path.exists(self.unix_path):
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        if self._stop is not None:
            self._stop.set()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> List[str]:
        """Human-readable listen addresses (for logs and ``/healthz``)."""

        listening = []
        if self.unix_path is not None:
            listening.append(f"unix:{self.unix_path}")
        if self.bound_port is not None:
            listening.append(f"http://{self.host}:{self.bound_port}")
        return listening

    def _collect(self) -> Mapping[str, Any]:
        """The ``server`` surface of ``snapshot()["caches"]`` / ``/metrics``.

        Only state that is stable on a quiesced process belongs here (no
        uptime): the surface must render identically from the serving
        process and from ``repro stats`` right after, which is what the
        byte-parity test pins.
        """

        batcher = self._batcher
        return {
            "listening": ",".join(self.addresses) or "(stopped)",
            "draining": self._draining,
            "connections": self._connections,
            "pending_rows": 0 if batcher is None else batcher.pending_rows,
            "inflight_batches": 0 if batcher is None else batcher.inflight_batches,
            "window_ms": self.window * 1000.0,
            "max_batch": self.max_batch,
            "workers": self.workers,
        }

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ProtocolError as exc:
                    _metrics.inc("server_errors", kind=exc.kind)
                    await self._send_error(writer, exc)
                    return
                if request is None:
                    return  # clean EOF between requests
                method, path, body = request
                if not await self._respond(method, path, body, writer):
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError, ValueError):
            # Client went away (or overflowed the head-line buffer) between
            # requests; rows it had in a live batch are unaffected.
            pass
        finally:
            self._connections -= 1
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF.

        Oversized bodies are rejected from the Content-Length header alone -
        the payload is never buffered - and the connection closes (the
        stream cannot be resynchronised without reading the body).
        """

        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise ProtocolError("malformed HTTP request line") from None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ProtocolError("malformed Content-Length header") from None
        if length < 0:
            raise ProtocolError("malformed Content-Length header")
        if length > self.max_payload + protocol.MAX_HEAD_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.max_payload} byte payload limit",
                status=413,
                kind="oversized",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _respond(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request; returns whether to keep the connection."""

        if path == "/v1/transform":
            if method != "POST":
                return await self._send_error(
                    writer,
                    ProtocolError("use POST for /v1/transform", status=405, kind="method"),
                )
            return await self._respond_transform(body, writer)
        if method != "GET":
            return await self._send_error(
                writer, ProtocolError(f"method {method} not allowed", status=405, kind="method")
            )
        if path == "/healthz":
            _metrics.inc("server_requests", endpoint="healthz")
            payload = json.dumps(
                {
                    "status": "draining" if self._draining else "ok",
                    "listening": self.addresses,
                    "uptime_s": round(time.monotonic() - self._started_at, 3),
                    "pid": os.getpid(),
                }
            ).encode("utf-8")
            return await self._send(writer, 200, "application/json", payload)
        if path == "/stats":
            _metrics.inc("server_requests", endpoint="stats")
            payload = _metrics.registry().to_json().encode("utf-8")
            return await self._send(writer, 200, "application/json", payload)
        if path == "/metrics":
            # Counted before rendering: a scrape's own request is part of
            # the exposition it receives (and of the next CLI render).
            _metrics.inc("server_requests", endpoint="metrics")
            payload = _metrics.prometheus_exposition()
            return await self._send(writer, 200, "text/plain; version=0.0.4", payload)
        return await self._send_error(
            writer, ProtocolError(f"no route for {path}", status=404, kind="not-found")
        )

    async def _respond_transform(self, body: bytes, writer: asyncio.StreamWriter) -> bool:
        _metrics.inc("server_requests", endpoint="transform")
        assert self._batcher is not None
        try:
            if self._draining:
                raise ProtocolError("server is draining", status=503, kind="draining")
            newline = body.find(b"\n", 0, protocol.MAX_HEAD_BYTES + 1)
            if newline < 0:
                raise ProtocolError("frame is missing its head line")
            head = protocol.parse_head(body[:newline])
            payload = memoryview(body)[newline + 1 :]
            if len(payload) > self.max_payload:
                raise ProtocolError(
                    f"payload of {len(payload)} bytes exceeds the "
                    f"{self.max_payload} byte limit",
                    status=413,
                    kind="oversized",
                )
            row = protocol.parse_payload(head, payload)
            meta, spectrum = await self._batcher.append_request(head, row)
        except ProtocolError as exc:
            _metrics.inc("server_errors", kind=exc.kind)
            return await self._send_error(writer, exc)
        except Exception as exc:  # plan/execute failure: report, keep serving
            _metrics.inc("server_errors", kind="internal")
            return await self._send_error(
                writer,
                ProtocolError(f"{type(exc).__name__}: {exc}", status=500, kind="internal"),
            )
        response = protocol.encode_response(meta, spectrum)
        try:
            return await self._send(writer, 200, protocol.FRAME_CONTENT_TYPE, response)
        except (ConnectionResetError, BrokenPipeError):
            _metrics.inc("server_errors", kind="disconnect")
            return False

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        *,
        close: bool = False,
    ) -> bool:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        writer.write(payload)
        await writer.drain()
        return not close

    async def _send_error(self, writer: asyncio.StreamWriter, exc: ProtocolError) -> bool:
        body = json.dumps({"ok": False, "error": str(exc), "kind": exc.kind}).encode("utf-8")
        try:
            # Errors close the connection: after a rejected frame the stream
            # position is unreliable, and clients reconnect cheaply.
            return await self._send(writer, exc.status, "application/json", body, close=True)
        except (ConnectionResetError, BrokenPipeError):
            return False


class ServerThread:
    """A :class:`TransformServer` on a dedicated event-loop thread.

    The embedding used by the test suite and the load benchmark: the caller
    stays synchronous, the daemon runs on a daemon thread, ``stop()``
    triggers the same drain path as SIGTERM and joins.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.server = TransformServer(**kwargs)
        self._thread = threading.Thread(target=self._main, name="repro-serve-loop", daemon=True)
        self._ready = threading.Event()
        self.error: Optional[BaseException] = None

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface loop crashes to start()/stop()
            self.error = exc
            self._ready.set()

    async def _amain(self) -> None:
        try:
            await self.server.start()
        except Exception as exc:
            self.error = exc
            self._ready.set()
            return
        self._ready.set()
        assert self.server._stop is not None
        await self.server._stop.wait()
        await self.server.shutdown()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("transform server failed to start within 60s")
        if self.error is not None:
            raise RuntimeError(f"transform server failed to start: {self.error}")
        return self

    @property
    def address(self) -> Union[str, Tuple[str, int]]:
        """A :class:`repro.client.Client`-ready address for the live server."""

        if self.server.unix_path is not None:
            return f"unix:{self.server.unix_path}"
        assert self.server.bound_port is not None
        return (self.server.host, self.server.bound_port)

    def stop(self, timeout: float = 60.0) -> None:
        loop = self.server._loop
        if loop is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("transform server did not drain within the timeout")

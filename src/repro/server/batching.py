"""Micro-batch scheduler: same-``(n, config)`` requests share one ``execute_many``.

Concurrent clients rarely arrive at the same instant, but they do arrive
within a few hundred microseconds of each other under load.  Every row of
the same ``(n, canonical config)`` key that lands inside one batching
window joins one group, and the group executes as a single
:meth:`repro.core.ftplan.FTPlan.execute_many` call on a worker thread.
That is the whole point of serving through the plan cache: the batched
path samples the robust threshold statistics once per batch, runs one
matmul per checksum vector, and verifies per worker chunk - overheads
that a one-request-per-``execute`` front end pays per request.

``window=0`` (the default) is *connection-aware opportunistic* batching:
the number of open connections bounds how many requests can possibly be
in flight, so the first request of a group sets
``target = min(open connections, max_batch)`` and the group flushes the
moment it holds ``target`` rows - the full concurrent burst coalesces
with zero added latency.  A short grace timer (:data:`Batcher.IDLE_GRACE`,
re-armed while the group keeps growing) bounds the wait when some
connections are idle and the target is never reached; a lone connection
(``target == 1``) dispatches synchronously on arrival.  A positive
``window`` instead holds every group open for exactly that long - larger
batches under sparse open-loop traffic, but closed-loop clients stall on
the timer (throughput caps at ``max_batch / window``).

Threading model
---------------
``append_request`` and ``_flush`` run on the event-loop thread only, so
the group table needs no lock.  Execution happens on a small
``ThreadPoolExecutor`` (numpy releases the GIL inside the kernels);
results come back to the loop via ``asyncio.wrap_future`` and resolve the
per-request futures there.  A client that disconnects mid-batch simply
leaves a future nobody awaits - the batch itself is unaffected.

Fault-injection requests bypass batching: interior fault sites only fire
in the scalar :meth:`FTPlan.execute` path (the batched path deliberately
visits INPUT/OUTPUT only), so routing them solo mirrors the library's own
semantics.  ``max_batch=1`` degenerates to one-``execute``-per-request,
which is exactly the baseline mode ``benchmarks/bench_serve.py`` measures
batching against.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.ftplan import plan
from repro.server.protocol import ProtocolError, RequestHead, build_injector
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

__all__ = ["Batcher", "Reply"]

#: one reply: the response meta dict and the spectrum row (or ``None``)
Reply = Tuple[Dict[str, Any], Optional[np.ndarray]]
GroupKey = Tuple[int, str]


class _Group:
    """Rows of one ``(n, config)`` key waiting for the window to close."""

    __slots__ = ("rows", "futures", "handle", "seen", "target")

    def __init__(self) -> None:
        self.rows: List[np.ndarray] = []
        self.futures: List["asyncio.Future[Reply]"] = []
        self.handle: Optional[asyncio.TimerHandle] = None
        #: zero-window bookkeeping: rows counted when the grace timer was
        #: last armed, and the burst size that flushes without waiting
        #: (``min(open connections, max_batch)`` at group creation).
        self.seen = 0
        self.target = 1


class Batcher:
    """Group requests into micro-batches and run them on a worker pool."""

    #: zero-window straggler grace (seconds): how long a group short of its
    #: connection-count target waits for another arrival before flushing
    #: anyway.  Re-armed on growth, so it bounds the quiet time after the
    #: *last* arrival, not the total wait from the first - a full burst
    #: never waits at all (the target trigger flushes it synchronously),
    #: so this only prices the idle-connection case.
    IDLE_GRACE = 500e-6

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        window: float = 0.0,
        max_batch: int = 32,
        workers: int = 1,
        peers: Optional[Callable[[], int]] = None,
    ) -> None:
        self._loop = loop
        self._window = max(0.0, float(window))
        self._max_batch = max(1, int(max_batch))
        #: how many requests could currently be in flight - the server
        #: passes its open-connection count; standalone use defaults to 1
        #: (every request dispatches on arrival).
        self._peers: Callable[[], int] = peers if peers is not None else (lambda: 1)
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="repro-serve"
        )
        self._groups: Dict[GroupKey, _Group] = {}
        self._inflight: Set["asyncio.Future[List[Reply]]"] = set()
        self._closed = False

    # -- introspection (read from the loop thread by the collector) ----
    @property
    def window(self) -> float:
        return self._window

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def pending_rows(self) -> int:
        return sum(len(group.rows) for group in self._groups.values())

    @property
    def inflight_batches(self) -> int:
        return len(self._inflight)

    # -- the per-request hot path (loop thread) ------------------------
    def append_request(self, head: RequestHead, row: np.ndarray) -> "asyncio.Future[Reply]":
        """Queue one request row; the future resolves to its reply.

        Hot per-request path between the frame parse and the flush trigger:
        one dict lookup and two list appends.  The first row of a group
        arms the flush (the ``window`` timer, or the zero-window
        connection-count target plus grace timer); filling the target or
        ``max_batch`` flushes immediately.
        """

        fut: "asyncio.Future[Reply]" = self._loop.create_future()
        if self._closed:
            fut.set_exception(
                ProtocolError("server is draining", status=503, kind="draining")
            )
            return fut
        if head.inject is not None or self._max_batch <= 1:
            self._dispatch(_SingleJob(head, row), [fut])
            return fut
        key = (head.n, head.config)
        group = self._groups.get(key)
        if group is None:
            group = _Group()
            self._groups[key] = group
            if self._window > 0.0:
                group.handle = self._loop.call_later(self._window, self._flush, key)
            else:
                group.target = min(max(1, self._peers()), self._max_batch)
                if group.target > 1:
                    group.seen = 1
                    group.handle = self._loop.call_later(
                        self.IDLE_GRACE, self._idle_flush, key, group
                    )
        group.rows.append(row)
        group.futures.append(fut)
        size = len(group.rows)
        if size >= self._max_batch or (self._window == 0.0 and size >= group.target):
            self._flush(key)
        return fut

    # -- flushing and delivery (loop thread) ---------------------------
    def _idle_flush(self, key: GroupKey, group: _Group) -> None:
        """Grace-timer expiry for a zero-window group short of its target.

        The group was created while ``target > 1`` other connections were
        open, so peers *may* still deliver rows; reaching the target (or
        ``max_batch``) flushes synchronously in :meth:`append_request` and
        this timer never fires.  When it does fire, the group grew by
        fewer rows than the connection count promised: if it grew at all
        during the last grace period the stragglers get one more
        (re-armed) timer, otherwise the burst is over and the batch runs
        with what it has.  The timer also matters for scheduling: a loop
        parked in ``poll`` yields the GIL/CPU to the client threads whose
        requests are still being written.
        """

        if self._groups.get(key) is not group:
            return  # flushed by the target/max-batch trigger (or a new round)
        size = len(group.rows)
        if size > group.seen:
            group.seen = size
            group.handle = self._loop.call_later(
                self.IDLE_GRACE, self._idle_flush, key, group
            )
            return
        self._flush(key)

    def _flush(self, key: GroupKey) -> None:
        group = self._groups.pop(key, None)
        if group is None:
            return  # already flushed by the max-batch trigger
        if group.handle is not None:
            group.handle.cancel()
        self._dispatch(_BatchJob(key, group.rows), group.futures)

    def _dispatch(self, job: "_Job", futures: List["asyncio.Future[Reply]"]) -> None:
        """Run ``job`` on the executor and route its replies to ``futures``."""

        try:
            cfut = self._executor.submit(job.run)
        except RuntimeError:  # executor already shut down by drain()
            self._fail(futures, ProtocolError("server is draining", status=503, kind="draining"))
            return
        afut = asyncio.wrap_future(cfut, loop=self._loop)
        self._inflight.add(afut)

        def deliver(done: "asyncio.Future[List[Reply]]") -> None:
            self._inflight.discard(done)
            if done.cancelled():
                self._fail(
                    futures, ProtocolError("batch cancelled", status=503, kind="draining")
                )
                return
            exc = done.exception()
            if exc is not None:
                self._fail(futures, exc)
                return
            for fut, reply in zip(futures, done.result()):
                # A done future here means the client disconnected while the
                # batch ran; the other rows of the batch are unaffected.
                if not fut.done():
                    fut.set_result(reply)

        afut.add_done_callback(deliver)

    @staticmethod
    def _fail(futures: List["asyncio.Future[Reply]"], exc: BaseException) -> None:
        for fut in futures:
            if not fut.done():
                fut.set_exception(exc)

    # -- drain ---------------------------------------------------------
    async def drain(self) -> None:
        """Flush every waiting group, wait out in-flight batches, stop the pool.

        New requests fail with 503 from the moment drain starts; rows that
        were already queued or executing complete normally and their
        responses are delivered - a SIGTERM never poisons an accepted batch.
        """

        self._closed = True
        for key in list(self._groups):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)


# ----------------------------------------------------------------------
# executor-side jobs (worker threads; everything here may allocate freely)
# ----------------------------------------------------------------------

class _BatchJob:
    """One flushed group: a single ``execute_many`` over the stacked rows."""

    __slots__ = ("key", "rows")

    def __init__(self, key: GroupKey, rows: List[np.ndarray]) -> None:
        self.key = key
        self.rows = rows

    def run(self) -> List[Reply]:
        n, config = self.key
        batch = len(self.rows)
        _metrics.inc("server_batches", config=config)
        _metrics.inc("server_transforms", batch, config=config)
        if _trace.active:
            _trace.emit("serve-batch", n=n, config=config, rows=batch)
        result = plan(n, config).execute_many(np.stack(self.rows))
        out = result.output
        dead = frozenset(result.uncorrectable_rows)
        flagged = frozenset(result.fallback_rows) | dead
        scheme = result.report.scheme
        replies: List[Reply] = []
        for index in range(batch):
            meta = {
                "ok": True,
                "n": n,
                "config": config,
                "bins": int(out.shape[-1]),
                "scheme": scheme,
                "batch_size": batch,
                "batch_index": index,
                "report": {
                    "detected": index in flagged,
                    "corrected": index in flagged and index not in dead,
                    "uncorrectable": index in dead,
                },
            }
            replies.append((meta, out[index]))
        return replies


class _SingleJob:
    """One solo request: scalar ``execute`` (interior fault sites live here)."""

    __slots__ = ("head", "row")

    def __init__(self, head: RequestHead, row: np.ndarray) -> None:
        self.head = head
        self.row = row

    def run(self) -> List[Reply]:
        head = self.head
        _metrics.inc("server_transforms", config=head.config)
        injector = build_injector(head.inject) if head.inject is not None else None
        # The payload row is a read-only frombuffer view and the scalar path
        # may corrupt its input in place (INPUT fault site): copy first.
        result = plan(head.n, head.config).execute(np.array(self.row), injector)
        report = result.report
        meta = {
            "ok": True,
            "n": head.n,
            "config": head.config,
            "bins": int(result.output.shape[-1]),
            "scheme": result.scheme or report.scheme,
            "batch_size": 1,
            "batch_index": 0,
            "report": {
                "detected": report.detected,
                "corrected": report.corrected,
                "uncorrectable": report.has_uncorrectable,
                "corrections": report.correction_count,
                "faults_fired": 0 if injector is None else injector.fired_count,
            },
        }
        return [(meta, result.output)]


_Job = Any  # _BatchJob | _SingleJob (both expose .run() -> List[Reply])

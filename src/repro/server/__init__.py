"""Always-on transform serving: micro-batching daemon over the plan cache.

``repro serve`` runs :class:`TransformServer`: an asyncio HTTP/1.1 daemon
(localhost TCP and/or a unix socket, stdlib only) that groups concurrent
same-``(n, config)`` transform requests inside a short micro-batch window
and executes each group through one chunk-parallel
:meth:`repro.core.ftplan.FTPlan.execute_many` call - the amortized
threshold statistics and per-worker ABFT verification of the batched
library path, turned into sustained multi-client throughput.  See
``docs/serving.md`` for the operator's guide and
:mod:`repro.server.protocol` for the wire format.
"""

from repro.server.app import DEFAULT_MAX_PAYLOAD, DEFAULT_PORT, ServerThread, TransformServer
from repro.server.batching import Batcher
from repro.server.protocol import (
    DEFAULT_CONFIG,
    FRAME_CONTENT_TYPE,
    ProtocolError,
    RequestHead,
)

__all__ = [
    "DEFAULT_CONFIG",
    "DEFAULT_MAX_PAYLOAD",
    "DEFAULT_PORT",
    "FRAME_CONTENT_TYPE",
    "Batcher",
    "ProtocolError",
    "RequestHead",
    "ServerThread",
    "TransformServer",
]

"""Command-line interface.

A small operational front end to the library, usable as ``python -m
repro.cli <command>``:

``schemes``
    List the available protection schemes and FFT backends.
``transform``
    Run a protected transform on a synthetic signal (or a file of samples)
    and print the fault-tolerance report.  ``--batch N`` runs a batch of
    ``N`` signals through the vectorized ``execute_many`` path;
    ``--backend`` selects the sub-FFT kernel; ``--real`` feeds a real
    float64 signal through the compiled half-complex (rfft) path.
``inject``
    Run a protected transform with a soft error injected at a chosen site
    and show detection/correction behaviour and the residual output error.
``bench``
    Time the serial compiled path against the shared-memory threaded
    runtime (``--threads``) for one size, both unprotected and protected.
``predict``
    Print the Section 7 overhead predictions for a problem size (and,
    optionally, the parallel per-rank figures).
``profile``
    Time one protected execution phase by phase (checksum encode, each
    lowered transform stage, tap verification) via ``FTPlan.profile``.
``stats``
    Print the process-wide telemetry registry (every ``*_info`` cache
    surface plus the event counters) as a table, ``--json``, or
    ``--prometheus`` text exposition (byte-identical to the serve
    daemon's ``/metrics`` endpoint).
``serve``
    Run the always-on transform daemon: micro-batch concurrent requests
    into ``execute_many`` windows, keep plans and wisdom warm, expose
    ``/healthz`` / ``/stats`` / ``/metrics``, drain gracefully on
    SIGTERM.  See ``docs/serving.md``.
``submit``
    Send one signal (or ``--repeat`` copies) to a running daemon and
    print the per-row fault-tolerance summary.

The CLI only composes the public plan API (``repro.plan`` + ``FTConfig``);
everything it prints can also be obtained programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.api import available_schemes
from repro.core.config import FTConfig
from repro.core.ftplan import FTPlan, plan
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec
from repro.fftlib.backends import available_backends, get_backend
from repro.perfmodel import parallel_scheme_ops, predict_sequential
from repro.utils.reporting import Table
from repro.utils.rng import RandomSource

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# input handling
# ----------------------------------------------------------------------

def _load_signal(args: argparse.Namespace) -> np.ndarray:
    """Build the input vector: from ``--input`` (one value per line) or synthetic.

    With ``--real`` the synthetic signals are real-valued (and an input file
    is read as float64 samples) to feed the packed rfft path.
    """

    real = getattr(args, "real", False)
    if args.input:
        dtype = np.float64 if real else np.complex128
        values = np.loadtxt(args.input, dtype=dtype, ndmin=1)
        return np.asarray(values, dtype=dtype)
    source = RandomSource(seed=args.seed)
    if args.signal == "uniform":
        return source.uniform_real(args.size) if real else source.uniform_complex(args.size)
    if args.signal == "normal":
        return source.normal_real(args.size) if real else source.normal_complex(args.size)
    tones = [args.size // 8, args.size // 3]
    if real:
        return source.real_signal_with_tones(args.size, tones=tones, noise=0.05)
    return source.signal_with_tones(args.size, tones=tones, noise=0.05)


def _load_batch(args: argparse.Namespace, x: np.ndarray) -> np.ndarray:
    """A ``(batch, n)`` input for ``--batch N`` runs.

    Synthetic signals get a fresh row per batch entry (seeds offset from
    ``--seed``); a ``--input`` file is tiled, which still exercises the
    batched pipeline.
    """

    if args.input:
        return np.tile(x, (args.batch, 1))
    # All rows derive from one base seed so the batch is either fully
    # reproducible (--seed given) or fully fresh (base drawn from entropy),
    # never a mix of fixed and varying rows.
    base = args.seed
    if base is None:
        base = int(np.random.default_rng().integers(0, 2**31))
    rows = []
    for i in range(args.batch):
        row_args = argparse.Namespace(**vars(args))
        row_args.seed = base + i
        rows.append(_load_signal(row_args))
    return np.stack(rows)


def _make_plan(args: argparse.Namespace, n: int) -> FTPlan:
    """The (cached) FTPlan from ``--scheme``/``--backend``/``--real``/``--threads``."""

    config = FTConfig.from_name(
        args.scheme,
        backend=args.backend,
        real=getattr(args, "real", False),
        threads=getattr(args, "threads", None),
        inplace=getattr(args, "inplace", False),
        native=getattr(args, "native", False),
    )
    return plan(n, config)


def _execute_signal(ft_plan: FTPlan, args: argparse.Namespace, x: np.ndarray, injector=None):
    """Run one signal through the plan, honouring ``--inplace``.

    With ``--inplace`` the transform goes through the overwrite path: the
    working buffer is handed to ``execute(out=...)`` and destroyed (complex)
    or consumed into a preallocated packed-spectrum buffer (real).
    """

    if getattr(args, "inplace", False):
        if getattr(args, "real", False):
            out = np.empty(x.size // 2 + 1, dtype=np.complex128)
            return ft_plan.execute(np.array(x, dtype=np.float64), injector, out=out)
        buf = np.array(x, dtype=np.complex128)
        return ft_plan.execute(buf, injector, out=buf)
    return ft_plan.execute(x, injector)


def _execute_batch(ft_plan: FTPlan, args: argparse.Namespace, X: np.ndarray, injector=None):
    """Run a batch through the plan, honouring ``--inplace`` (complex only)."""

    if getattr(args, "inplace", False) and not getattr(args, "real", False):
        buf = np.array(X, dtype=np.complex128)
        return ft_plan.execute_many(buf, injector=injector, out=buf)
    return ft_plan.execute_many(X, injector=injector)


def _reference_spectrum(args: argparse.Namespace, x: np.ndarray) -> np.ndarray:
    """Reference spectrum for the report's relative-error line.

    Uses the registered ``numpy`` backend (pocketfft) through the ordinary
    backend registry rather than touching ``numpy.fft`` directly - the
    registry is the repo's only sanctioned FFT boundary (reprolint's
    ``fft-boundary`` rule), and the report should name the kernel the same
    way every other path does.
    """

    reference = get_backend("numpy")
    if getattr(args, "real", False):
        return reference.rfft(x, axis=-1)
    return reference.fft(np.asarray(x, dtype=np.complex128), axis=-1)


def _add_signal_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", "-n", type=int, default=4096, help="transform length (default 4096)")
    parser.add_argument(
        "--signal", choices=["uniform", "normal", "tones"], default="uniform",
        help="synthetic input kind (ignored when --input is given)",
    )
    parser.add_argument("--input", help="file with one (complex) sample per line")
    parser.add_argument("--seed", type=int, default=None, help="seed for the synthetic input")
    parser.add_argument(
        "--scheme", default="opt-online+mem", choices=list(available_schemes()),
        help="protection scheme (default: opt-online+mem)",
    )
    parser.add_argument(
        "--backend", default=None, choices=list(available_backends()),
        help="sub-FFT kernel (default: the process default, fftlib)",
    )
    parser.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help="run N signals through the vectorized batched path (default 1)",
    )
    parser.add_argument(
        "--real", action="store_true",
        help="real-input transform: real float64 signal in, packed n//2+1 "
             "spectrum (numpy.fft.rfft layout) out, via the compiled "
             "half-complex path",
    )
    parser.add_argument(
        "--threads", type=int, default=None, metavar="T",
        help="shared-memory parallelism: run fault-free batches chunk-"
             "parallel on T worker threads with per-chunk checksum "
             "verification (0 = automatic from REPRO_THREADS/cores; "
             "default: serial)",
    )
    parser.add_argument(
        "--inplace", action="store_true",
        help="in-place execution: lower the Stockham autosort program "
             "(caller's buffer + one half-size scratch instead of ping-pong "
             "buffers) and run the transform through the overwrite path "
             "with checksum-carried surrogate recovery",
    )
    parser.add_argument(
        "--native", action="store_true",
        help="native kernel tier: execute the fault-free stage bodies "
             "through generated-C codelets compiled once per machine with "
             "the system C compiler (silently falls back to the pure-NumPy "
             "lowering when no compiler is available or REPRO_NO_NATIVE=1)",
    )


# ----------------------------------------------------------------------
# sub-commands
# ----------------------------------------------------------------------

def _cmd_schemes(args: argparse.Namespace) -> int:
    table = Table("available protection schemes", ["name", "description"])
    descriptions = {
        "fftw": "unprotected baseline (two-layer plan, no checksums)",
        "offline": "offline ABFT, naive encoding, computational FT only",
        "opt-offline": "offline ABFT, optimized encoding, computational FT only",
        "offline+mem": "offline ABFT with memory fault tolerance (naive)",
        "opt-offline+mem": "offline ABFT with memory fault tolerance (optimized)",
        "online": "online two-layer ABFT (Algorithm 2), computational FT only",
        "opt-online": "optimized online ABFT, computational FT only",
        "online+mem": "online ABFT with the Fig. 2 memory protection hierarchy",
        "opt-online+mem": "the paper's FT-FFTW scheme (Fig. 3, all optimizations)",
    }
    for name in available_schemes():
        table.add_row(name, descriptions.get(name, ""))
    print(table.render())
    print()
    backends = Table("available FFT backends (--backend)", ["name", "description"])
    for name in available_backends():
        backends.add_row(name, get_backend(name).description)
    print(backends.render())
    return 0


def _print_report(result, reference: Optional[np.ndarray]) -> None:
    report = result.report
    print(f"scheme               : {result.scheme}")
    print(f"errors detected      : {report.detected}")
    print(f"sub-FFT recomputations: {report.recompute_count}")
    print(f"memory repairs       : {report.memory_correction_count}")
    print(f"DMR corrections      : {report.dmr_correction_count}")
    print(f"uncorrectable        : {len(report.uncorrectable)}")
    if reference is not None:
        err = float(
            np.max(np.abs(result.output - reference)) / max(np.max(np.abs(reference)), 1e-300)
        )
        print(f"relative output error: {err:.3e}")


def _print_batch_report(batch, reference: np.ndarray) -> float:
    """Print the batched report; returns the (guarded) relative output error."""

    report = batch.report
    print(f"scheme               : {report.scheme}")
    print(f"batch rows           : {reference.shape[0]}")
    print(f"errors detected      : {report.detected}")
    print(f"rows re-protected    : {len(batch.fallback_rows)}")
    print(f"memory repairs       : {report.memory_correction_count}")
    print(f"uncorrectable        : {len(report.uncorrectable)}")
    err = float(np.max(np.abs(batch.output - reference)) / max(np.max(np.abs(reference)), 1e-300))
    print(f"relative output error: {err:.3e}")
    return err


def _cmd_transform(args: argparse.Namespace) -> int:
    x = _load_signal(args)
    ft_plan = _make_plan(args, x.size)
    if args.batch > 1:
        X = _load_batch(args, x)
        batch = _execute_batch(ft_plan, args, X)
        _print_batch_report(batch, _reference_spectrum(args, X))
        if args.output:
            # Same (re, im) two-column layout as the single-signal path,
            # with the rows' spectra concatenated in batch order.
            flat = batch.output.reshape(-1)
            np.savetxt(args.output, np.column_stack([flat.real, flat.imag]))
            print(f"spectra written to    {args.output} ({X.shape[0]} spectra concatenated)")
        return 0 if not batch.uncorrectable else 1
    result = _execute_signal(ft_plan, args, x)
    reference = _reference_spectrum(args, x)
    _print_report(result, reference)
    if args.output:
        np.savetxt(args.output, np.column_stack([result.output.real, result.output.imag]))
        print(f"spectrum written to   {args.output}")
    return 0 if not result.report.has_uncorrectable else 1


def _cmd_inject(args: argparse.Namespace) -> int:
    x = _load_signal(args)
    site = FaultSite(args.site)
    kind = FaultKind(args.kind)
    spec = FaultSpec(
        site=site,
        index=args.index,
        element=args.element,
        kind=kind,
        magnitude=args.magnitude,
        bit=args.bit,
    )
    injector = FaultInjector(specs=[spec])
    ft_plan = _make_plan(args, x.size)
    if args.batch > 1:
        if site not in (FaultSite.INPUT, FaultSite.OUTPUT):
            print(
                f"note: batched execution only visits input/output fault sites; "
                f"site {site.value!r} will not fire in the vectorized path"
            )
        X = _load_batch(args, x)
        reference = _reference_spectrum(args, X)
        batch = _execute_batch(ft_plan, args, X, injector)
        print(f"faults injected      : {injector.fired_count}")
        err = _print_batch_report(batch, reference)
        return 0 if err < args.tolerance else 1
    reference = _reference_spectrum(args, x)
    result = _execute_signal(ft_plan, args, x, injector)
    print(f"faults injected      : {injector.fired_count}")
    if injector.events:
        event = injector.events[0]
        print(f"fault site/element   : {event.site.value} / {event.element}")
    _print_report(result, reference)
    err = float(np.max(np.abs(result.output - reference)) / np.max(np.abs(reference)))
    return 0 if err < args.tolerance else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Serial vs threaded wall-clock for one size (interleaved best-of-N)."""

    import time

    from repro.fftlib.planner import plan_fft
    from repro.runtime import default_thread_count, pool_info, resolve_thread_count

    n = args.size
    threads = resolve_thread_count(args.threads if args.threads is not None else 0)
    rng = np.random.default_rng(args.seed if args.seed is not None else 20170712)
    x = rng.uniform(-1.0, 1.0, n) + 1j * rng.uniform(-1.0, 1.0, n)
    X = np.tile(x, (args.batch, 1)) if args.batch > 1 else None

    serial_plan = plan_fft(n, backend="fftlib")
    threaded_plan = plan_fft(n, backend="fftlib", threads=threads)
    # The planner falls back to the serial lowering when threading cannot
    # win (tiny or prime sizes); label the row so a ~1.00x reads as "not
    # attempted", not "no benefit".
    threaded_label = f"threaded x{threads}"
    if threaded_plan.threads <= 1:
        threaded_label += " (serial fallback)"
    candidates = {
        "serial compiled": lambda: serial_plan.execute(x),
        threaded_label: lambda: threaded_plan.execute(x),
    }
    if getattr(args, "native", False):
        from repro.fftlib.native import native_supported

        native_plan = plan_fft(n, backend="fftlib", native=True)
        native_label = "native codelets"
        if not native_supported():
            native_label += " (pure fallback)"
        candidates[native_label] = lambda: native_plan.execute(x)
    if X is not None:
        ft_serial = plan(n, FTConfig.from_name(args.scheme))
        ft_threaded = plan(n, FTConfig.from_name(args.scheme, threads=threads))
        candidates[f"protected batch ({args.scheme})"] = lambda: ft_serial.execute_many(X)
        candidates[f"protected batch x{threads}"] = lambda: ft_threaded.execute_many(X)

    times = {name: float("inf") for name in candidates}
    for fn in candidates.values():
        fn()  # warm-up: plans, programs, pool
    for _ in range(max(1, args.repeats)):
        for name, fn in candidates.items():
            start = time.perf_counter()
            fn()
            times[name] = min(times[name], time.perf_counter() - start)

    table = Table(
        f"serial vs threaded (n={n}, {default_thread_count()} pool workers)",
        ["path", "best [ms]", "speedup vs serial"],
    )
    base = times["serial compiled"]
    for name, value in times.items():
        table.add_row(name, f"{value * 1e3:.3f}", f"{base / value:.2f}x")
    print(table.render())
    info = pool_info()
    print(
        f"pool: {info.workers} workers, {info.submitted} tasks submitted, "
        f"{info.inline} run inline"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Per-phase timing of one protected execution (``FTPlan.profile``)."""

    x = _load_signal(args)
    ft_plan = _make_plan(args, x.size)
    ft_plan.execute(x)  # warm-up: programs, twiddles, work buffers
    result = ft_plan.profile(x)
    print(result.format())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Dump the telemetry registry (counters, gauges, cache surfaces)."""

    from repro import telemetry

    if getattr(args, "json", False):
        print(telemetry.registry().to_json())
        return 0
    if getattr(args, "prometheus", False):
        # The one shared rendering path with the serve daemon's /metrics
        # endpoint: both emit telemetry.prometheus_exposition() verbatim,
        # so a scrape and a CLI dump of the same process state are
        # byte-identical (tests/server/test_metrics_parity.py pins this).
        sys.stdout.buffer.write(telemetry.prometheus_exposition())
        sys.stdout.buffer.flush()
        return 0
    snapshot = telemetry.snapshot()
    counters = snapshot["counters"]
    table = Table("telemetry counters", ["counter", "value"])
    if counters:
        for name, value in sorted(counters.items()):
            table.add_row(name, str(value))
    else:
        table.add_row("(none recorded)", "0")
    print(table.render())
    gauges = snapshot["gauges"]
    if gauges:
        print()
        gauge_table = Table("telemetry gauges", ["gauge", "value"])
        for name, value in sorted(gauges.items()):
            gauge_table.add_row(name, str(value))
        print(gauge_table.render())
    for surface, fields in sorted(snapshot["caches"].items()):
        print()
        surface_table = Table(f"{surface} info", ["field", "value"])
        for field_name, value in fields.items():
            surface_table.add_row(field_name, str(value))
        print(surface_table.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on transform daemon (see docs/serving.md)."""

    import asyncio
    import json

    from repro.server import TransformServer

    if args.wisdom:
        from repro.fftlib.planner import get_default_planner

        with open(args.wisdom, "r", encoding="utf-8") as handle:
            get_default_planner().import_wisdom(json.load(handle))
        print(f"wisdom imported from {args.wisdom}")
    for spec in args.warm or ():
        size_text, _, scheme = spec.partition(":")
        warm_plan = plan(int(size_text), scheme or "opt-online+mem")
        # One throwaway execution compiles the stage programs, caches the
        # twiddles, and (for native plans) builds the codelets up front.
        dtype = np.float64 if warm_plan.config.real else np.complex128
        warm_plan.execute_many(np.zeros((1, warm_plan.n), dtype))
        print(f"warmed n={warm_plan.n} config={warm_plan.config.to_name()}")

    port = args.port
    if port is None and not args.unix:
        port = 8791  # repro.server.DEFAULT_PORT; keep the CLI default visible here
    server = TransformServer(
        host=args.host,
        port=port,
        unix_path=args.unix,
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        workers=args.workers,
        max_payload=args.max_payload_mb * 1024 * 1024,
    )

    async def _run() -> None:
        await server.start()
        for address in server.addresses:
            print(f"listening on {address}")
        print(
            f"micro-batch window {server.window * 1e3:.1f} ms, "
            f"max batch {server.max_batch}, {server.workers} worker(s)"
        )
        sys.stdout.flush()
        await server.serve_forever(install_signal_handlers=True)

    asyncio.run(_run())
    print("drained; bye")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Send one or more signals to a running daemon and print the outcome."""

    from repro.client import Client
    from repro.server.protocol import canonical_config

    scheme = args.scheme
    if args.real and not canonical_config(scheme)[1]:
        scheme += "+real"
    config, real = canonical_config(scheme)
    signal_args = argparse.Namespace(**vars(args))
    signal_args.real = real
    inject = None
    if args.site is not None:
        inject = {"site": args.site, "kind": args.kind, "magnitude": args.magnitude}
    with Client(args.address) as client:
        failures = 0
        for index in range(max(1, args.repeat)):
            if args.seed is not None:
                signal_args.seed = args.seed + index
            x = _load_signal(signal_args)
            reply = client.transform(x, config, inject=inject)
            print(
                f"[{index}] scheme={reply.scheme} batch={reply.batch_index + 1}/"
                f"{reply.batch_size} detected={reply.detected} "
                f"corrected={reply.corrected} uncorrectable={reply.uncorrectable}"
            )
            failures += int(reply.uncorrectable)
            if args.output and index == 0:
                np.savetxt(args.output, np.column_stack([reply.output.real, reply.output.imag]))
                print(f"spectrum written to {args.output}")
    return 0 if failures == 0 else 1


def _cmd_predict(args: argparse.Namespace) -> int:
    table = Table(
        f"Section 7 predicted fault-free overhead for N=2^{int(np.log2(args.size))}",
        ["scheme", "overhead %", "overhead % with one error"],
        digits=1,
    )
    for prediction in predict_sequential(args.size):
        table.add_row(
            prediction.scheme, prediction.overhead_percent, prediction.overhead_percent_with_error
        )
    print(table.render())
    if args.ranks:
        local = args.size // args.ranks
        before = parallel_scheme_ops(local)
        after = parallel_scheme_ops(local, overlap=True)
        print()
        print(f"parallel per-rank overhead (local n = N/p = {local}):")
        print(f"  FT-FFTW      : {before.fault_free / local:.0f} n operations")
        print(f"  opt-FT-FFTW  : {after.fault_free / local:.0f} n operations (after overlap)")
    return 0


# ----------------------------------------------------------------------
# parser / entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant FFT (reproduction of Liang et al., SC'17)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list available protection schemes").set_defaults(func=_cmd_schemes)

    transform = sub.add_parser("transform", help="run a protected transform")
    _add_signal_options(transform)
    transform.add_argument("--output", "-o", help="write the spectrum (re, im columns) to this file")
    transform.set_defaults(func=_cmd_transform)

    inject = sub.add_parser("inject", help="run a protected transform with an injected soft error")
    _add_signal_options(inject)
    inject.add_argument(
        "--site", default=FaultSite.STAGE1_COMPUTE.value,
        choices=[site.value for site in FaultSite], help="where the fault strikes",
    )
    inject.add_argument(
        "--kind", default=FaultKind.ADD_CONSTANT.value,
        choices=[kind.value for kind in FaultKind], help="corruption model",
    )
    inject.add_argument("--magnitude", type=float, default=10.0, help="constant used by add/set faults")
    inject.add_argument("--bit", type=int, default=None, help="bit position for bit-flip faults")
    inject.add_argument("--index", type=int, default=None, help="sub-FFT index to target")
    inject.add_argument("--element", type=int, default=None, help="element offset to corrupt")
    inject.add_argument(
        "--tolerance", type=float, default=1e-8,
        help="relative output error above which the command exits non-zero",
    )
    inject.set_defaults(func=_cmd_inject)

    bench = sub.add_parser(
        "bench", help="time serial vs threaded execution of one transform size"
    )
    bench.add_argument("--size", "-n", type=int, default=2**18, help="transform length (default 2^18)")
    bench.add_argument(
        "--threads", type=int, default=None, metavar="T",
        help="worker threads to compare against serial (default: automatic "
             "from REPRO_THREADS/cores)",
    )
    bench.add_argument("--repeats", type=int, default=5, help="best-of repeats (default 5)")
    bench.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="also time the protected batched path over N rows (default 8; "
             "1 disables)",
    )
    bench.add_argument(
        "--scheme", default="opt-online+mem", choices=list(available_schemes()),
        help="protection scheme for the batched rows (default: opt-online+mem)",
    )
    bench.add_argument("--seed", type=int, default=None, help="seed for the synthetic input")
    bench.add_argument(
        "--native", action="store_true",
        help="also time the generated-C native kernel tier for the size",
    )
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile", help="time one protected execution phase by phase"
    )
    _add_signal_options(profile)
    profile.set_defaults(func=_cmd_profile)

    stats = sub.add_parser(
        "stats", help="print the process-wide telemetry registry"
    )
    stats.add_argument(
        "--json", action="store_true", help="emit the registry snapshot as JSON"
    )
    stats.add_argument(
        "--prometheus", action="store_true",
        help="emit Prometheus text exposition format",
    )
    stats.set_defaults(func=_cmd_stats)

    serve = sub.add_parser(
        "serve", help="run the always-on micro-batching transform daemon"
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, metavar="P",
        help="TCP port (default 8791; 0 picks an ephemeral port; omitted "
             "entirely when --unix is the only listener requested)",
    )
    serve.add_argument(
        "--unix", default=None, metavar="PATH",
        help="also (or only, without --port) listen on this unix socket",
    )
    serve.add_argument(
        "--window-ms", type=float, default=0.0, metavar="MS",
        help="micro-batch window: how long the first request of a "
             "(n, config) group waits for peers.  The default 0 batches "
             "opportunistically - everything already queued when the event "
             "loop goes idle coalesces, adding no latency; a positive "
             "window holds the batch open on a timer (useful for sparse "
             "open-loop traffic, but it stalls closed-loop clients)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, metavar="B",
        help="flush a group early at B rows; 1 disables batching and "
             "serves one execute() per request (default 32)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="W",
        help="executor threads running execute_many batches (default 1; "
             "numpy releases the GIL inside the kernels)",
    )
    serve.add_argument(
        "--max-payload-mb", type=int, default=64, metavar="MB",
        help="reject request payloads larger than this (default 64 MiB)",
    )
    serve.add_argument(
        "--wisdom", default=None, metavar="FILE",
        help="import an export_wisdom() JSON snapshot before serving "
             "(measured backend choices and twiddle hints start warm)",
    )
    serve.add_argument(
        "--warm", action="append", metavar="N[:CONFIG]",
        help="pre-build the plan for this size (and config; default "
             "opt-online+mem) before accepting traffic; repeatable",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="send a transform request to a running daemon"
    )
    submit.add_argument(
        "--address", "-a", default="127.0.0.1:8791",
        help="server address: host:port, unix:/path, or a socket path "
             "(default 127.0.0.1:8791)",
    )
    submit.add_argument("--size", "-n", type=int, default=4096, help="transform length (default 4096)")
    submit.add_argument(
        "--signal", choices=["uniform", "normal", "tones"], default="uniform",
        help="synthetic input kind (ignored when --input is given)",
    )
    submit.add_argument("--input", help="file with one (complex) sample per line")
    submit.add_argument("--seed", type=int, default=None, help="seed for the synthetic input")
    submit.add_argument(
        "--scheme", default="opt-online+mem",
        help="protection config in flag grammar, e.g. opt-online+mem+real+t2 "
             "(default: opt-online+mem)",
    )
    submit.add_argument(
        "--real", action="store_true",
        help="send a real float64 signal (appends +real to --scheme)",
    )
    submit.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="send N requests over the same connection (default 1)",
    )
    submit.add_argument(
        "--site", default=None, choices=[site.value for site in FaultSite],
        help="inject a live fault at this site on the server (solo execute path)",
    )
    submit.add_argument(
        "--kind", default=FaultKind.ADD_CONSTANT.value,
        choices=[kind.value for kind in FaultKind], help="corruption model for --site",
    )
    submit.add_argument(
        "--magnitude", type=float, default=10.0, help="constant used by add/set faults"
    )
    submit.add_argument("--output", "-o", help="write the first spectrum (re, im columns) here")
    submit.set_defaults(func=_cmd_submit)

    predict = sub.add_parser("predict", help="print the Section 7 overhead model")
    predict.add_argument("--size", "-n", type=int, default=2**25, help="problem size (default 2^25)")
    predict.add_argument("--ranks", "-p", type=int, default=None, help="also print parallel per-rank figures")
    predict.set_defaults(func=_cmd_predict)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

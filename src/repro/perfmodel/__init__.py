"""Analytic overhead model (Section 7 of the paper).

The paper derives closed-form operation counts for every scheme: what the
checksum machinery adds on top of the ``5 N log2 N`` operations of the FFT
itself, how much a correction costs, and how much space/communication the
parallel scheme needs.  This package reproduces those formulas and converts
them into predicted overhead percentages and times through a
:class:`repro.simmpi.machine.MachineModel`.

The benchmarks report these predictions next to the measured values: the
measured Python numbers validate the *ordering*, the model reproduces the
paper's *magnitudes* at the paper's problem sizes.
"""

from repro.perfmodel.opcounts import (
    COMPLEX_ADD_OPS,
    COMPLEX_DIV_OPS,
    COMPLEX_MUL_OPS,
    OperationCounts,
    fft_operations,
    offline_scheme_ops,
    online_scheme_ops,
    parallel_scheme_ops,
    communication_overhead_ratio,
    sequential_space_overhead,
    parallel_space_overhead_ratio,
)
from repro.perfmodel.predictions import OverheadPrediction, predict_sequential, predict_parallel

__all__ = [
    "COMPLEX_ADD_OPS",
    "COMPLEX_DIV_OPS",
    "COMPLEX_MUL_OPS",
    "OperationCounts",
    "fft_operations",
    "offline_scheme_ops",
    "online_scheme_ops",
    "parallel_scheme_ops",
    "communication_overhead_ratio",
    "sequential_space_overhead",
    "parallel_space_overhead_ratio",
    "OverheadPrediction",
    "predict_sequential",
    "predict_parallel",
]

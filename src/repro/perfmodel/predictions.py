"""Turn Section 7 operation counts into predicted overheads and times.

Two uses:

* the Fig. 7 benchmarks print the predicted overhead percentage next to the
  measured one, evaluated both at the benchmark's (scaled-down) sizes and at
  the paper's 2^25 - 2^28 sizes;
* the Fig. 8 / Table 1-3 benchmarks print predicted execution times obtained
  by pushing the operation counts through a machine model, so the virtual
  times of the simulated parallel runs can be cross-checked against the
  closed-form analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.perfmodel.opcounts import (
    OperationCounts,
    fft_operations,
    offline_scheme_ops,
    online_scheme_ops,
    parallel_scheme_ops,
)
from repro.simmpi.machine import MachineModel, TIANHE2_LIKE

__all__ = ["OverheadPrediction", "predict_sequential", "predict_parallel"]


@dataclass(frozen=True)
class OverheadPrediction:
    """Predicted overhead of one scheme at one problem size."""

    scheme: str
    n: int
    overhead_ratio: float
    overhead_ratio_with_error: float
    predicted_seconds: Optional[float] = None
    predicted_seconds_with_error: Optional[float] = None

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_ratio

    @property
    def overhead_percent_with_error(self) -> float:
        return 100.0 * self.overhead_ratio_with_error


_SEQUENTIAL_MODELS = {
    "opt-offline": lambda n: offline_scheme_ops(n, memory_ft=False),
    "opt-offline+mem": lambda n: offline_scheme_ops(n, memory_ft=True),
    "opt-online": lambda n: online_scheme_ops(n, memory_ft=False),
    "opt-online+mem": lambda n: online_scheme_ops(n, memory_ft=True),
}


def predict_sequential(
    n: int,
    *,
    schemes: Optional[Sequence[str]] = None,
    machine: Optional[MachineModel] = TIANHE2_LIKE,
) -> List[OverheadPrediction]:
    """Predicted sequential overheads (Fig. 7 / Table 1 companion numbers)."""

    chosen = list(schemes) if schemes is not None else list(_SEQUENTIAL_MODELS)
    predictions: List[OverheadPrediction] = []
    base_ops = fft_operations(n)
    for name in chosen:
        if name not in _SEQUENTIAL_MODELS:
            raise KeyError(f"no Section 7 model for scheme {name!r}")
        counts: OperationCounts = _SEQUENTIAL_MODELS[name](n)
        seconds = seconds_err = None
        if machine is not None:
            seconds = machine.compute_time(base_ops + counts.fault_free)
            seconds_err = machine.compute_time(base_ops + counts.with_error)
        predictions.append(
            OverheadPrediction(
                scheme=name,
                n=n,
                overhead_ratio=counts.fault_free_ratio,
                overhead_ratio_with_error=counts.with_error_ratio,
                predicted_seconds=seconds,
                predicted_seconds_with_error=seconds_err,
            )
        )
    return predictions


def predict_parallel(
    n: int,
    ranks: int,
    *,
    r: int = 1,
    machine: MachineModel = TIANHE2_LIKE,
) -> Dict[str, OverheadPrediction]:
    """Predicted per-rank parallel overheads (Section 7.3) for both variants."""

    local_n = n // ranks
    base_ops = fft_operations(n) / ranks
    out: Dict[str, OverheadPrediction] = {}
    for overlap in (False, True):
        counts = parallel_scheme_ops(local_n, r=r, overlap=overlap)
        seconds = machine.compute_time(base_ops + counts.fault_free)
        seconds_err = machine.compute_time(base_ops + counts.with_error)
        out[counts.scheme] = OverheadPrediction(
            scheme=counts.scheme,
            n=local_n,
            overhead_ratio=counts.fault_free / base_ops if base_ops else 0.0,
            overhead_ratio_with_error=counts.with_error / base_ops if base_ops else 0.0,
            predicted_seconds=seconds,
            predicted_seconds_with_error=seconds_err,
        )
    return out

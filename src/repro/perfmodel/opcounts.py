"""Operation counts from Section 7 of the paper.

Conventions (Section 7 preamble): one real addition or multiplication is the
unit.  A complex multiplication costs 6 units (``c1``), a complex addition 2
units (``c2``) and a complex division 11 units (``8 r1 + 3 r2``).  The FFT
itself costs roughly ``5 N log2 N`` units.

All formulas below return *units of real operations*; divide by
:func:`fft_operations` to obtain the relative overhead the paper's Fig. 7
plots, or feed them to a machine model to get predicted seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = [
    "COMPLEX_MUL_OPS",
    "COMPLEX_ADD_OPS",
    "COMPLEX_DIV_OPS",
    "fft_operations",
    "OperationCounts",
    "offline_scheme_ops",
    "online_scheme_ops",
    "parallel_scheme_ops",
    "sequential_space_overhead",
    "parallel_space_overhead_ratio",
    "communication_overhead_ratio",
]

#: Real operations per complex multiplication (``c1`` in the paper).
COMPLEX_MUL_OPS = 6
#: Real operations per complex addition (``c2``).
COMPLEX_ADD_OPS = 2
#: Real operations per complex division (``8 r1 + 3 r2``).
COMPLEX_DIV_OPS = 11


def fft_operations(n: int) -> float:
    """The paper's baseline cost of an ``n``-point FFT: ``5 n log2 n``."""

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return 0.0
    return 5.0 * n * float(np.log2(n))


@dataclass(frozen=True)
class OperationCounts:
    """Overhead of a scheme in real operations.

    ``fault_free`` is the overhead added to an error-free run; ``with_error``
    is the *total extra* cost when one error occurs (overhead plus recovery).
    """

    scheme: str
    n: int
    fault_free: float
    with_error: float

    @property
    def fault_free_ratio(self) -> float:
        """Fault-free overhead relative to the FFT itself (Fig. 7's y-axis)."""

        base = fft_operations(self.n)
        return self.fault_free / base if base else 0.0

    @property
    def with_error_ratio(self) -> float:
        base = fft_operations(self.n)
        return self.with_error / base if base else 0.0


# ----------------------------------------------------------------------
# sequential schemes (Sections 7.1.1 - 7.1.4)
# ----------------------------------------------------------------------

def offline_scheme_ops(n: int, *, memory_ft: bool = False) -> OperationCounts:
    """Overhead of the (optimized) offline scheme.

    Computational FT only (Section 7.1.1): encoding ``rA`` costs 27N, CCG 8N
    and CCV 2N, i.e. 37N in total; a detected error forces a full restart
    plus re-verification (``5 N log2 N + 39N`` extra).  With memory FT
    (Section 7.1.3) the extra ``r2' x`` checksum adds 4N, and a restart costs
    ``5 N log2 N + 43N``.
    """

    n = ensure_positive_int(n, name="n")
    encode = 27.0 * n
    ccg = 8.0 * n
    ccv = 2.0 * n
    fault_free = encode + ccg + ccv  # 37 N
    recovery = fft_operations(n) + fault_free + 2.0 * n  # restart + re-verify
    if memory_ft:
        fault_free += 4.0 * n  # r2' x
        recovery = fft_operations(n) + fault_free + 2.0 * n
    return OperationCounts(
        scheme="opt-offline+mem" if memory_ft else "opt-offline",
        n=n,
        fault_free=fault_free,
        with_error=fault_free + recovery,
    )


def online_scheme_ops(n: int, *, memory_ft: bool = False) -> OperationCounts:
    """Overhead of the optimized online scheme (Sections 7.1.2 and 7.1.4).

    Computational FT: DMR on the twiddle multiplication (12N) plus CCG+CCV
    for both ABFT layers (2 x (8N + 2N)) = 32N.  With memory FT, the modified
    second checksum (4N), one extra MCG+MCV pair (6N), one extra CMCV (2N)
    and the intermediate-copy pass (2N) raise it to 46N.  Recovery recomputes
    a Theta(sqrt(N))-point sub-FFT, which is negligible, so the with-error
    cost equals the fault-free cost up to ``O(sqrt(N) log N)``.
    """

    n = ensure_positive_int(n, name="n")
    dmr_twiddle = 12.0 * n
    abft_layers = 2.0 * (8.0 * n + 2.0 * n)
    fault_free = dmr_twiddle + abft_layers  # 32 N
    if memory_ft:
        fault_free += 4.0 * n + 6.0 * n + 2.0 * n + 2.0 * n  # 46 N
    sqrt_n = max(int(np.sqrt(n)), 2)
    recovery = fft_operations(sqrt_n)
    return OperationCounts(
        scheme="opt-online+mem" if memory_ft else "opt-online",
        n=n,
        fault_free=fault_free,
        with_error=fault_free + recovery,
    )


# ----------------------------------------------------------------------
# parallel scheme (Sections 7.3 - 7.5)
# ----------------------------------------------------------------------

def parallel_scheme_ops(local_n: int, *, r: int = 1, overlap: bool = False) -> OperationCounts:
    """Per-rank overhead of the parallel online scheme (Section 7.3).

    ``local_n`` is the per-rank data size ``N/p``.  Without overlap the
    scheme costs 96n (``r = 1``) or ``116n + 5 n log2 r`` (``r != 1``); the
    communication-computation overlap hides ``2 CMCGs + 2 MCVs + 1 TM``
    (40n), leaving 56n / ``76n + 5 n log2 r``.
    """

    n = ensure_positive_int(local_n, name="local_n")
    r = ensure_positive_int(r, name="r")
    if r == 1:
        fault_free = 96.0 * n
    else:
        fault_free = 116.0 * n + 5.0 * n * float(np.log2(r))
    if overlap:
        fault_free -= 40.0 * n  # 2 * (12n + 2n) + 12n hidden behind communication
    sqrt_n = max(int(np.sqrt(n)), 2)
    recovery = fft_operations(sqrt_n)
    name = "parallel-opt-ft-fftw" if overlap else "parallel-ft-fftw"
    return OperationCounts(
        scheme=name, n=n, fault_free=fault_free, with_error=fault_free + recovery
    )


def sequential_space_overhead(n: int) -> int:
    """Extra complex elements needed by the sequential scheme: ``O(sqrt(N))``.

    Checksums for the two sub-FFT families (4m + 4k elements with
    ``m, k ~ sqrt(N)``) plus the buffered intermediate-output checksums.
    """

    n = ensure_positive_int(n, name="n")
    root = int(np.ceil(np.sqrt(n)))
    return 8 * root


def parallel_space_overhead_ratio(ranks: int) -> float:
    """Relative extra memory of the parallel scheme: ``6/p`` (Section 7.4)."""

    ranks = ensure_positive_int(ranks, name="ranks")
    return 6.0 / ranks


def communication_overhead_ratio(local_n: int, ranks: int) -> float:
    """Relative growth of communicated bytes: ``2p/n`` per rank (Section 7.5)."""

    local_n = ensure_positive_int(local_n, name="local_n")
    ranks = ensure_positive_int(ranks, name="ranks")
    return 2.0 * ranks / local_n

"""Empirical round-off study (Table 4 of the paper).

Table 4 checks how well the Section 8 threshold estimate covers the actual
fault-free checksum residuals: many independent m-point (and k-point)
sub-FFT verifications are executed on random inputs and the maximum residual
is compared against the estimated threshold, while the throughput (fraction
of fault-free verifications accepted) is measured.

The functions here perform exactly that measurement on the two layers of the
online scheme, for any input distribution, and are reused by the
``bench_table4_roundoff`` harness and the statistical tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.checksums import computational_weights, input_checksum_weights, weighted_sum
from repro.core.thresholds import ThresholdPolicy
from repro.fftlib.two_layer import TwoLayerPlan
from repro.utils.rng import RandomSource

__all__ = [
    "ResidualStudy",
    "measure_stage1_residuals",
    "measure_stage2_residuals",
    "throughput_from_residuals",
]


@dataclass
class ResidualStudy:
    """Residuals of many fault-free sub-FFT verifications plus the estimate."""

    label: str
    sub_size: int
    residuals: np.ndarray
    estimated_eta: float

    @property
    def max_residual(self) -> float:
        return float(np.max(self.residuals)) if self.residuals.size else 0.0

    @property
    def throughput(self) -> float:
        """Fraction of fault-free verifications below the estimated threshold."""

        return throughput_from_residuals(self.residuals, self.estimated_eta)

    def summary(self) -> dict:
        return {
            "label": self.label,
            "sub_size": self.sub_size,
            "samples": int(self.residuals.size),
            "max_residual": self.max_residual,
            "estimated_eta": self.estimated_eta,
            "throughput": self.throughput,
        }


def throughput_from_residuals(residuals: np.ndarray, eta: float) -> float:
    """Fraction of residuals that do *not* trigger a (false) detection."""

    residuals = np.asarray(residuals)
    if residuals.size == 0:
        return 1.0
    return float(np.mean(residuals <= eta))


def _make_input(distribution: str, n: int, source: RandomSource) -> np.ndarray:
    if distribution == "uniform":
        return source.uniform_complex(n)
    if distribution == "normal":
        return source.normal_complex(n)
    raise ValueError("distribution must be 'uniform' or 'normal'")


def measure_stage1_residuals(
    n: int,
    *,
    runs: int = 10,
    distribution: str = "uniform",
    thresholds: Optional[ThresholdPolicy] = None,
    seed: Optional[int] = None,
) -> ResidualStudy:
    """Fault-free residuals of all first-part (m-point) verifications.

    Each run performs the full first part of an ``n``-point two-layer
    transform, i.e. ``k`` m-point sub-FFT verifications, so ``runs * k``
    residual samples are collected (the paper uses 1000 runs of a 2^25-point
    FFT for 8 192 000 samples; scale ``n`` and ``runs`` to taste).
    """

    thresholds = thresholds or ThresholdPolicy()
    plan = TwoLayerPlan(n)
    m, k = plan.m, plan.k
    r_m = computational_weights(m)
    c_m = input_checksum_weights(m)
    source = RandomSource(seed)

    residuals = np.empty(runs * k, dtype=np.float64)
    eta = 0.0
    for run in range(runs):
        x = _make_input(distribution, n, source)
        work = plan.gather_input(x)
        ccg = weighted_sum(c_m, work, axis=0)
        intermediate = plan.stage1(np.array(work))
        out_ck = weighted_sum(r_m, intermediate, axis=0)
        residuals[run * k:(run + 1) * k] = np.abs(out_ck - ccg)
        eta = max(eta, thresholds.eta_stage1(m, x))
    return ResidualStudy(
        label=f"stage1[{distribution}]", sub_size=m, residuals=residuals, estimated_eta=eta
    )


def measure_stage2_residuals(
    n: int,
    *,
    runs: int = 10,
    distribution: str = "uniform",
    thresholds: Optional[ThresholdPolicy] = None,
    seed: Optional[int] = None,
) -> ResidualStudy:
    """Fault-free residuals of all second-part (k-point) verifications."""

    thresholds = thresholds or ThresholdPolicy()
    plan = TwoLayerPlan(n)
    m, k = plan.m, plan.k
    r_k = computational_weights(k)
    c_k = input_checksum_weights(k)
    source = RandomSource(seed)

    residuals = np.empty(runs * m, dtype=np.float64)
    eta = 0.0
    for run in range(runs):
        x = _make_input(distribution, n, source)
        work = plan.gather_input(x)
        intermediate = plan.stage1(np.array(work))
        twiddled = plan.apply_twiddle(intermediate)
        ccg = weighted_sum(c_k, twiddled, axis=1)
        result = plan.stage2(twiddled)
        out_ck = weighted_sum(r_k, result, axis=1)
        residuals[run * m:(run + 1) * m] = np.abs(out_ck - ccg)
        eta = max(eta, thresholds.eta_stage2(k, m, x))
    return ResidualStudy(
        label=f"stage2[{distribution}]", sub_size=k, residuals=residuals, estimated_eta=eta
    )

"""Round-off statistics and coverage metrics (Sections 8 and 9.4).

``roundoff``
    Empirical measurement of fault-free checksum residuals, the estimated
    thresholds of Section 8, and throughput evaluation (Table 4).
``metrics``
    Output-error metrics, detection-threshold search (Table 5) and the
    error-distribution summaries of Table 6.
"""

from repro.analysis.roundoff import (
    ResidualStudy,
    measure_stage1_residuals,
    measure_stage2_residuals,
    throughput_from_residuals,
)
from repro.analysis.metrics import (
    DetectionSearchResult,
    error_distribution_row,
    minimal_detectable_magnitude,
    relative_inf_error,
)

__all__ = [
    "ResidualStudy",
    "measure_stage1_residuals",
    "measure_stage2_residuals",
    "throughput_from_residuals",
    "DetectionSearchResult",
    "error_distribution_row",
    "minimal_detectable_magnitude",
    "relative_inf_error",
]

"""Output-error metrics and detection-ability searches (Tables 5 and 6).

``minimal_detectable_magnitude`` reproduces the Table 5 methodology: inject
an error of a given magnitude at a fixed position and observe whether the
scheme flags it; sweep the magnitude downwards (decade by decade, as in the
paper) until detection stops.

``error_distribution_row`` reproduces one row of Table 6: given the relative
output errors of a fault-injection campaign, report the fraction of runs
whose error exceeds each bound (with failed corrections counted as
infinite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.faults.campaign import relative_inf_error

__all__ = [
    "relative_inf_error",
    "DetectionSearchResult",
    "minimal_detectable_magnitude",
    "error_distribution_row",
]


@dataclass(frozen=True)
class DetectionSearchResult:
    """Result of a minimal-detectable-magnitude search."""

    label: str
    magnitudes: Sequence[float]
    detected: Sequence[bool]

    @property
    def minimal_detected(self) -> Optional[float]:
        """The smallest injected magnitude that was still detected."""

        detected_magnitudes = [m for m, d in zip(self.magnitudes, self.detected) if d]
        return min(detected_magnitudes) if detected_magnitudes else None


def minimal_detectable_magnitude(
    detect: Callable[[float], bool],
    *,
    magnitudes: Optional[Iterable[float]] = None,
    label: str = "",
) -> DetectionSearchResult:
    """Sweep injected-error magnitudes and record which are detected.

    Parameters
    ----------
    detect:
        ``detect(magnitude) -> bool`` runs the protected transform with an
        error of the given magnitude injected and returns whether the scheme
        flagged it.
    magnitudes:
        Magnitudes to test; defaults to the paper's decades
        ``10^-1 ... 10^-9``.
    """

    if magnitudes is None:
        magnitudes = [10.0 ** (-e) for e in range(1, 10)]
    magnitudes = list(magnitudes)
    results = [bool(detect(mag)) for mag in magnitudes]
    return DetectionSearchResult(label=label, magnitudes=magnitudes, detected=results)


def error_distribution_row(
    relative_errors: Sequence[float],
    *,
    uncorrected: Sequence[bool],
    bounds: Sequence[float] = (1e-6, 1e-8, 1e-10, 1e-12),
) -> Dict[str, float]:
    """One row of Table 6.

    Returns the fraction of runs that remained uncorrected plus, for each
    bound, the fraction of runs whose relative output error exceeds it
    (uncorrected runs count as infinite error, as in the paper).
    """

    errors = list(relative_errors)
    flags = list(uncorrected)
    if len(errors) != len(flags):
        raise ValueError("relative_errors and uncorrected must have the same length")
    total = len(errors)
    if total == 0:
        raise ValueError("at least one run is required")

    effective = [float("inf") if bad else err for err, bad in zip(errors, flags)]
    row: Dict[str, float] = {"uncorrected": sum(flags) / total}
    for bound in bounds:
        row[f"> {bound:g}"] = sum(1 for err in effective if err > bound) / total
    return row

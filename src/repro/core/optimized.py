"""The optimized online ABFT scheme (Section 4 / Fig. 3).

This is the scheme the paper ships as FT-FFTW.  It keeps the two-layer
online structure of :class:`repro.core.online.OnlineABFT` but applies the
four sequential optimizations:

1. **Modified memory checksums** (Section 4.1): the computational input
   checksum vector ``rA`` doubles as the first locating weight vector, so
   the input pass that produces the per-sub-FFT computational checksums also
   produces the memory checksums (CMCG); the second locating vector is
   ``j * (rA)_j``.
2. **Verification postponing** (Section 4.2): the memory verification of a
   first-part sub-FFT's input is postponed into (and absorbed by) its
   computational verification - only when that fails is the input checksum
   consulted to decide between a memory and a computational error.
3. **Incremental checksum generation** (Section 4.3): the memory checksums
   of the second-part inputs are accumulated while the first-part outputs
   are being produced, instead of re-reading the whole intermediate array.
4. **Contiguous buffering** (Section 4.4): the strided columns of each
   first-part group are gathered into a contiguous buffer once and all
   checksum/FFT work happens on that buffer.

Each optimization can be disabled individually through
:class:`repro.core.base.OptimizationFlags` for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import FTScheme, OptimizationFlags
from repro.core.checksums import (
    input_checksum_weights,
    repair_single_error,
    weighted_sum,
)
from repro.core.constants import SchemeConstants
from repro.core.detection import FTReport
from repro.core.dmr import dmr_elementwise
from repro.core.thresholds import ThresholdPolicy, residual_exceeds
from repro.faults.models import FaultSite
from repro.fftlib.two_layer import TwoLayerPlan

__all__ = ["OptimizedOnlineABFT"]


class OptimizedOnlineABFT(FTScheme):
    """Optimized online two-layer ABFT FFT (the paper's FT-FFTW core)."""

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        memory_ft: bool = True,
        thresholds: Optional[ThresholdPolicy] = None,
        flags: Optional[OptimizationFlags] = None,
        backend: Optional[str] = None,
        real: bool = False,
        constants: Optional[SchemeConstants] = None,
    ) -> None:
        super().__init__(n, thresholds=thresholds, real=real)
        self.plan = TwoLayerPlan(n, m, k, backend=backend)
        self.memory_ft = bool(memory_ft)
        self.flags = flags or OptimizationFlags()
        self.name = "opt-online+mem" if memory_ft else "opt-online"
        # Plan-time constants: every weight vector below is data-independent,
        # so it is built once here (or handed down by FTPlan) instead of on
        # every run.  A live injector still sees the DMR-protected per-run
        # regeneration of the rA vectors inside _run.
        if (
            constants is None
            or constants.n != self.n
            or constants.m != self.plan.m
            or constants.c_m is None
            or (self.memory_ft and (constants.w1_m is None or constants.u1_k is None))
            # The modified-checksum flavor must match the flags (w1_m aliases
            # c_m exactly when the Section 4.1 reuse is in effect).
            or (
                self.memory_ft
                and bool(self.flags.modified_checksums) != (constants.w1_m is constants.c_m)
            )
            or constants.real != self.real
        ):
            constants = SchemeConstants.for_online(
                self.n, self.plan.m, self.plan.k,
                optimized=True,
                memory_ft=self.memory_ft,
                modified_checksums=bool(self.flags.modified_checksums),
                real=self.real,
            )
        self.constants = constants

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.plan.m

    @property
    def k(self) -> int:
        return self.plan.k

    # ------------------------------------------------------------------
    def _run(self, x: np.ndarray, injector, report: FTReport) -> np.ndarray:
        plan = self.plan
        m, k = plan.m, plan.k
        flags = self.flags
        consts = self.constants
        group = max(1, int(flags.group_size))
        retries = max(1, int(flags.max_retries))
        # A live injector may target the checksum-vector generation
        # (CHECKSUM_COMPUTE), so the rA vectors are regenerated under DMR
        # exactly as in the paper; the fault-free fast path uses the
        # bit-identical plan-time constants and skips per-site visit loops.
        live = getattr(injector, "is_live", True)

        # ----- checksum vectors (optimized evaluation, DMR protected) --------
        r_m = consts.r_m
        r_k = consts.r_k
        if live:
            c_m = dmr_elementwise(
                lambda: input_checksum_weights(m),
                injector=injector,
                site=FaultSite.CHECKSUM_COMPUTE,
                index=0,
                report=report,
                label="checksum-vector-dmr",
            )
            c_k = dmr_elementwise(
                lambda: input_checksum_weights(k),
                injector=injector,
                site=FaultSite.CHECKSUM_COMPUTE,
                index=1,
                report=report,
                label="checksum-vector-dmr",
            )
        else:
            c_m = consts.c_m
            c_k = consts.c_k

        # One robust sample of the input feeds every x-derived threshold
        # (sigma0 is exactly what component_sigma would compute).
        x_rms = self.thresholds.magnitude_rms(x)
        sigma0 = float(x_rms / np.sqrt(2.0))
        eta1 = self.thresholds.eta_stage1(m, x, sigma0=sigma0)
        eta2 = self.thresholds.eta_stage2(k, m, x, sigma0=sigma0)

        # Locating weight vectors for the input columns (length m) and for the
        # intermediate/output rows (length k).  In live mode the modified
        # pairs are re-derived from the DMR-verified rA vectors (the values
        # are identical; only the provenance differs).
        if flags.modified_checksums:
            if live:
                w1_m = c_m
                w2_m = c_m * np.arange(1, m + 1, dtype=np.float64)
                w1_k_out = c_k
                w2_k_out = c_k * np.arange(1, k + 1, dtype=np.float64)
            else:
                w1_m, w2_m = consts.w1_m, consts.w2_m
                w1_k_out, w2_k_out = consts.w1_k, consts.w2_k
        else:
            w1_m, w2_m = consts.w1_m, consts.w2_m
            w1_k_out, w2_k_out = consts.w1_k, consts.w2_k
        # The incremental row checksums always use the classic pair: each
        # first-part output element simply adds itself into its row slot.
        u1_k, u2_k = consts.u1_k, consts.u2_k

        work = np.array(plan.gather_input(x))

        # ----- CMCG: one pass produces CCG + memory checksums of the input ----
        ccg1 = weighted_sum(c_m, work, axis=0)  # also the first memory checksum
        if self.memory_ft:
            if flags.modified_checksums:
                in_s1 = ccg1
            else:
                in_s1 = weighted_sum(w1_m, work, axis=0)
            in_s2 = weighted_sum(w2_m, work, axis=0)
            eta_mem_col = self.thresholds.eta_memory(
                w1_m, work, weight_rms=consts.w1_m_rms, data_rms=x_rms
            )
        else:
            in_s1 = in_s2 = None
            eta_mem_col = 0.0

        # Faults strike only after the protection exists.
        if live:
            injector.visit(FaultSite.INPUT, work)
            injector.visit(FaultSite.STAGE1_INPUT, work)

        # ----- part 1: k m-point FFTs, verified per sub-FFT -------------------
        if not live:
            # Fault-free fast path: identical algebra (same checksum passes,
            # same DMR twiddle, same verification thresholds) but executed
            # whole-stage - all sub-FFTs as one strided batched call, every
            # checksum generation/verification a single GEMV/reduction -
            # instead of group-by-group.  Group granularity only matters for
            # interleaving with a live injector's fault sites.
            return self._run_vectorized(
                work, injector, report, c_m, c_k, r_m, r_k,
                w1_m, w2_m, w1_k_out, w2_k_out, u1_k, u2_k,
                ccg1, in_s1, in_s2, eta1, eta2, eta_mem_col, retries,
            )

        intermediate = np.empty_like(work)
        # Incremental checksums of the second-part inputs (rows), built as the
        # first-part outputs appear (Section 4.3).
        inc_s1 = np.zeros(m, dtype=np.complex128) if self.memory_ft else None
        inc_s2 = np.zeros(m, dtype=np.complex128) if self.memory_ft else None

        for start in range(0, k, group):
            stop = min(start + group, k)
            cols = slice(start, stop)

            if not flags.postpone_verification and self.memory_ft:
                # Un-postponed variant (ablation): verify inputs before use.
                self._verify_input_columns(
                    work, start, stop, w1_m, w2_m, in_s1, in_s2, eta_mem_col, report
                )

            if flags.contiguous_buffer:
                sub = plan.stage1_columns(work, start, stop)
            else:
                sub = plan.inner_plan.execute_batch(work[:, cols], axis=0)

            for i in range(start, stop):
                injector.visit(FaultSite.STAGE1_COMPUTE, sub[:, i - start], index=i)

            # Vectorized group verification: one GEMV for the output
            # checksums, one comparison; only violating sub-FFTs (a
            # non-finite or above-threshold residual) drop into the scalar
            # recovery path.
            residuals = np.abs(weighted_sum(r_m, sub, axis=0) - ccg1[cols])
            report.bump("verifications", stop - start)
            for local in np.nonzero(residual_exceeds(residuals, eta1))[0]:
                i = start + int(local)
                report.record_verification("stage1-ccv", i, float(residuals[local]), eta1, True)
                ok = self._recover_stage1(
                    work, sub, i, start, c_m, r_m, eta1,
                    w1_m, w2_m, in_s1, in_s2, eta_mem_col, injector, report, retries,
                )
                if not ok:
                    report.record_uncorrectable(f"stage1 sub-FFT {i} could not be corrected")

            intermediate[:, cols] = sub

            if self.memory_ft:
                if flags.incremental_checksums:
                    # Each output element adds itself to its row slot.
                    inc_s1 += np.sum(sub, axis=1)
                    inc_s2 += sub @ np.arange(start + 1, stop + 1, dtype=np.float64)
                # (non-incremental variant regenerates them after part 1)

        if self.memory_ft and not flags.incremental_checksums:
            inc_s1 = weighted_sum(u1_k, intermediate, axis=1)
            inc_s2 = weighted_sum(u2_k, intermediate, axis=1)

        # Threshold derived from the (still clean) intermediate data *before*
        # faults may strike it.
        eta_mem_row = (
            self.thresholds.eta_memory(u1_k, intermediate, weight_rms=consts.u1_k_rms)
            if self.memory_ft
            else 0.0
        )

        injector.visit(FaultSite.INTERMEDIATE, intermediate)

        # ----- part 2: m k-point FFTs, twiddle DMR, verified per sub-FFT ------
        result = np.empty_like(intermediate)
        out_s1 = np.empty(m, dtype=np.complex128) if self.memory_ft else None
        out_s2 = np.empty(m, dtype=np.complex128) if self.memory_ft else None

        for start in range(0, m, group):
            stop = min(start + group, m)
            rows = slice(start, stop)

            # MCV of the second-part inputs (rows of the intermediate array),
            # against the incrementally built checksums.
            if self.memory_ft:
                self._verify_intermediate_rows(
                    intermediate, start, stop, u1_k, u2_k, inc_s1, inc_s2, eta_mem_row, report
                )

            # Twiddle multiplication under DMR (these rows only).
            twiddled = dmr_elementwise(
                lambda rows=rows: intermediate[rows, :] * plan.twiddles[rows, :],
                injector=injector,
                site=FaultSite.TWIDDLE_COMPUTE,
                index=start,
                report=report,
                label="twiddle-dmr",
            )
            injector.visit(FaultSite.STAGE2_INPUT, twiddled, index=start)

            # CCG for these k-point FFTs.
            ccg2 = weighted_sum(c_k, twiddled, axis=1)

            sub = plan.outer_plan.execute_batch(twiddled, axis=1)
            for j in range(start, stop):
                injector.visit(FaultSite.STAGE2_COMPUTE, sub[j - start, :], index=j)

            residuals = np.abs(weighted_sum(r_k, sub, axis=1) - ccg2)
            report.bump("verifications", stop - start)
            for local in np.nonzero(residual_exceeds(residuals, eta2))[0]:
                j = start + int(local)
                report.record_verification("stage2-ccv", j, float(residuals[local]), eta2, True)
                ok = self._recover_stage2(
                    twiddled, sub, j, start, c_k, r_k, eta2, injector, report, retries
                )
                if not ok:
                    report.record_uncorrectable(f"stage2 sub-FFT {j} could not be corrected")

            result[rows, :] = sub

            if self.memory_ft:
                out_s1[rows] = weighted_sum(w1_k_out, sub, axis=1)
                out_s2[rows] = weighted_sum(w2_k_out, sub, axis=1)

        # ----- final output and CMCV -------------------------------------------
        output = plan.scatter_output(result)
        if self.real:
            # Packed-spectrum OUTPUT site + locating MCV (base helper); the
            # full-layout per-column checksums refer to bins about to be
            # discarded, so the packed pair takes over output protection.
            return self._finalize_output(output, injector, report)
        injector.visit(FaultSite.OUTPUT, output)

        if self.memory_ft:
            self._final_output_check(
                output, w1_k_out, w2_k_out, out_s1, out_s2, report,
                weight_rms=consts.w1_k_rms,
            )

        return output

    # ------------------------------------------------------------------
    # fault-free fast path
    # ------------------------------------------------------------------
    def _run_vectorized(
        self, work, injector, report, c_m, c_k, r_m, r_k,
        w1_m, w2_m, w1_k_out, w2_k_out, u1_k, u2_k,
        ccg1, in_s1, in_s2, eta1, eta2, eta_mem_col, retries,
    ) -> np.ndarray:
        """Whole-stage execution of the optimized scheme (no live injector).

        Performs exactly the passes of Fig. 3 - CMCG (done by the caller),
        per-sub-FFT CCV, incremental row MCG, pre-part-2 MCV, DMR twiddle,
        CCG/CCV of part 2, output CMCG and final CMCV - but each pass is one
        batched call over the full working matrix instead of a group loop.
        """

        plan = self.plan
        m, k = plan.m, plan.k
        consts = self.constants

        if self.memory_ft and not self.flags.postpone_verification:
            # Un-postponed ablation variant: verify all inputs before use.
            self._verify_input_columns(
                work, 0, k, w1_m, w2_m, in_s1, in_s2, eta_mem_col, report
            )

        # ----- part 1: all k m-point sub-FFTs as one strided batched call --
        intermediate = plan.stage1(work)
        residuals = np.abs(weighted_sum(r_m, intermediate, axis=0) - ccg1)
        report.bump("verifications", k)
        for local in np.nonzero(residual_exceeds(residuals, eta1))[0]:
            i = int(local)
            report.record_verification("stage1-ccv", i, float(residuals[i]), eta1, True)
            ok = self._recover_stage1(
                work, intermediate, i, 0, c_m, r_m, eta1,
                w1_m, w2_m, in_s1, in_s2, eta_mem_col, injector, report, retries,
            )
            if not ok:
                report.record_uncorrectable(f"stage1 sub-FFT {i} could not be corrected")

        if self.memory_ft:
            # Incremental row checksums (Section 4.3), one reduction each,
            # then the pre-part-2 MCV of the intermediate rows.
            inc_s1 = weighted_sum(u1_k, intermediate, axis=1)
            inc_s2 = weighted_sum(u2_k, intermediate, axis=1)
            eta_mem_row = self.thresholds.eta_memory(
                u1_k, intermediate, weight_rms=consts.u1_k_rms
            )
            self._verify_intermediate_rows(
                intermediate, 0, m, u1_k, u2_k, inc_s1, inc_s2, eta_mem_row, report
            )

        # ----- part 2: DMR twiddle + all m k-point sub-FFTs, batched -------
        twiddled = dmr_elementwise(
            lambda: intermediate * plan.twiddles,
            report=report,
            label="twiddle-dmr",
        )
        ccg2 = weighted_sum(c_k, twiddled, axis=1)
        result = plan.stage2(twiddled)
        residuals2 = np.abs(weighted_sum(r_k, result, axis=1) - ccg2)
        report.bump("verifications", m)
        for local in np.nonzero(residual_exceeds(residuals2, eta2))[0]:
            j = int(local)
            report.record_verification("stage2-ccv", j, float(residuals2[j]), eta2, True)
            ok = self._recover_stage2(
                twiddled, result, j, 0, c_k, r_k, eta2, injector, report, retries
            )
            if not ok:
                report.record_uncorrectable(f"stage2 sub-FFT {j} could not be corrected")

        output = plan.scatter_output(result)
        if self.real:
            return self._finalize_output(output, injector, report)
        if self.memory_ft:
            out_s1 = weighted_sum(w1_k_out, result, axis=1)
            out_s2 = weighted_sum(w2_k_out, result, axis=1)
            self._final_output_check(
                output, w1_k_out, w2_k_out, out_s1, out_s2, report,
                weight_rms=consts.w1_k_rms,
            )
        return output

    # ------------------------------------------------------------------
    # recovery helpers
    # ------------------------------------------------------------------
    def _recover_stage1(
        self, work, sub, index, group_start, c_m, r_m, eta1,
        w1_m, w2_m, in_s1, in_s2, eta_mem, injector, report, retries,
    ) -> bool:
        for _ in range(retries):
            if self.memory_ft:
                column = work[:, index]
                # Same suppressed-overflow contract as weighted_sum: a
                # checksum over corrupted data (e.g. an exponent-bit flip
                # to ~1e308) may legitimately overflow; the non-finite
                # residual is treated as a mismatch, not a warning.
                with np.errstate(over="ignore", invalid="ignore"):
                    residual = float(np.abs(np.dot(w1_m, column) - in_s1[index]))
                if residual_exceeds(residual, eta_mem):
                    report.record_verification("stage1-recovery-mcv", index, residual, eta_mem, True)
                    repaired = repair_single_error(column, w1_m, w2_m, in_s1[index], in_s2[index])
                    if repaired is None:
                        report.record_uncorrectable(
                            f"stage1 input column {index}: corruption could not be located"
                        )
                        return False
                    report.record_correction(
                        "memory-correct", "stage1-input", index, f"element {repaired[0]} repaired"
                    )
            fresh = self.plan.stage1_single(work, index)
            injector.visit(FaultSite.STAGE1_COMPUTE, fresh, index=index)
            with np.errstate(over="ignore", invalid="ignore"):
                residual = float(np.abs(np.dot(r_m, fresh) - np.dot(c_m, work[:, index])))
            ok = residual <= eta1
            report.record_verification("stage1-ccv-retry", index, residual, eta1, not ok)
            report.record_correction("recompute", "stage1", index, "m-point sub-FFT recomputed")
            if ok:
                sub[:, index - group_start] = fresh
                return True
        return False

    def _recover_stage2(
        self, twiddled, sub, index, group_start, c_k, r_k, eta2, injector, report, retries
    ) -> bool:
        """Recover a second-part sub-FFT.

        ``twiddled`` only holds the current group of rows, so the row for
        ``index`` lives at ``index - group_start``.  The input rows were
        verified (and if needed repaired) right before the twiddle stage, so
        a failing CCV here is attributed to a computational error and the
        sub-FFT is recomputed from the DMR-protected twiddled row.
        """

        local = index - group_start
        for _ in range(retries):
            row = np.ascontiguousarray(twiddled[local, :])
            fresh = self.plan.outer_plan.execute(row)
            injector.visit(FaultSite.STAGE2_COMPUTE, fresh, index=index)
            with np.errstate(over="ignore", invalid="ignore"):
                residual = float(np.abs(np.dot(r_k, fresh) - np.dot(c_k, row)))
            ok = residual <= eta2
            report.record_verification("stage2-ccv-retry", index, residual, eta2, not ok)
            report.record_correction("recompute", "stage2", index, "k-point sub-FFT recomputed")
            if ok:
                sub[local, :] = fresh
                return True
        return False

    # ------------------------------------------------------------------
    # memory verification helpers
    # ------------------------------------------------------------------
    def _verify_input_columns(
        self, work, start, stop, w1_m, w2_m, in_s1, in_s2, eta, report
    ) -> None:
        current = weighted_sum(w1_m, work[:, start:stop], axis=0)
        residuals = np.abs(current - in_s1[start:stop])
        report.bump("memory-verifications", stop - start)
        for local in np.nonzero(residual_exceeds(residuals, eta))[0]:
            index = int(start + local)
            report.record_verification("stage1-input-mcv", index, float(residuals[local]), eta, True)
            repaired = repair_single_error(work[:, index], w1_m, w2_m, in_s1[index], in_s2[index])
            if repaired is None:
                report.record_uncorrectable(f"stage1 input column {index} could not be located")
                continue
            report.record_correction("memory-correct", "stage1-input", index, f"element {repaired[0]} repaired")

    def _verify_intermediate_rows(
        self, intermediate, start, stop, u1_k, u2_k, inc_s1, inc_s2, eta, report
    ) -> None:
        current = weighted_sum(u1_k, intermediate[start:stop, :], axis=1)
        residuals = np.abs(current - inc_s1[start:stop])
        report.bump("memory-verifications", stop - start)
        for local in np.nonzero(residual_exceeds(residuals, eta))[0]:
            index = int(start + local)
            report.record_verification("stage2-input-mcv", index, float(residuals[local]), eta, True)
            repaired = repair_single_error(
                intermediate[index, :], u1_k, u2_k, inc_s1[index], inc_s2[index]
            )
            if repaired is None:
                report.record_uncorrectable(f"intermediate row {index} could not be located")
                continue
            report.record_correction("memory-correct", "stage2-input", index, f"element {repaired[0]} repaired")

    def _final_output_check(
        self, output, w1, w2, out_s1, out_s2, report, *, weight_rms=None
    ) -> None:
        """Final CMCV of the scattered output against the per-row checksums."""

        m, k = self.plan.m, self.plan.k
        view = output.reshape(k, m)
        current = weighted_sum(w1, view, axis=0)  # indexed by j2 (result row)
        eta = self.thresholds.eta_memory(w1, view, weight_rms=weight_rms)
        residuals = np.abs(current - out_s1)
        report.bump("memory-verifications", m)
        violations = residual_exceeds(residuals, eta)
        if not np.any(violations):
            return
        for j2 in np.nonzero(violations)[0]:
            j2 = int(j2)
            report.record_verification("final-cmcv", j2, float(residuals[j2]), eta, True)
            repaired = repair_single_error(view[:, j2], w1, w2, out_s1[j2], out_s2[j2])
            if repaired is None:
                report.record_uncorrectable(f"final output column {j2} could not be located")
                continue
            report.record_correction("memory-correct", "output", j2, f"element {repaired[0]} repaired")

"""Checksum algebra for ABFT FFT.

Computational checksums (Section 2.2)
-------------------------------------
The DFT is the matrix-vector product ``X = A x`` with
``A[j, l] = omega_N^{j l}``.  For a weight vector ``r`` the identity
``r . X = (r A) . x`` holds exactly in real arithmetic, so comparing the two
sides detects any computational error.  Wang & Jha showed that
``r = (omega_3^0, omega_3^1, ..., omega_3^{N-1})`` with
``omega_3 = -1/2 + sqrt(3)/2 i`` is a good choice for FFT networks; the paper
adopts the same vector.  ``rA`` has the closed form

.. math::  (rA)_j = \\frac{1 - \\omega_3^N}{1 - \\omega_3\\,\\omega_N^j},

(Section 7.1.1) which avoids an :math:`O(N^2)` encoding step.

Memory checksums (Sections 3.2 and 4.1)
---------------------------------------
A pair of weighted sums over a data vector allows a single corrupted element
to be *located* (by the ratio of the two checksum differences) and
*corrected* (by the first difference).  The classic weights are
``(1, 1, ..., 1)`` and ``(1, 2, ..., n)``; the modified weights of Section
4.1 reuse the computational input checksum vector ``rA`` as the first weight
vector (so one weighted sum serves both purposes) and ``j * (rA)_j`` as the
second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = [
    "omega3",
    "computational_weights",
    "roots_of_unity_naive",
    "roots_of_unity_split",
    "input_checksum_weights",
    "input_checksum_weights_naive",
    "memory_weights_classic",
    "memory_weights_modified",
    "halfcomplex_weights",
    "halfcomplex_sum",
    "weighted_sum",
    "locate_single_error",
    "repair_single_error",
    "ChecksumPair",
    "MemoryChecksumVectors",
]


def omega3() -> complex:
    """The first cube root of unity, ``-1/2 + (sqrt(3)/2) i``."""

    return complex(-0.5, np.sqrt(3.0) / 2.0)


def computational_weights(n: int) -> np.ndarray:
    """The computational checksum vector ``r = (omega_3^0, ..., omega_3^{n-1})``.

    The powers of ``omega_3`` cycle with period 3, so the vector is built by
    tiling the three exact values rather than by repeated multiplication
    (which would accumulate rounding error over long vectors).
    """

    n = ensure_positive_int(n, name="n")
    w3 = omega3()
    cycle = np.array([1.0 + 0.0j, w3, w3 * w3], dtype=np.complex128)
    reps = int(np.ceil(n / 3))
    return np.tile(cycle, reps)[:n]


def roots_of_unity_naive(n: int) -> np.ndarray:
    """``omega_n^j`` for all ``j`` via one trigonometric call per element.

    This is the "naive" encoding path of the offline scheme: every element
    requires a sine/cosine evaluation.  The optimized schemes replace it with
    :func:`roots_of_unity_split`.
    """

    n = ensure_positive_int(n, name="n")
    return np.exp(-2j * np.pi * np.arange(n) / n)


def roots_of_unity_split(n: int) -> np.ndarray:
    """``omega_n^j`` for all ``j`` using only ``O(sqrt(n))`` trigonometric calls.

    Writing ``j = a*T + b`` with ``T ~ sqrt(n)`` gives
    ``omega_n^j = omega_n^{aT} * omega_n^b``; two small tables and an outer
    product replace the per-element trigonometry, which is the software
    analogue of the paper's "replace trigonometric functions with two complex
    multiplications" optimization (Section 7.1.1).
    """

    n = ensure_positive_int(n, name="n")
    if n == 1:
        return np.ones(1, dtype=np.complex128)
    table_size = int(np.ceil(np.sqrt(n)))
    low = np.exp(-2j * np.pi * np.arange(table_size) / n)
    high = np.exp(-2j * np.pi * (np.arange(table_size) * table_size) / n)
    combined = np.outer(high, low).reshape(-1)
    return np.ascontiguousarray(combined[:n])


def _input_checksum_from_roots(n: int, roots: np.ndarray) -> np.ndarray:
    """Evaluate the closed form ``(1 - omega_3^n) / (1 - omega_3 * omega_n^j)``."""

    w3 = omega3()
    numerator = 1.0 - w3 ** (n % 3)
    denominator = 1.0 - w3 * roots
    # The denominator vanishes only when omega_n^j == omega_3^{-1}, i.e. when
    # 3 | n and j == n/3; there the geometric series sums to n exactly.  The
    # singular entry is patched afterwards (3 does not divide a power of two,
    # so the common case never takes the fix-up branch).
    with np.errstate(divide="ignore", invalid="ignore"):
        out = numerator / denominator
    if n % 3 == 0:
        singular = np.abs(denominator) < 1e-9
        if np.any(singular):
            out[singular] = float(n)
    return out


def input_checksum_weights(n: int) -> np.ndarray:
    """The input checksum vector ``c = r A`` via the closed form (optimized path)."""

    n = ensure_positive_int(n, name="n")
    return _input_checksum_from_roots(n, roots_of_unity_split(n))


def input_checksum_weights_naive(n: int) -> np.ndarray:
    """The input checksum vector ``c = r A`` using per-element trigonometry."""

    n = ensure_positive_int(n, name="n")
    return _input_checksum_from_roots(n, roots_of_unity_naive(n))


def memory_weights_classic(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """The classic locating pair ``w1 = (1, ..., 1)``, ``w2 = (1, 2, ..., n)``."""

    n = ensure_positive_int(n, name="n")
    w1 = np.ones(n, dtype=np.complex128)
    w2 = np.arange(1, n + 1, dtype=np.float64).astype(np.complex128)
    return w1, w2


def memory_weights_modified(
    n: int, *, base: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """The modified locating pair of Section 4.1: ``w1 = rA``, ``w2_j = j * (rA)_j``.

    Reusing ``rA`` means the first memory checksum *is* the computational
    input checksum, saving one pass over the data (10N instead of 14N
    operations in the paper's accounting).  The multiplier is 1-based so a
    fault in element 0 still produces a non-zero ratio.

    When 3 divides ``n`` the closed form makes almost every ``(rA)_j`` zero,
    which would destroy the locating ability; in that case the classic
    weights are returned instead (power-of-two sizes, the paper's target,
    never hit this).
    """

    n = ensure_positive_int(n, name="n")
    w1 = input_checksum_weights(n) if base is None else np.asarray(base, dtype=np.complex128)
    if w1.shape != (n,):
        raise ValueError(f"base weight vector must have shape ({n},)")
    if np.min(np.abs(w1)) < 1e-9:
        return memory_weights_classic(n)
    multiplier = np.arange(1, n + 1, dtype=np.float64)
    return w1, w1 * multiplier


def halfcomplex_weights(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Fold a length-``n`` output weight vector onto the packed rfft layout.

    A real input has a conjugate-even spectrum, ``X[n-j] = conj(X[j])``, so
    only the ``bins = n//2 + 1`` leading bins ``P`` are stored.  Any weighted
    sum over the full spectrum folds exactly onto that layout:

    .. math::

        r \\cdot X \\;=\\; a \\cdot P + b \\cdot \\overline{P},
        \\qquad a_h = r_h, \\quad b_h = r_{n-h},

    with ``b_0 = 0`` (and ``b_{n/2} = 0`` for even ``n``, where the Nyquist
    bin is its own reflection).  In particular the computational checksum
    identity ``r . X = (rA) . x`` keeps its closed-form ``rA`` encoding: only
    the output-side reduction changes, to :func:`halfcomplex_sum`.
    """

    weights = np.asarray(weights, dtype=np.complex128)
    n = weights.shape[0]
    bins = n // 2 + 1
    a = np.ascontiguousarray(weights[:bins])
    b = np.zeros(bins, dtype=np.complex128)
    redundant = n - bins  # number of bins recovered by conjugation
    if redundant:
        b[1 : redundant + 1] = weights[n - 1 : bins - 1 : -1]
    return a, b


def halfcomplex_sum(a: np.ndarray, b: np.ndarray, packed: np.ndarray, axis: int = 0) -> np.ndarray:
    """Evaluate ``a . P + b . conj(P)`` over packed spectra (vectorised).

    The widelinear counterpart of :func:`weighted_sum` for the ``n//2 + 1``
    rfft layout; ``(a, b)`` come from :func:`halfcomplex_weights`.
    """

    with np.errstate(over="ignore", invalid="ignore"):
        return weighted_sum(a, packed, axis=axis) + weighted_sum(
            b, np.conj(packed), axis=axis
        )


def weighted_sum(weights: np.ndarray, data: np.ndarray, axis: int = 0) -> np.ndarray:
    """``sum_j weights[j] * data[j, ...]`` along ``axis`` (vectorised).

    For a 1-D ``data`` this is a scalar; for the ``(m, k)`` working matrix it
    returns the per-column (``axis=0``) or per-row (``axis=1``) checksums of
    all sub-FFT inputs/outputs in one BLAS call.
    """

    data = np.asarray(data, dtype=np.complex128)
    weights = np.asarray(weights, dtype=np.complex128)
    # Corrupted data (e.g. an exponent-bit flip producing ~1e300) can
    # legitimately overflow a checksum; verification treats a non-finite
    # checksum as a mismatch, so the overflow itself is not an error worth a
    # warning.
    with np.errstate(over="ignore", invalid="ignore"):
        if data.ndim == 1:
            if weights.shape != data.shape:
                raise ValueError("weight/data length mismatch")
            return np.dot(weights, data)
        if data.ndim != 2:
            raise ValueError("weighted_sum supports 1-D or 2-D data")
        if axis == 0:
            if weights.shape[0] != data.shape[0]:
                raise ValueError("weight length must match data.shape[0]")
            return weights @ data
        if axis == 1:
            if weights.shape[0] != data.shape[1]:
                raise ValueError("weight length must match data.shape[1]")
            return data @ weights
    raise ValueError("axis must be 0 or 1")


def locate_single_error(
    vector: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    s1: complex,
    s2: complex,
) -> Optional[Tuple[int, complex]]:
    """Locate a single corrupted element of ``vector`` from stored checksums.

    ``s1``/``s2`` are the checksums generated *before* the corruption with the
    weight vectors ``w1``/``w2`` (which must satisfy ``w2 = (j+1) * w1``).
    Returns ``(index, delta)`` where ``delta`` is the corruption added to
    ``vector[index]``, or ``None`` when no single element explains the
    discrepancy (the paper's "uncorrected due to wrong indexing" outcome).

    The dot products are evaluated on a rescaled copy of the data so that a
    corrupted element of extreme magnitude (e.g. an exponent-bit flip that
    produces ~1e300) does not overflow the weighted sums and defeat the
    location step.
    """

    vector = np.asarray(vector, dtype=np.complex128)
    n = vector.shape[0]
    w1 = np.asarray(w1, dtype=np.complex128)
    w2 = np.asarray(w2, dtype=np.complex128)

    peak = float(np.max(np.abs(vector))) if n else 0.0
    if not np.isfinite(peak):
        # An element became inf/NaN; locate it directly (the checksums cannot
        # quantify it, but a non-finite element is unambiguous).
        bad = np.nonzero(~np.isfinite(vector))[0]
        if bad.size != 1:
            return None
        return int(bad[0]), complex(np.inf)
    scale = max(peak, 1.0)

    with np.errstate(over="ignore", invalid="ignore"):
        d1 = np.dot(w1, vector / scale) - s1 / scale
        d2 = np.dot(w2, vector / scale) - s2 / scale
    if not (np.isfinite(d1) and np.isfinite(d2)):
        return None
    if d1 == 0:
        return None
    ratio = d2 / d1
    position = float(np.real(ratio)) - 1.0  # weights use 1-based multipliers
    if not np.isfinite(position):
        return None
    index = int(np.rint(position))
    if not 0 <= index < n:
        return None
    if abs(position - index) > 0.05 or abs(float(np.imag(ratio))) > 0.05:
        return None
    weight = w1[index]
    if abs(weight) < 1e-300:
        return None
    # The reported delta may overflow to inf when the corruption itself is
    # near the top of the double range; callers that need a usable value
    # (repair_single_error) reconstruct the element instead of using it.
    with np.errstate(over="ignore", invalid="ignore"):
        delta = (d1 * scale) / weight
    return index, delta


def repair_single_error(
    vector: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    s1: complex,
    s2: complex,
) -> Optional[Tuple[int, complex]]:
    """Locate and repair a single corrupted element of ``vector`` in place.

    Returns ``(index, repaired_value)`` or ``None`` when location fails.

    The repaired value is reconstructed from the stored checksum and the
    *other* elements, ``x_j = (s1 - sum_{i != j} w1_i x_i) / w1_j``, rather
    than by subtracting the estimated corruption from the corrupted value.
    The two are algebraically identical, but the reconstruction avoids the
    catastrophic cancellation that subtraction suffers when the corruption is
    many orders of magnitude larger than the data (a high exponent-bit flip),
    which is exactly the regime of the paper's Table 6 experiment.
    """

    located = locate_single_error(vector, w1, w2, s1, s2)
    if located is None:
        return None
    index, _delta = located
    w1 = np.asarray(w1, dtype=np.complex128)
    weight = w1[index]
    if abs(weight) < 1e-300:
        return None
    # Exclusion sum over the *uncorrupted* elements only: including the
    # corrupted element and subtracting it back would re-introduce the
    # cancellation this function exists to avoid.
    mask = np.ones(vector.shape[0], dtype=bool)
    mask[index] = False
    others = np.dot(w1[mask], np.asarray(vector)[mask])
    repaired = (s1 - others) / weight
    if np.isrealobj(vector):
        # Real-valued data (rfft inputs): the reconstruction's imaginary
        # part is pure round-off, so the repaired element is its real part.
        repaired = repaired.real
    vector[index] = repaired
    return index, repaired


@dataclass
class ChecksumPair:
    """Stored first/second memory checksums for one or many vectors."""

    s1: np.ndarray
    s2: np.ndarray

    def copy(self) -> "ChecksumPair":
        return ChecksumPair(np.array(self.s1, copy=True), np.array(self.s2, copy=True))

    def select(self, indices) -> "ChecksumPair":
        return ChecksumPair(np.asarray(self.s1)[indices], np.asarray(self.s2)[indices])


@dataclass
class MemoryChecksumVectors:
    """A locating checksum scheme over vectors of a fixed length.

    Parameters
    ----------
    length:
        Length of each protected vector.
    modified:
        Use the Section 4.1 modified weights (reusing ``rA``) instead of the
        classic ``(1..1)/(1..n)`` pair.
    """

    length: int
    modified: bool = True

    def __post_init__(self) -> None:
        ensure_positive_int(self.length, name="length")
        if self.modified:
            self.w1, self.w2 = memory_weights_modified(self.length)
        else:
            self.w1, self.w2 = memory_weights_classic(self.length)

    # ------------------------------------------------------------------
    def generate(self, data: np.ndarray, axis: int = 0) -> ChecksumPair:
        """Generate the stored checksum pair for ``data`` (1-D or 2-D)."""

        return ChecksumPair(
            s1=weighted_sum(self.w1, data, axis=axis),
            s2=weighted_sum(self.w2, data, axis=axis),
        )

    def residuals(self, data: np.ndarray, stored: ChecksumPair, axis: int = 0) -> np.ndarray:
        """Return ``|recomputed_s1 - stored_s1|`` per protected vector."""

        current = weighted_sum(self.w1, data, axis=axis)
        return np.abs(current - stored.s1)

    def locate(self, vector: np.ndarray, s1: complex, s2: complex) -> Optional[Tuple[int, complex]]:
        """Locate a single corrupted element of ``vector``.

        Returns ``(index, delta)`` such that subtracting ``delta`` from
        ``vector[index]`` restores the original value, or ``None`` when the
        corruption cannot be attributed to a single element (the paper's
        "uncorrected due to wrong indexing" case).
        """

        return locate_single_error(vector, self.w1, self.w2, s1, s2)

    def correct(
        self, vector: np.ndarray, s1: complex, s2: complex
    ) -> Optional[Tuple[int, complex]]:
        """Locate and correct a single corrupted element in place.

        Returns ``(index, repaired_value)`` or ``None``; the repair uses the
        cancellation-free reconstruction of :func:`repair_single_error`.
        """

        return repair_single_error(vector, self.w1, self.w2, s1, s2)

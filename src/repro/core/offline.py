"""The classical offline ABFT FFT (Algorithm 1 of the paper).

The offline scheme computes the input checksum ``c . x`` (with ``c = r A``)
before the transform, runs the *whole* FFT, and compares ``r . X`` against
the stored value at the very end.  A detected error - no matter how early it
occurred - forces a restart of the entire transform, which is exactly the
weakness the online scheme removes.

Two variants are provided:

* ``optimized=False`` ("Offline" in Fig. 7): the encoding vector ``rA`` is
  evaluated with one trigonometric call per element and, when memory fault
  tolerance is enabled, the classic ``(1..1)/(1..n)`` locating pair is
  computed in separate passes (14N operations in the paper's accounting).
* ``optimized=True`` ("Opt-Offline"): ``rA`` is evaluated with the
  closed-form/split-table method (O(sqrt(N)) trigonometric calls) and the
  locating pair reuses ``rA`` (Section 4.1), for 10N checksum operations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import FTScheme
from repro.core.checksums import (
    halfcomplex_sum,
    repair_single_error,
    weighted_sum,
)
from repro.core.constants import SchemeConstants
from repro.core.detection import FTReport
from repro.core.thresholds import ThresholdPolicy, residual_exceeds
from repro.faults.models import FaultSite
from repro.fftlib.two_layer import TwoLayerPlan

__all__ = ["OfflineABFT"]


class OfflineABFT(FTScheme):
    """Offline ABFT FFT with optional memory fault tolerance."""

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        optimized: bool = True,
        memory_ft: bool = False,
        thresholds: Optional[ThresholdPolicy] = None,
        max_retries: int = 2,
        group_size: int = 32,
        backend: Optional[str] = None,
        real: bool = False,
        constants: Optional[SchemeConstants] = None,
    ) -> None:
        super().__init__(n, thresholds=thresholds, real=real)
        self.plan = TwoLayerPlan(n, m, k, backend=backend)
        self.optimized = bool(optimized)
        self.memory_ft = bool(memory_ft)
        self.max_retries = int(max_retries)
        self.group_size = max(1, int(group_size))
        self.name = ("opt-offline" if optimized else "offline") + ("+mem" if memory_ft else "")
        # Plan-time constants: the end-to-end encoding vector (naive or
        # closed-form) and the locating pair are size-only functions, built
        # once here instead of on every run.
        if (
            constants is None
            or constants.n != self.n
            or constants.c_n is None
            or constants.real != self.real
            or (self.real and constants.hc_a is None)
        ):
            constants = SchemeConstants.for_offline(
                self.n, self.plan.m, self.plan.k,
                optimized=self.optimized,
                memory_ft=self.memory_ft,
                real=self.real,
            )
        self.constants = constants

    # ------------------------------------------------------------------
    def _execute_plan(self, x: np.ndarray, injector) -> np.ndarray:
        """One unprotected run of the full transform, visiting fault sites.

        The traversal (grouped sub-FFT blocks) matches the plain baseline and
        the online schemes so that measured overheads isolate the
        fault-tolerance work.
        """

        plan = self.plan
        m, k = plan.m, plan.k
        group = self.group_size
        live = getattr(injector, "is_live", True)

        if not live:
            # Fault-free fast path: same traversal, whole-stage batched.
            work = plan.gather_input(x)
            intermediate = plan.stage1(work)
            twiddled = plan.apply_twiddle(intermediate)
            result = plan.stage2(twiddled)
            return self._pack(plan.scatter_output(result))

        # Live-injector path: group-wise traversal exposing every fault site.
        work = np.array(plan.gather_input(x))
        injector.visit(FaultSite.STAGE1_INPUT, work)

        intermediate = np.empty_like(work)
        for start in range(0, k, group):
            stop = min(start + group, k)
            sub = plan.stage1_columns(work, start, stop)
            for i in range(start, stop):
                injector.visit(FaultSite.STAGE1_COMPUTE, sub[:, i - start], index=i)
            intermediate[:, start:stop] = sub
        injector.visit(FaultSite.INTERMEDIATE, intermediate)

        result = np.empty_like(intermediate)
        for start in range(0, m, group):
            stop = min(start + group, m)
            rows = slice(start, stop)
            twiddled = intermediate[rows, :] * plan.twiddles[rows, :]
            injector.visit(FaultSite.TWIDDLE_COMPUTE, twiddled, index=start)
            injector.visit(FaultSite.STAGE2_INPUT, twiddled, index=start)
            sub = plan.outer_plan.execute_batch(twiddled, axis=1)
            for j in range(start, stop):
                injector.visit(FaultSite.STAGE2_COMPUTE, sub[j - start, :], index=j)
            result[rows, :] = sub

        # In real mode the OUTPUT site strikes the packed spectrum (the array
        # the caller receives); the end-to-end verification in _run checks
        # exactly that layout, so a hit here is detected and restarted.
        output = self._pack(plan.scatter_output(result))
        injector.visit(FaultSite.OUTPUT, output)
        return output

    # ------------------------------------------------------------------
    def _pack(self, output: np.ndarray) -> np.ndarray:
        """Keep the non-redundant ``n//2 + 1`` bins in real mode."""

        if not self.real:
            return output
        return np.ascontiguousarray(output[: self.bins])

    def _output_checksum(self, output: np.ndarray) -> complex:
        """``r . X`` - on the packed layout via the conjugate-even fold."""

        consts = self.constants
        if self.real:
            return halfcomplex_sum(consts.hc_a, consts.hc_b, output)
        return weighted_sum(consts.r_n, output)

    # ------------------------------------------------------------------
    def _run(self, x: np.ndarray, injector, report: FTReport) -> np.ndarray:
        n = self.n
        consts = self.constants
        live = getattr(injector, "is_live", True)

        # ----- encoding: plan-time vectors, per-run data checksums --------
        # (Algorithm 1 never DMR-protects its encoding vector, so the
        # constants are used on every path; only the x-dependent weighted
        # sums are computed here.  In real mode the input encoding is
        # unchanged - rA applies to the real samples as-is - while the
        # output reduction folds onto the packed layout, see
        # _output_checksum.)
        c = consts.c_n

        # One robust sample of the input feeds every x-derived threshold.
        x_rms = self.thresholds.magnitude_rms(x)
        sigma0 = float(x_rms / np.sqrt(2.0))

        if self.memory_ft:
            w1, w2 = consts.w1_n, consts.w2_n
            s1 = weighted_sum(w1, x)
            s2 = weighted_sum(w2, x)
            if self.optimized and w1 is c:
                # Section 4.1: rA doubles as the first locating vector, so
                # one weighted sum serves both purposes.  (When 3 | n the
                # plan-time constants fall back to the classic pair because
                # rA is nearly degenerate there; then the computational
                # checksum needs its own pass.)
                cx = s1
            else:
                cx = weighted_sum(c, x)
            eta_mem = self.thresholds.eta_memory(
                w1, x, weight_rms=consts.w1_n_rms, data_rms=x_rms
            )
        else:
            w1 = w2 = None
            s1 = s2 = None
            eta_mem = 0.0
            cx = weighted_sum(c, x)

        eta = self.thresholds.eta_offline(n, x, sigma0=sigma0)

        # Faults may strike the input only after the checksums exist (the
        # paper's fault model excludes faults during checksum generation).
        if live:
            injector.visit(FaultSite.INPUT, x)

        # ----- compute, verify at the end, restart on error ---------------
        output = None
        attempts = 0
        while True:
            attempts += 1
            output = self._execute_plan(x, injector)
            residual = float(np.abs(self._output_checksum(output) - cx))
            detected = bool(residual_exceeds(residual, eta))
            report.record_verification("offline-ccv", None, residual, eta, detected)
            if not detected:
                break
            if self.memory_ft:
                # Distinguish an input memory fault from a computational one:
                # verify the input against its stored locating checksums and
                # repair it before restarting.
                mem_residual = float(np.abs(weighted_sum(w1, x) - s1))
                mem_detected = bool(residual_exceeds(mem_residual, eta_mem))
                report.record_verification("offline-mcv", None, mem_residual, eta_mem, mem_detected)
                if mem_detected:
                    repaired = repair_single_error(x, w1, w2, s1, s2)
                    if repaired is None:
                        report.record_uncorrectable("offline: input corruption could not be located")
                        break
                    report.record_correction(
                        "memory-correct", "input", None, f"element {repaired[0]} repaired"
                    )
            if attempts > self.max_retries:
                report.record_uncorrectable(
                    f"offline: verification still failing after {self.max_retries} restarts"
                )
                break
            report.record_correction("restart", "offline", None, "full transform restarted")

        # ----- output protection (memory FT only) --------------------------
        if self.memory_ft and output is not None:
            # Real mode protects the packed spectrum with its own locating
            # pair (the stored layout is what a memory fault would corrupt).
            out_pair_w1 = consts.p1_h if self.real else w1
            out_s1 = weighted_sum(out_pair_w1, output)
            report.bump("output-mcg")
            # Verify immediately (the offline scheme has nothing to overlap
            # this with); a corruption of the output array after this point
            # is outside the scheme's window of protection.
            final_residual = float(np.abs(weighted_sum(out_pair_w1, output) - out_s1))
            report.record_verification("offline-output-mcv", None, final_residual, eta_mem, False)

        return output

"""Double/triple modular redundancy helpers.

The online ABFT scheme cannot protect everything with checksums: the twiddle
multiplication between the two parts and the (tiny) checksum-vector
generation have no algebraic invariant of their own, so the paper protects
them with DMR - compute twice, compare, and on a mismatch compute a third
time and take the majority (Section 3.1).

Fault injection interacts with DMR through the ``injector``: only the first
computation's result is exposed to the injector (a transient fault strikes
one execution, not all replicas), which is exactly the assumption under
which DMR is a valid detector.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.detection import FTReport
from repro.faults.models import FaultSite

__all__ = ["dmr_elementwise", "dmr_scalar"]


def dmr_elementwise(
    compute: Callable[[], np.ndarray],
    *,
    injector=None,
    site: FaultSite = FaultSite.TWIDDLE_COMPUTE,
    index: Optional[int] = None,
    rank: Optional[int] = None,
    report: Optional[FTReport] = None,
    rtol: float = 0.0,
    atol: float = 0.0,
    label: str = "twiddle-dmr",
) -> np.ndarray:
    """Run ``compute`` with DMR and return the verified array.

    ``compute`` must be deterministic; replicas are compared elementwise
    (exact comparison by default - replicas of the same floating-point
    expression agree bit-for-bit unless a fault struck one of them).  On a
    mismatch a third replica votes per element.
    """

    first = compute()
    if injector is not None:
        injector.visit(site, first, index=index, rank=rank)
    second = compute()
    if rtol == 0.0 and atol == 0.0:
        mismatch = first != second
    else:
        mismatch = ~np.isclose(first, second, rtol=rtol, atol=atol)
    if not np.any(mismatch):
        return first

    third = compute()
    result = np.where(first == third, first, second)
    corrected = int(np.count_nonzero(mismatch))
    if report is not None:
        report.record_verification(label, index, float(corrected), 0.0, True)
        report.record_correction("dmr-vote", label, index, f"{corrected} element(s) re-voted")
    return result


def dmr_scalar(
    compute: Callable[[], complex],
    *,
    report: Optional[FTReport] = None,
    label: str = "checksum-dmr",
    index: Optional[int] = None,
) -> complex:
    """DMR for a scalar quantity (e.g. a checksum value)."""

    first = complex(compute())
    second = complex(compute())
    if first == second:
        return first
    third = complex(compute())
    result = first if first == third else second
    if report is not None:
        report.record_verification(label, index, abs(first - second), 0.0, True)
        report.record_correction("dmr-vote", label, index, "scalar re-voted")
    return result

"""Common scheme interface and optimization flags.

All sequential schemes (plain, offline, online, optimized online) share the
same calling convention::

    scheme = SomeScheme(n, ...)
    result = scheme.execute(x, injector=maybe_injector)
    result.output  # the transform
    result.report  # what was verified / detected / corrected

which is what lets the benchmark harnesses and fault campaigns treat them
interchangeably.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.checksums import repair_single_error, weighted_sum
from repro.core.detection import FTReport
from repro.core.thresholds import ThresholdPolicy, residual_exceeds
from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.models import FaultSite
from repro.utils.validation import as_complex_vector, ensure_positive_int

__all__ = ["OptimizationFlags", "SchemeResult", "FTScheme"]


@dataclass(frozen=True)
class OptimizationFlags:
    """Toggles for the Section 4 optimizations (used for ablations).

    Attributes
    ----------
    modified_checksums:
        Reuse the computational input checksum vector ``rA`` as the first
        memory checksum (Section 4.1).  Off = classic ``(1..1)/(1..n)``
        weights and a separate computational checksum pass.
    postpone_verification:
        Postpone the input memory verification of each first-part sub-FFT
        into its computational verification (Section 4.2).
    incremental_checksums:
        Build the memory checksums of the second-part inputs incrementally
        as the first-part outputs are produced instead of re-reading the
        intermediate array (Section 4.3).
    contiguous_buffer:
        Gather each group of strided first-part columns into a contiguous
        buffer before computing on them (Section 4.4 / Section 6.2).
    group_size:
        Number of sub-FFTs executed between consecutive verifications (the
        paper's ``s``); verification granularity - and therefore recovery
        granularity - remains a single sub-FFT.
    max_retries:
        Bound on the recompute-and-reverify loop of Algorithm 2 so that a
        persistent (non-transient) fault cannot hang the transform.
    """

    modified_checksums: bool = True
    postpone_verification: bool = True
    incremental_checksums: bool = True
    contiguous_buffer: bool = True
    group_size: int = 32
    max_retries: int = 3

    @classmethod
    def all_off(cls) -> "OptimizationFlags":
        """The naive configuration used by the un-optimized online scheme."""

        return cls(
            modified_checksums=False,
            postpone_verification=False,
            incremental_checksums=False,
            contiguous_buffer=False,
        )


@dataclass
class SchemeResult:
    """Output of one protected execution."""

    output: np.ndarray
    report: FTReport
    scheme: str = ""

    @property
    def detected(self) -> bool:
        return self.report.detected

    @property
    def corrected(self) -> bool:
        return self.report.corrected

    @property
    def uncorrectable(self) -> bool:
        return self.report.has_uncorrectable


class FTScheme(abc.ABC):
    """Base class of all sequential (single-process) schemes.

    ``real=True`` puts a scheme into real-input mode: ``execute`` accepts
    ``n`` real samples, the full interior machinery (per-sub-FFT checksums,
    DMR, memory hierarchies) runs on the complexified input exactly as in
    complex mode, and the returned spectrum is the packed conjugate-even
    ``n//2 + 1`` layout of ``numpy.fft.rfft`` - the OUTPUT fault site and
    the final packed-layout locating checksums target that array, so output
    faults strike (and are repaired on) what the caller actually receives.
    """

    #: short identifier used by the scheme registry and benchmark tables
    name: str = "base"

    def __init__(
        self,
        n: int,
        *,
        thresholds: Optional[ThresholdPolicy] = None,
        real: bool = False,
    ) -> None:
        self.n = ensure_positive_int(n, name="n")
        self.thresholds = thresholds or ThresholdPolicy()
        self.real = bool(real)
        #: packed half-complex bins the real mode returns (n//2 + 1)
        self.bins = self.n // 2 + 1

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Transform ``x`` under this scheme's protection."""

        x = as_complex_vector(x, copy=True, name="x")
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        if self.real and np.any(x.imag != 0.0):
            raise ValueError("real-mode scheme expects real-valued input")
        report = FTReport(scheme=self.name)
        output = self._run(x, injector or NullInjector(), report)
        return SchemeResult(output=output, report=report, scheme=self.name)

    def __call__(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        return self.execute(x, injector)

    # ------------------------------------------------------------------
    def _finalize_output(self, output: np.ndarray, injector, report: FTReport) -> np.ndarray:
        """Visit the OUTPUT fault site; in real mode, pack and protect first.

        Complex mode is unchanged: the site strikes the full spectrum.  Real
        mode keeps the non-redundant ``n//2 + 1`` bins, generates a locating
        checksum pair over that packed array (memory-FT schemes), exposes the
        packed array to the injector, and verifies/repairs afterwards - the
        packed layout gets the same single-fault correction guarantee as the
        full layout's final MCV.
        """

        if not self.real:
            injector.visit(FaultSite.OUTPUT, output)
            return output
        packed = np.ascontiguousarray(output[: self.bins])
        constants = getattr(self, "constants", None)
        p1 = getattr(constants, "p1_h", None)
        protect = bool(getattr(self, "memory_ft", False)) and p1 is not None
        if protect:
            p2 = constants.p2_h
            s1 = weighted_sum(p1, packed)
            s2 = weighted_sum(p2, packed)
            eta = self.thresholds.eta_memory(p1, packed, weight_rms=constants.p1_h_rms)
            report.bump("output-mcg")
        injector.visit(FaultSite.OUTPUT, packed)
        if protect:
            residual = float(np.abs(weighted_sum(p1, packed) - s1))
            report.bump("memory-verifications")
            if residual_exceeds(residual, eta):
                report.record_verification("real-output-mcv", None, residual, eta, True)
                repaired = repair_single_error(packed, p1, p2, s1, s2)
                if repaired is None:
                    report.record_uncorrectable(
                        "real output: packed-spectrum corruption could not be located"
                    )
                else:
                    report.record_correction(
                        "memory-correct", "real-output", None, f"bin {repaired[0]} repaired"
                    )
        return packed

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _run(self, x: np.ndarray, injector, report: FTReport) -> np.ndarray:
        """Scheme-specific execution; must return the transform of ``x``."""

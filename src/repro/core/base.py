"""Common scheme interface and optimization flags.

All sequential schemes (plain, offline, online, optimized online) share the
same calling convention::

    scheme = SomeScheme(n, ...)
    result = scheme.execute(x, injector=maybe_injector)
    result.output  # the transform
    result.report  # what was verified / detected / corrected

which is what lets the benchmark harnesses and fault campaigns treat them
interchangeably.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.detection import FTReport
from repro.core.thresholds import ThresholdPolicy
from repro.faults.injector import FaultInjector, NullInjector
from repro.utils.validation import as_complex_vector, ensure_positive_int

__all__ = ["OptimizationFlags", "SchemeResult", "FTScheme"]


@dataclass(frozen=True)
class OptimizationFlags:
    """Toggles for the Section 4 optimizations (used for ablations).

    Attributes
    ----------
    modified_checksums:
        Reuse the computational input checksum vector ``rA`` as the first
        memory checksum (Section 4.1).  Off = classic ``(1..1)/(1..n)``
        weights and a separate computational checksum pass.
    postpone_verification:
        Postpone the input memory verification of each first-part sub-FFT
        into its computational verification (Section 4.2).
    incremental_checksums:
        Build the memory checksums of the second-part inputs incrementally
        as the first-part outputs are produced instead of re-reading the
        intermediate array (Section 4.3).
    contiguous_buffer:
        Gather each group of strided first-part columns into a contiguous
        buffer before computing on them (Section 4.4 / Section 6.2).
    group_size:
        Number of sub-FFTs executed between consecutive verifications (the
        paper's ``s``); verification granularity - and therefore recovery
        granularity - remains a single sub-FFT.
    max_retries:
        Bound on the recompute-and-reverify loop of Algorithm 2 so that a
        persistent (non-transient) fault cannot hang the transform.
    """

    modified_checksums: bool = True
    postpone_verification: bool = True
    incremental_checksums: bool = True
    contiguous_buffer: bool = True
    group_size: int = 32
    max_retries: int = 3

    @classmethod
    def all_off(cls) -> "OptimizationFlags":
        """The naive configuration used by the un-optimized online scheme."""

        return cls(
            modified_checksums=False,
            postpone_verification=False,
            incremental_checksums=False,
            contiguous_buffer=False,
        )


@dataclass
class SchemeResult:
    """Output of one protected execution."""

    output: np.ndarray
    report: FTReport
    scheme: str = ""

    @property
    def detected(self) -> bool:
        return self.report.detected

    @property
    def corrected(self) -> bool:
        return self.report.corrected

    @property
    def uncorrectable(self) -> bool:
        return self.report.has_uncorrectable


class FTScheme(abc.ABC):
    """Base class of all sequential (single-process) schemes."""

    #: short identifier used by the scheme registry and benchmark tables
    name: str = "base"

    def __init__(self, n: int, *, thresholds: Optional[ThresholdPolicy] = None) -> None:
        self.n = ensure_positive_int(n, name="n")
        self.thresholds = thresholds or ThresholdPolicy()

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Transform ``x`` under this scheme's protection."""

        x = as_complex_vector(x, copy=True, name="x")
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        report = FTReport(scheme=self.name)
        output = self._run(x, injector or NullInjector(), report)
        return SchemeResult(output=output, report=report, scheme=self.name)

    def __call__(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        return self.execute(x, injector)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _run(self, x: np.ndarray, injector, report: FTReport) -> np.ndarray:
        """Scheme-specific execution; must return the transform of ``x``."""

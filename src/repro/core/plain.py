"""The unprotected baseline scheme (the repository's "FFTW").

All overhead percentages reported by the benchmarks are measured against
this scheme, which runs exactly the same two-layer decomposition and the
same underlying sub-FFT engine as the protected schemes but performs no
checksum work at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import FTScheme
from repro.core.constants import SchemeConstants
from repro.core.detection import FTReport
from repro.core.thresholds import ThresholdPolicy
from repro.faults.models import FaultSite
from repro.fftlib.two_layer import TwoLayerPlan

__all__ = ["PlainFFT"]


class PlainFFT(FTScheme):
    """Unprotected two-layer FFT.

    The execution is grouped exactly like the protected schemes (blocks of
    ``group_size`` sub-FFTs at a time) so that overhead percentages measured
    against this baseline reflect only the fault-tolerance work and not a
    difference in FFT traversal order.

    Fault-injection sites are still visited (so campaigns can measure the
    impact of *unprotected* faults, the "No Correction" row of Table 6), but
    nothing is verified and nothing is ever corrected.
    """

    name = "fftw"

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        thresholds: Optional[ThresholdPolicy] = None,
        group_size: int = 32,
        backend: Optional[str] = None,
        real: bool = False,
        constants: Optional[SchemeConstants] = None,
    ) -> None:
        super().__init__(n, thresholds=thresholds, real=real)
        self.plan = TwoLayerPlan(n, m, k, backend=backend)
        self.group_size = max(1, int(group_size))
        # The baseline carries no checksum state; the (empty) bundle keeps
        # the scheme interface uniform for the plan layer.
        if constants is None or constants.n != self.n or constants.real != self.real:
            constants = SchemeConstants.for_plain(
                self.n, self.plan.m, self.plan.k, real=self.real
            )
        self.constants = constants

    @property
    def m(self) -> int:
        return self.plan.m

    @property
    def k(self) -> int:
        return self.plan.k

    # ------------------------------------------------------------------
    def _run(self, x: np.ndarray, injector, report: FTReport) -> np.ndarray:
        plan = self.plan
        m, k = plan.m, plan.k
        group = self.group_size
        live = getattr(injector, "is_live", True)

        if not live:
            # Fault-free fast path: the whole two-layer pipeline as four
            # batched calls (the group loop exists only to interleave with a
            # live injector's fault sites).
            work = plan.gather_input(x)
            intermediate = plan.stage1(work)
            twiddled = plan.apply_twiddle(intermediate)
            result = plan.stage2(twiddled)
            return self._finalize_output(plan.scatter_output(result), injector, report)

        # Live-injector path: group-wise traversal exposing every fault site.
        injector.visit(FaultSite.INPUT, x)
        work = np.array(plan.gather_input(x))
        injector.visit(FaultSite.STAGE1_INPUT, work)

        intermediate = np.empty_like(work)
        for start in range(0, k, group):
            stop = min(start + group, k)
            sub = plan.stage1_columns(work, start, stop)
            for i in range(start, stop):
                injector.visit(FaultSite.STAGE1_COMPUTE, sub[:, i - start], index=i)
            intermediate[:, start:stop] = sub
        injector.visit(FaultSite.INTERMEDIATE, intermediate)

        result = np.empty_like(intermediate)
        for start in range(0, m, group):
            stop = min(start + group, m)
            rows = slice(start, stop)
            twiddled = intermediate[rows, :] * plan.twiddles[rows, :]
            injector.visit(FaultSite.TWIDDLE_COMPUTE, twiddled, index=start)
            injector.visit(FaultSite.STAGE2_INPUT, twiddled, index=start)
            sub = plan.outer_plan.execute_batch(twiddled, axis=1)
            for j in range(start, stop):
                injector.visit(FaultSite.STAGE2_COMPUTE, sub[j - start, :], index=j)
            result[rows, :] = sub

        return self._finalize_output(plan.scatter_output(result), injector, report)

"""Declarative scheme configuration: :class:`FTConfig`.

The legacy entry points (``create_scheme("opt-online+mem", n, **kwargs)``)
identified a protection scheme by a registry string and forwarded loose
keyword arguments to whichever constructor the string mapped to.  ``FTConfig``
replaces that with a single frozen, validated, *hashable* description of a
protected transform:

* ``kind`` / ``optimized`` / ``memory_ft`` select the algorithm (the nine
  legacy registry names are exactly the reachable combinations),
* ``m`` / ``k`` pin the two-layer factors,
* ``thresholds`` / ``flags`` carry the detection policy and the Section 4
  optimization toggles,
* ``dtype`` selects the output precision,
* ``backend`` selects the raw sub-FFT kernel
  (:mod:`repro.fftlib.backends`).

Because the dataclass is frozen and every field is hashable, ``(n, config)``
is directly usable as a plan-cache key - which is what
:func:`repro.core.ftplan.plan` does.  :meth:`FTConfig.from_name` /
:meth:`FTConfig.to_name` convert to and from the legacy registry strings so
existing call sites (and saved benchmark configurations) keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import FTScheme, OptimizationFlags
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.plain import PlainFFT
from repro.core.thresholds import ThresholdPolicy

__all__ = ["SCHEME_KINDS", "FTConfig", "legacy_scheme_names"]

#: The algorithm families a config can select.
SCHEME_KINDS = ("plain", "offline", "online")

#: Output dtypes the plan API supports (execution is always complex128
#: internally; complex64 halves the memory of stored batched results).
_SUPPORTED_DTYPES = ("complex64", "complex128")

#: Legacy registry name -> (kind, optimized, memory_ft), in the order the
#: registry historically listed them (``available_schemes`` preserves it).
_NAME_TO_TRIPLE: Dict[str, Tuple[str, bool, bool]] = {
    "fftw": ("plain", False, False),
    "offline": ("offline", False, False),
    "opt-offline": ("offline", True, False),
    "offline+mem": ("offline", False, True),
    "opt-offline+mem": ("offline", True, True),
    "online": ("online", False, False),
    "opt-online": ("online", True, False),
    "online+mem": ("online", False, True),
    "opt-online+mem": ("online", True, True),
}

_TRIPLE_TO_NAME = {triple: name for name, triple in _NAME_TO_TRIPLE.items()}

#: Sub-FFT backends expressible as a name flag (``"opt-online+mem+numpy"``).
#: These are the two stdlib-registered backends; custom backends registered
#: through :func:`repro.fftlib.backends.register_backend` remain a
#: programmatic knob (``FTConfig(backend=...)``) without a name flag.
_BACKEND_FLAGS = ("numpy", "fftlib")


def legacy_scheme_names() -> Sequence[str]:
    """The registry names accepted by :meth:`FTConfig.from_name`."""

    return tuple(_NAME_TO_TRIPLE.keys())


@dataclass(frozen=True)
class FTConfig:
    """Frozen, validated description of one protected-transform setup.

    The default configuration is the paper's shipping scheme: the fully
    optimized online ABFT with memory fault tolerance
    (``opt-online+mem``).

    Attributes
    ----------
    kind:
        ``"plain"`` (unprotected baseline), ``"offline"`` (Algorithm 1), or
        ``"online"`` (Algorithm 2 / Fig. 3).
    optimized:
        Apply the Section 4 optimizations (offline: optimized encoding;
        online: the :class:`OptimizedOnlineABFT` scheme).  Must be ``False``
        for ``kind="plain"``.
    memory_ft:
        Enable the memory fault-tolerance hierarchy.  Must be ``False`` for
        ``kind="plain"``.
    m, k:
        Optional explicit two-layer factors (``n = m * k``; checked against
        ``n`` at plan time).
    thresholds:
        Detection-threshold policy (``None`` = scheme default).
    flags:
        Optimization/ablation toggles.  For offline schemes the
        ``group_size`` / ``max_retries`` members are honoured; the rest only
        apply to online schemes.
    dtype:
        Output dtype, ``"complex128"`` (default) or ``"complex64"``.
        Execution is always double precision internally.
    backend:
        Sub-FFT kernel registry name (``None`` = process default; see
        :mod:`repro.fftlib.backends`).  The two stdlib backends carry a
        legacy-name flag (``"opt-online+mem+numpy"`` /
        ``"opt-online+mem+fftlib"``), so name-driven surfaces (the CLI,
        the serve daemon) can select the pocketfft substrate explicitly.
    real:
        Real-input mode: the plan consumes ``n`` float64 samples and
        produces the packed ``n//2 + 1`` half-complex spectrum
        (``numpy.fft.rfft`` layout), protected with conjugate-even checksum
        weights so detection/correction work directly on the packed layout.
        Legacy registry names carry the flag as a ``+real`` suffix
        (``"opt-online+mem+real"``).
    threads:
        Shared-memory parallelism (see :mod:`repro.runtime`).  ``None``
        (default) is serial; ``0`` sizes automatically from
        ``REPRO_THREADS`` / the core count; ``N`` uses N chunks.  Batched
        fault-free executions (``FTPlan.execute_many``) run chunk-parallel
        on the process-wide worker pool with per-chunk end-to-end checksum
        verification (per-worker ABFT); single-vector executions keep the
        scheme's serial interior machinery (threaded single transforms
        live on the raw plan layer, ``plan_fft(n, threads=N)``).  Legacy
        registry names carry the knob as a ``+t{N}`` suffix
        (``"opt-online+mem+t4"``).
    inplace:
        In-place execution (the paper's Section 5 discipline): the plan
        lowers the Stockham autosort program where the size supports it,
        and ``FTPlan.execute``/``execute_many`` accept an ``out=`` buffer
        that is *overwritten* - the input is destroyed mid-transform, so
        recovery runs from the checksum-carried surrogate (the locating
        pair re-encoded onto the output side) instead of re-executing.
        Legacy registry names carry the flag as a ``+ip`` suffix
        (``"opt-online+mem+ip"``; composes as ``"...+real+ip+t4"``).
    native:
        Native kernel tier (see :mod:`repro.fftlib.native`): the plan's
        compiled stage programs dispatch their combine/base bodies to
        generated C kernels loaded via ``ctypes`` - one GIL-free foreign
        call per transform.  Requesting it never fails: with no C compiler,
        a failed compile, or ``REPRO_NO_NATIVE=1`` the plan silently keeps
        its pure-NumPy stage bodies (``FTPlan.describe()`` reports the
        fallback).  Legacy registry names carry the flag as a ``+native``
        suffix (``"opt-online+mem+native"``; composes as
        ``"...+real+ip+t4+native"``).
    """

    kind: str = "online"
    optimized: bool = True
    memory_ft: bool = True
    m: Optional[int] = None
    k: Optional[int] = None
    thresholds: Optional[ThresholdPolicy] = None
    flags: Optional[OptimizationFlags] = None
    dtype: str = "complex128"
    backend: Optional[str] = None
    real: bool = False
    threads: Optional[int] = None
    inplace: bool = False
    native: bool = False

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.kind not in SCHEME_KINDS:
            raise ValueError(
                f"unknown scheme kind {self.kind!r}; expected one of {', '.join(SCHEME_KINDS)}"
            )
        if self.kind == "plain" and (self.optimized or self.memory_ft):
            raise ValueError(
                "kind='plain' is the unprotected baseline; it has no "
                "optimized or memory_ft variants"
            )
        for label, value in (("m", self.m), ("k", self.k)):
            if value is not None:
                if int(value) != value or value <= 0:
                    raise ValueError(f"{label} must be a positive integer, got {value!r}")
                object.__setattr__(self, label, int(value))
        normalized = np.dtype(self.dtype).name
        if normalized not in _SUPPORTED_DTYPES:
            raise ValueError(
                f"unsupported dtype {self.dtype!r}; expected one of {', '.join(_SUPPORTED_DTYPES)}"
            )
        object.__setattr__(self, "dtype", normalized)
        if self.thresholds is not None and not isinstance(self.thresholds, ThresholdPolicy):
            raise TypeError("thresholds must be a ThresholdPolicy (or None)")
        if self.flags is not None and not isinstance(self.flags, OptimizationFlags):
            raise TypeError("flags must be OptimizationFlags (or None)")
        object.__setattr__(self, "real", bool(self.real))
        object.__setattr__(self, "inplace", bool(self.inplace))
        object.__setattr__(self, "native", bool(self.native))
        if self.threads is not None:
            if int(self.threads) != self.threads or self.threads < 0:
                raise ValueError(
                    f"threads must be a non-negative integer (0 = automatic) "
                    f"or None, got {self.threads!r}"
                )
            object.__setattr__(self, "threads", int(self.threads))

    # ------------------------------------------------------------------
    # legacy-name conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_name(cls, name: str, **overrides: Any) -> "FTConfig":
        """Build a config from a legacy registry name.

        A ``+real`` suffix selects the packed real-input transform
        (``"opt-online+mem+real"``), a ``+ip`` suffix in-place execution
        (``"opt-online+mem+ip"``), a ``+t{N}`` suffix the shared-memory
        thread count (``"opt-online+mem+t4"``, ``+t0`` = automatic), a
        ``+numpy`` / ``+fftlib`` suffix the sub-FFT backend
        (``"opt-online+mem+numpy"`` runs the checksummed pipeline on
        pocketfft), a ``+native`` suffix the generated-C kernel tier (they
        compose as ``"...+real+ip+t4+numpy+native"``); ``overrides`` set
        any other field (``m``, ``k``, ``thresholds``, ``flags``,
        ``dtype``, ``backend``, ``real``, ``threads``, ``inplace``,
        ``native``).
        """

        base = name
        if base.endswith("+native"):
            base = base[: -len("+native")]
            if not overrides.get("native"):
                overrides["native"] = True
        for backend_flag in _BACKEND_FLAGS:
            if base.endswith("+" + backend_flag):
                base = base[: -len(backend_flag) - 1]
                if overrides.get("backend") is None:
                    overrides["backend"] = backend_flag
                break
        head, sep, tail = base.rpartition("+t")
        if sep and tail.isdigit():
            base = head
            # An explicit override wins over the suffix, but the unset
            # sentinels (threads=None, real=False) do not - callers routinely
            # forward optional knobs verbatim (the CLI passes threads=None),
            # and that must not silently strip a suffix the name carries.
            if overrides.get("threads") is None:
                overrides["threads"] = int(tail)
        if base.endswith("+ip"):
            base = base[: -len("+ip")]
            if not overrides.get("inplace"):
                overrides["inplace"] = True
        if base.endswith("+real"):
            base = base[: -len("+real")]
            if not overrides.get("real"):
                overrides["real"] = True
        triple = _NAME_TO_TRIPLE.get(base)
        if triple is None:
            raise KeyError(
                f"unknown scheme {name!r}; available: {', '.join(_NAME_TO_TRIPLE)}"
            )
        kind, optimized, memory_ft = triple
        return cls(kind=kind, optimized=optimized, memory_ft=memory_ft, **overrides)

    def to_name(self) -> str:
        """The legacy registry name selecting this algorithm combination."""

        name = _TRIPLE_TO_NAME[(self.kind, self.optimized, self.memory_ft)]
        if self.real:
            name += "+real"
        if self.inplace:
            name += "+ip"
        if self.threads is not None:
            name += f"+t{self.threads}"
        # Only the stdlib-registered backends have name flags; a custom
        # registered backend stays a programmatic-only knob, like dtype.
        if self.backend in _BACKEND_FLAGS:
            name += f"+{self.backend}"
        if self.native:
            name += "+native"
        return name

    def replace(self, **changes: Any) -> "FTConfig":
        """A copy of this config with ``changes`` applied (re-validated)."""

        return _dc_replace(self, **changes)

    # ------------------------------------------------------------------
    # scheme construction
    # ------------------------------------------------------------------
    def build(self, n: int, **extra: Any) -> FTScheme:
        """Instantiate the scheme this config describes for size ``n``.

        ``extra`` keyword arguments are forwarded to the scheme constructor
        verbatim (after the config-derived ones), preserving the legacy
        ``create_scheme(name, n, **kwargs)`` behaviour.
        """

        kwargs: Dict[str, Any] = {
            "m": self.m,
            "k": self.k,
            "thresholds": self.thresholds,
            "backend": self.backend,
            "real": self.real,
        }
        if self.kind == "plain":
            if self.flags is not None:
                kwargs["group_size"] = self.flags.group_size
            kwargs.update(extra)
            m = kwargs.pop("m")
            k = kwargs.pop("k")
            return PlainFFT(n, m, k, **kwargs)
        if self.kind == "offline":
            kwargs["optimized"] = self.optimized
            kwargs["memory_ft"] = self.memory_ft
            if self.flags is not None:
                kwargs["group_size"] = self.flags.group_size
                kwargs["max_retries"] = self.flags.max_retries
            kwargs.update(extra)
            m = kwargs.pop("m")
            k = kwargs.pop("k")
            return OfflineABFT(n, m, k, **kwargs)
        cls = OptimizedOnlineABFT if self.optimized else OnlineABFT
        kwargs["memory_ft"] = self.memory_ft
        kwargs["flags"] = self.flags
        kwargs.update(extra)
        m = kwargs.pop("m")
        k = kwargs.pop("k")
        return cls(n, m, k, **kwargs)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = [f"kind={self.kind}"]
        if self.kind != "plain":
            parts.append(f"optimized={self.optimized}")
            parts.append(f"memory_ft={self.memory_ft}")
        if self.m is not None or self.k is not None:
            parts.append(f"m={self.m}, k={self.k}")
        if self.real:
            parts.append("real=True")
        if self.inplace:
            parts.append("inplace=True")
        if self.threads is not None:
            parts.append(f"threads={self.threads}")
        if self.native:
            parts.append("native=True")
        if self.dtype != "complex128":
            parts.append(f"dtype={self.dtype}")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        return f"FTConfig({', '.join(parts)})"

"""Verification and correction bookkeeping.

Every protected scheme returns an :class:`FTReport` alongside its output.
The report records each checksum verification (site, residual, threshold,
verdict), each correction action (sub-FFT recomputation, memory-element
repair, DMR vote), and whether anything remained uncorrectable.  Campaigns
and benchmarks read these records to build the paper's fault tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["VerificationRecord", "CorrectionRecord", "FTReport"]


@dataclass(frozen=True)
class VerificationRecord:
    """One checksum comparison."""

    site: str
    index: Optional[int]
    residual: float
    threshold: float
    detected: bool


@dataclass(frozen=True)
class CorrectionRecord:
    """One corrective action taken by a scheme."""

    kind: str  # "recompute", "memory-correct", "dmr-vote", "restart"
    site: str
    index: Optional[int]
    detail: str = ""


@dataclass
class FTReport:
    """Aggregated fault-tolerance activity of one protected execution."""

    scheme: str = ""
    verifications: List[VerificationRecord] = field(default_factory=list)
    corrections: List[CorrectionRecord] = field(default_factory=list)
    uncorrectable: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording helpers
    # ------------------------------------------------------------------
    def record_verification(
        self,
        site: str,
        index: Optional[int],
        residual: float,
        threshold: float,
        detected: bool,
    ) -> VerificationRecord:
        record = VerificationRecord(site, index, float(residual), float(threshold), bool(detected))
        self.verifications.append(record)
        self.bump("verifications")
        if detected:
            self.bump("detections")
        return record

    def record_correction(self, kind: str, site: str, index: Optional[int], detail: str = "") -> CorrectionRecord:
        record = CorrectionRecord(kind, site, index, detail)
        self.corrections.append(record)
        self.bump(f"corrections::{kind}")
        self.bump("corrections")
        return record

    def record_uncorrectable(self, message: str) -> None:
        self.uncorrectable.append(message)
        self.bump("uncorrectable")

    def note(self, message: str) -> None:
        self.notes.append(message)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def merge(self, other: "FTReport") -> None:
        """Fold another report (e.g. from a per-rank execution) into this one."""

        self.verifications.extend(other.verifications)
        self.corrections.extend(other.corrections)
        self.uncorrectable.extend(other.uncorrectable)
        self.notes.extend(other.notes)
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        """Whether any verification flagged an error."""

        return any(v.detected for v in self.verifications)

    @property
    def detection_count(self) -> int:
        return sum(1 for v in self.verifications if v.detected)

    @property
    def corrected(self) -> bool:
        """Whether at least one corrective action was taken and nothing was left broken."""

        return bool(self.corrections) and not self.uncorrectable

    @property
    def correction_count(self) -> int:
        return len(self.corrections)

    @property
    def recompute_count(self) -> int:
        return self.counters.get("corrections::recompute", 0) + self.counters.get("corrections::restart", 0)

    @property
    def memory_correction_count(self) -> int:
        return self.counters.get("corrections::memory-correct", 0)

    @property
    def dmr_correction_count(self) -> int:
        return self.counters.get("corrections::dmr-vote", 0)

    @property
    def clean(self) -> bool:
        """True when no error was detected and nothing was corrected."""

        return not self.detected and not self.corrections and not self.uncorrectable

    @property
    def has_uncorrectable(self) -> bool:
        return bool(self.uncorrectable)

    def summary(self) -> Dict[str, int]:
        return {
            "verifications": len(self.verifications),
            "detections": self.detection_count,
            "corrections": len(self.corrections),
            "recomputations": self.recompute_count,
            "memory_corrections": self.memory_correction_count,
            "dmr_corrections": self.dmr_correction_count,
            "uncorrectable": len(self.uncorrectable),
        }

"""Verification and correction bookkeeping.

Every protected scheme returns an :class:`FTReport` alongside its output.
The report records each checksum verification (site, residual, threshold,
verdict), each correction action (sub-FFT recomputation, memory-element
repair, DMR vote), and whether anything remained uncorrectable.  Campaigns
and benchmarks read these records to build the paper's fault tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

__all__ = ["VerificationRecord", "CorrectionRecord", "FTReport"]


@dataclass(frozen=True)
class VerificationRecord:
    """One checksum comparison."""

    site: str
    index: Optional[int]
    residual: float
    threshold: float
    detected: bool


@dataclass(frozen=True)
class CorrectionRecord:
    """One corrective action taken by a scheme."""

    kind: str  # "recompute", "memory-correct", "dmr-vote", "restart"
    site: str
    index: Optional[int]
    detail: str = ""


@dataclass
class FTReport:
    """Aggregated fault-tolerance activity of one protected execution."""

    scheme: str = ""
    verifications: List[VerificationRecord] = field(default_factory=list)
    corrections: List[CorrectionRecord] = field(default_factory=list)
    uncorrectable: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording helpers
    # ------------------------------------------------------------------
    def record_verification(
        self,
        site: str,
        index: Optional[int],
        residual: float,
        threshold: float,
        detected: bool,
    ) -> VerificationRecord:
        record = VerificationRecord(site, index, float(residual), float(threshold), bool(detected))
        self.verifications.append(record)
        # Process-wide telemetry rides on the same choke points every scheme
        # already funnels through, so no execution path can under-report:
        # volume counters mirror from bump() (which the vectorized batch
        # paths call in bulk), fault events from the record_* methods.
        # merge() folds raw lists/counters and never re-enters either, so
        # merged per-rank reports count exactly once.
        self.bump("verifications")
        scheme = self.scheme or "unlabelled"
        if detected:
            _metrics.inc("abft_detected", site=site, scheme=scheme)
            if _trace.active:
                _trace.emit(
                    "threshold-violation",
                    site=site,
                    index=index,
                    residual=float(residual),
                    threshold=float(threshold),
                    scheme=scheme,
                )
        return record

    def record_correction(self, kind: str, site: str, index: Optional[int], detail: str = "") -> CorrectionRecord:
        record = CorrectionRecord(kind, site, index, detail)
        self.corrections.append(record)
        self.bump(f"corrections::{kind}")
        self.bump("corrections")
        scheme = self.scheme or "unlabelled"
        _metrics.inc("abft_corrected", kind=kind, site=site, scheme=scheme)
        if index is not None:
            # A concrete index means the locating pair (or DMR vote)
            # pinpointed the faulty element, not just the faulty pass.
            _metrics.inc("abft_located", site=site, scheme=scheme)
        if kind == "restart":
            _metrics.inc("abft_retries", site=site, scheme=scheme)
        if _trace.active:
            _trace.emit(
                "repair",
                kind=kind,
                site=site,
                index=index,
                detail=detail,
                scheme=scheme,
            )
        return record

    def record_uncorrectable(self, message: str) -> None:
        self.uncorrectable.append(message)
        self.bump("uncorrectable")
        scheme = self.scheme or "unlabelled"
        _metrics.inc("abft_uncorrectable", scheme=scheme)
        if _trace.active:
            _trace.emit("uncorrectable", message=message, scheme=scheme)

    def note(self, message: str) -> None:
        self.notes.append(message)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount
        # The verification *volume* counters mirror into the registry here
        # rather than in record_verification: the vectorized batch paths
        # bump whole-batch amounts without materializing per-row records,
        # and this choke point sees both.  Per-site labels live on the
        # event counters (abft_detected / abft_corrected / ...), which only
        # the record_* methods feed.
        if counter == "verifications":
            _metrics.inc("abft_verifications", amount, scheme=self.scheme or "unlabelled")
        elif counter == "memory-verifications":
            _metrics.inc(
                "abft_memory_verifications", amount, scheme=self.scheme or "unlabelled"
            )

    def merge(self, other: "FTReport") -> None:
        """Fold another report (e.g. from a per-rank execution) into this one."""

        self.verifications.extend(other.verifications)
        self.corrections.extend(other.corrections)
        self.uncorrectable.extend(other.uncorrectable)
        self.notes.extend(other.notes)
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        """Whether any verification flagged an error."""

        return any(v.detected for v in self.verifications)

    @property
    def detection_count(self) -> int:
        return sum(1 for v in self.verifications if v.detected)

    @property
    def corrected(self) -> bool:
        """Whether at least one corrective action was taken and nothing was left broken."""

        return bool(self.corrections) and not self.uncorrectable

    @property
    def correction_count(self) -> int:
        return len(self.corrections)

    @property
    def recompute_count(self) -> int:
        return self.counters.get("corrections::recompute", 0) + self.counters.get("corrections::restart", 0)

    @property
    def memory_correction_count(self) -> int:
        return self.counters.get("corrections::memory-correct", 0)

    @property
    def dmr_correction_count(self) -> int:
        return self.counters.get("corrections::dmr-vote", 0)

    @property
    def clean(self) -> bool:
        """True when no error was detected and nothing was corrected."""

        return not self.detected and not self.corrections and not self.uncorrectable

    @property
    def has_uncorrectable(self) -> bool:
        return bool(self.uncorrectable)

    def summary(self) -> Dict[str, int]:
        return {
            "verifications": len(self.verifications),
            "detections": self.detection_count,
            "corrections": len(self.corrections),
            "recomputations": self.recompute_count,
            "memory_corrections": self.memory_correction_count,
            "dmr_corrections": self.dmr_correction_count,
            "uncorrectable": len(self.uncorrectable),
        }

"""Legacy convenience API, now thin shims over the plan-centric API.

The modern entry points live in :mod:`repro.core.ftplan` /
:mod:`repro.core.config`:

>>> import repro
>>> p = repro.plan(4096)                      # cached FTPlan
>>> p = repro.plan(4096, backend="numpy")     # pocketfft kernel
>>> p = repro.plan(4096, repro.FTConfig(kind="offline", optimized=True,
...                                      memory_ft=False))

The helpers here predate that API and are kept for backward compatibility:

* :func:`ft_fft` - one-shot protected transform (now cache-backed),
* :func:`create_scheme` / :func:`available_schemes` - the string-keyed
  registry,
* :class:`FaultTolerantFFT` - the old facade, now a wrapper around
  :class:`repro.core.ftplan.FTPlan`.

All of them emit :class:`DeprecationWarning`; new code should use
``repro.plan`` and :class:`repro.FTConfig` directly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

import numpy as np

from repro.core.base import FTScheme, OptimizationFlags, SchemeResult
from repro.core.config import FTConfig, legacy_scheme_names
from repro.core.ftplan import FTPlan, plan
from repro.core.thresholds import ThresholdPolicy
from repro.faults.injector import FaultInjector

__all__ = ["available_schemes", "create_scheme", "ft_fft", "FaultTolerantFFT"]

#: FTConfig fields that legacy ``**kwargs`` may set directly.
_CONFIG_KWARGS = ("m", "k", "thresholds", "flags", "dtype", "backend", "real")


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _split_config_kwargs(kwargs):
    """Partition legacy kwargs into FTConfig fields and constructor extras."""

    config_kwargs = {key: kwargs.pop(key) for key in _CONFIG_KWARGS if key in kwargs}
    return config_kwargs, kwargs


def available_schemes() -> Sequence[str]:
    """Names accepted by :func:`create_scheme` (and the ``--scheme`` options)."""

    return legacy_scheme_names()


def create_scheme(name: str, n: int, **kwargs) -> FTScheme:
    """Instantiate a scheme by registry name (deprecated).

    ``kwargs`` are forwarded to the scheme constructor (``m``, ``k``,
    ``thresholds``, ``flags``, ``backend`` where applicable).  New code
    should build an :class:`repro.FTConfig` and call ``repro.plan``.
    """

    _deprecated("create_scheme()", "repro.plan(n, config)")
    config_kwargs, extra = _split_config_kwargs(dict(kwargs))
    config = FTConfig.from_name(name, **config_kwargs)
    return config.build(n, **extra)


def ft_fft(
    x: np.ndarray,
    *,
    scheme: str = "opt-online+mem",
    injector: Optional[FaultInjector] = None,
    **kwargs,
) -> SchemeResult:
    """One-shot fault-tolerant FFT of ``x`` under the named scheme (deprecated).

    Now backed by the plan cache, so repeated one-shot calls of the same
    size/configuration reuse the prepared plan.
    """

    _deprecated("ft_fft()", "repro.plan(n).execute(x)")
    x = np.asarray(x)
    config_kwargs, extra = _split_config_kwargs(dict(kwargs))
    config = FTConfig.from_name(scheme, **config_kwargs)
    if extra:
        # Non-config constructor arguments cannot be part of a cache key;
        # build an uncached scheme exactly like the old registry did.
        return config.build(x.shape[-1], **extra).execute(x, injector)
    return plan(x.shape[-1], config).execute(x, injector)


class FaultTolerantFFT:
    """A reusable protected transform of a fixed size (deprecated facade).

    Thin wrapper over :class:`repro.core.ftplan.FTPlan`; prefer
    ``repro.plan(n, config)``, which additionally caches plans across call
    sites and offers batched execution (``execute_many``).

    Example
    -------
    >>> import numpy as np
    >>> ft = FaultTolerantFFT(1024)
    >>> x = np.random.default_rng(0).standard_normal(1024) + 0j
    >>> result = ft.forward(x)
    >>> np.allclose(result.output, np.fft.fft(x))
    True
    """

    def __init__(
        self,
        n: int,
        *,
        scheme: str = "opt-online+mem",
        m: Optional[int] = None,
        k: Optional[int] = None,
        thresholds: Optional[ThresholdPolicy] = None,
        flags: Optional[OptimizationFlags] = None,
        backend: Optional[str] = None,
    ) -> None:
        _deprecated("FaultTolerantFFT", "repro.plan(n, config)")
        # The old facade only honoured flags for the online schemes.
        if flags is not None and FTConfig.from_name(scheme).kind != "online":
            flags = None
        config = FTConfig.from_name(
            scheme, m=m, k=k, thresholds=thresholds, flags=flags, backend=backend
        )
        # Build an *uncached* plan: the legacy facade always owned a private
        # scheme instance, and callers that mutate its public attributes
        # must not contaminate plans shared through the repro.plan cache.
        self._plan: FTPlan = FTPlan(n, config)
        self.scheme_name = scheme
        self.scheme = self._plan.scheme
        self.n = n

    # ------------------------------------------------------------------
    @property
    def plan(self) -> FTPlan:
        """The facade's private (uncached) :class:`FTPlan`.

        Deliberately not shared with the ``repro.plan`` cache - see the
        constructor.
        """

        return self._plan

    def forward(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Protected forward transform."""

        return self._plan.execute(x, injector)

    def inverse(
        self, spectrum: np.ndarray, injector: Optional[FaultInjector] = None
    ) -> SchemeResult:
        """Protected inverse transform (conjugation identity; same coverage)."""

        return self._plan.inverse(spectrum, injector)

    def __call__(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        return self.forward(x, injector)

    def describe(self) -> str:
        return f"FaultTolerantFFT(n={self.n}, scheme={self.scheme_name})"

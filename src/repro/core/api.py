"""Public convenience API: scheme registry and the ``FaultTolerantFFT`` facade.

Most downstream users want one of two things:

* a one-shot protected transform: :func:`ft_fft`, or
* a reusable protected plan: :class:`FaultTolerantFFT` (create once, execute
  many times - the analogue of creating an FFTW plan and calling
  ``fftw_execute``).

The string-keyed registry (:func:`create_scheme`, :func:`available_schemes`)
is what the benchmark harnesses and examples use to iterate over the schemes
the paper compares.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.base import FTScheme, OptimizationFlags, SchemeResult
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.plain import PlainFFT
from repro.core.thresholds import ThresholdPolicy
from repro.faults.injector import FaultInjector

__all__ = ["available_schemes", "create_scheme", "ft_fft", "FaultTolerantFFT"]


_SchemeFactory = Callable[..., FTScheme]


def _registry() -> Dict[str, _SchemeFactory]:
    return {
        # baseline
        "fftw": lambda n, **kw: PlainFFT(n, **kw),
        # offline ABFT, computational FT only
        "offline": lambda n, **kw: OfflineABFT(n, optimized=False, memory_ft=False, **kw),
        "opt-offline": lambda n, **kw: OfflineABFT(n, optimized=True, memory_ft=False, **kw),
        # offline ABFT with memory FT
        "offline+mem": lambda n, **kw: OfflineABFT(n, optimized=False, memory_ft=True, **kw),
        "opt-offline+mem": lambda n, **kw: OfflineABFT(n, optimized=True, memory_ft=True, **kw),
        # online ABFT, computational FT only
        "online": lambda n, **kw: OnlineABFT(n, memory_ft=False, **kw),
        "opt-online": lambda n, **kw: OptimizedOnlineABFT(n, memory_ft=False, **kw),
        # online ABFT with memory FT
        "online+mem": lambda n, **kw: OnlineABFT(n, memory_ft=True, **kw),
        "opt-online+mem": lambda n, **kw: OptimizedOnlineABFT(n, memory_ft=True, **kw),
    }


def available_schemes() -> Sequence[str]:
    """Names accepted by :func:`create_scheme` (and the ``--scheme`` options)."""

    return tuple(_registry().keys())


def create_scheme(name: str, n: int, **kwargs) -> FTScheme:
    """Instantiate a scheme by registry name.

    ``kwargs`` are forwarded to the scheme constructor (``m``, ``k``,
    ``thresholds``, ``flags`` where applicable).
    """

    registry = _registry()
    if name not in registry:
        raise KeyError(f"unknown scheme {name!r}; available: {', '.join(registry)}")
    return registry[name](n, **kwargs)


def ft_fft(
    x: np.ndarray,
    *,
    scheme: str = "opt-online+mem",
    injector: Optional[FaultInjector] = None,
    **kwargs,
) -> SchemeResult:
    """One-shot fault-tolerant FFT of ``x`` under the named scheme."""

    x = np.asarray(x)
    instance = create_scheme(scheme, x.shape[-1], **kwargs)
    return instance.execute(x, injector)


class FaultTolerantFFT:
    """A reusable protected transform of a fixed size.

    Parameters
    ----------
    n:
        Transform length.
    scheme:
        Registry name (default: the paper's fully optimized online scheme
        with memory fault tolerance).
    m, k:
        Optional explicit two-layer factors.
    thresholds:
        Detection-threshold policy.
    flags:
        Optimization flags (online schemes only).

    Example
    -------
    >>> import numpy as np
    >>> ft = FaultTolerantFFT(1024)
    >>> x = np.random.default_rng(0).standard_normal(1024) + 0j
    >>> result = ft.forward(x)
    >>> np.allclose(result.output, np.fft.fft(x))
    True
    """

    def __init__(
        self,
        n: int,
        *,
        scheme: str = "opt-online+mem",
        m: Optional[int] = None,
        k: Optional[int] = None,
        thresholds: Optional[ThresholdPolicy] = None,
        flags: Optional[OptimizationFlags] = None,
    ) -> None:
        kwargs: Dict[str, object] = {}
        if m is not None:
            kwargs["m"] = m
        if k is not None:
            kwargs["k"] = k
        if thresholds is not None:
            kwargs["thresholds"] = thresholds
        if flags is not None and scheme in {"online", "online+mem", "opt-online", "opt-online+mem"}:
            kwargs["flags"] = flags
        self.scheme_name = scheme
        self.scheme = create_scheme(scheme, n, **kwargs)
        self.n = n

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Protected forward transform."""

        return self.scheme.execute(x, injector)

    def inverse(self, spectrum: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Protected inverse transform.

        Implemented with the conjugation identity
        ``ifft(X) = conj(fft(conj(X))) / n`` so the exact same protected
        forward machinery (and therefore the same coverage) applies.
        """

        spectrum = np.asarray(spectrum, dtype=np.complex128)
        result = self.scheme.execute(np.conj(spectrum), injector)
        output = np.conj(result.output) / self.n
        return SchemeResult(output=output, report=result.report, scheme=result.scheme)

    def __call__(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        return self.forward(x, injector)

    def describe(self) -> str:
        return f"FaultTolerantFFT(n={self.n}, scheme={self.scheme_name})"

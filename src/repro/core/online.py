"""The two-layer online ABFT scheme (Algorithm 2 / Fig. 2), un-optimized.

The transform is the highest-level Cooley-Tukey decomposition
``N = m * k``; every one of the ``k`` first-part ``m``-point sub-FFTs and
every one of the ``m`` second-part ``k``-point sub-FFTs carries its *own*
checksum verification, and the twiddle multiplication plus checksum-vector
generation - the only computation not covered by a checksum - is protected
by DMR.  A detected error therefore triggers the recomputation of a single
Theta(sqrt(N))-point sub-FFT instead of a restart of the whole transform.

This module implements the scheme exactly as introduced in Section 3, i.e.
*without* the Section 4 optimizations:

* the checksum vectors are evaluated with per-element trigonometry,
* memory fault tolerance (when enabled) uses the classic ``(1,...,1)`` /
  ``(1,...,n)`` locating pair, generated and verified at every boundary of
  Fig. 2 (input MCG + MCV before each sub-FFT, intermediate MCG + MCV before
  the twiddle stage, a regenerated row MCG after it, and output MCG + final
  MCV),
* nothing is postponed and nothing is generated incrementally.

Sub-FFTs are *executed* in groups of ``group_size`` columns/rows so the
NumPy backend stays vectorised (FFTW likewise executes batched sub-plans;
the paper's Fig. 2 groups ``s`` second-part FFTs per verification block),
but verification and recovery granularity remain a single sub-FFT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import FTScheme, OptimizationFlags
from repro.core.checksums import (
    input_checksum_weights_naive,
    weighted_sum,
)
from repro.core.constants import SchemeConstants
from repro.core.detection import FTReport
from repro.core.dmr import dmr_elementwise
from repro.core.thresholds import ThresholdPolicy, residual_exceeds
from repro.faults.models import FaultSite
from repro.fftlib.two_layer import TwoLayerPlan

__all__ = ["OnlineABFT"]


class OnlineABFT(FTScheme):
    """Naive online two-layer ABFT FFT (computational FT, optional memory FT)."""

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        memory_ft: bool = False,
        thresholds: Optional[ThresholdPolicy] = None,
        flags: Optional[OptimizationFlags] = None,
        backend: Optional[str] = None,
        real: bool = False,
        constants: Optional[SchemeConstants] = None,
    ) -> None:
        super().__init__(n, thresholds=thresholds, real=real)
        self.plan = TwoLayerPlan(n, m, k, backend=backend)
        self.memory_ft = bool(memory_ft)
        self.flags = flags or OptimizationFlags.all_off()
        self.name = "online+mem" if memory_ft else "online"
        # Plan-time constants (weight vectors, classic locating pairs); a
        # live injector still regenerates the rA vectors under DMR in _run.
        if (
            constants is None
            or constants.n != self.n
            or constants.m != self.plan.m
            or constants.c_m is None
            or (self.memory_ft and (constants.mem_m is None or constants.mem_k is None))
            or constants.real != self.real
        ):
            constants = SchemeConstants.for_online(
                self.n, self.plan.m, self.plan.k,
                optimized=False,
                memory_ft=self.memory_ft,
                modified_checksums=False,
                real=self.real,
            )
        self.constants = constants

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.plan.m

    @property
    def k(self) -> int:
        return self.plan.k

    # ------------------------------------------------------------------
    def _run(self, x: np.ndarray, injector, report: FTReport) -> np.ndarray:
        plan = self.plan
        m, k = plan.m, plan.k
        consts = self.constants
        group = max(1, int(self.flags.group_size))
        retries = max(1, int(self.flags.max_retries))
        # Live injectors may target the checksum-vector generation, so the
        # naive rA vectors are regenerated under DMR (Algorithm 2, l.3);
        # fault-free runs use the bit-identical plan-time constants and skip
        # per-site visit loops.
        live = getattr(injector, "is_live", True)

        # ----- checksum vectors, generated with DMR (Algorithm 2, l.3/l.11) ---
        r_m = consts.r_m
        if live:
            c_m = dmr_elementwise(
                lambda: input_checksum_weights_naive(m),
                injector=injector,
                site=FaultSite.CHECKSUM_COMPUTE,
                index=0,
                report=report,
                label="checksum-vector-dmr",
            )
        else:
            c_m = consts.c_m
        # One robust sample of the input feeds every x-derived threshold.
        x_rms = self.thresholds.magnitude_rms(x)
        sigma0 = float(x_rms / np.sqrt(2.0))
        eta1 = self.thresholds.eta_stage1(m, x, sigma0=sigma0)
        eta2 = self.thresholds.eta_stage2(k, m, x, sigma0=sigma0)

        mem_m = consts.mem_m if self.memory_ft else None
        mem_k = consts.mem_k if self.memory_ft else None

        work = np.array(plan.gather_input(x))

        # ----- input memory checksum generation (Fig. 2, leading MCG) --------
        if self.memory_ft:
            in_pair = mem_m.generate(work, axis=0)
            eta_mem_col = self.thresholds.eta_memory(
                mem_m.w1, work, weight_rms=consts.w1_m_rms, data_rms=x_rms
            )
        else:
            in_pair = None
            eta_mem_col = 0.0

        # Faults may strike only once the protection exists (the paper's fault
        # model excludes corruption during checksum generation).
        if live:
            injector.visit(FaultSite.INPUT, work)
            injector.visit(FaultSite.STAGE1_INPUT, work)

        if not live:
            # Fault-free fast path: the same passes as Fig. 2 (every MCG and
            # MCV of the naive scheme is still paid), executed whole-stage
            # with batched sub-FFT calls and one GEMV per checksum pass.
            return self._run_vectorized(
                work, injector, report, c_m, r_m, eta1, eta2,
                mem_m, mem_k, in_pair, eta_mem_col, retries,
            )

        # ----- part 1: k m-point FFTs ----------------------------------------
        intermediate = np.empty_like(work)
        mid_s1 = np.empty(k, dtype=np.complex128) if self.memory_ft else None
        mid_s2 = np.empty(k, dtype=np.complex128) if self.memory_ft else None

        for start in range(0, k, group):
            stop = min(start + group, k)
            cols = slice(start, stop)

            # MCV before use (no postponing in the naive scheme).
            if self.memory_ft:
                self._verify_columns(
                    work, cols, mem_m, in_pair, eta_mem_col, report, "stage1-input-mcv"
                )

            # CCG: input checksums of these sub-FFTs.
            ccg = weighted_sum(c_m, work[:, cols], axis=0)

            # Compute the sub-FFTs (batched) and expose them to the injector
            # one column at a time so faults can target a specific sub-FFT.
            sub = plan.stage1_columns(work, start, stop)
            for i in range(start, stop):
                injector.visit(FaultSite.STAGE1_COMPUTE, sub[:, i - start], index=i)

            # CCV per sub-FFT (vectorized: one GEMV + one comparison per
            # group; only violating sub-FFTs enter the recovery path).
            residuals = np.abs(weighted_sum(r_m, sub, axis=0) - ccg)
            report.bump("verifications", stop - start)
            for local in np.nonzero(residual_exceeds(residuals, eta1))[0]:
                i = start + int(local)
                report.record_verification("stage1-ccv", i, float(residuals[local]), eta1, True)
                corrected = self._recover_stage1(
                    work, sub, i, start, c_m, r_m, eta1, mem_m, in_pair, eta_mem_col,
                    injector, report, retries,
                )
                if not corrected:
                    report.record_uncorrectable(f"stage1 sub-FFT {i} could not be corrected")

            intermediate[:, cols] = sub

            # MCG of the intermediate output of these sub-FFTs (Fig. 2).
            if self.memory_ft:
                mid_s1[cols] = weighted_sum(mem_m.w1, sub, axis=0)
                mid_s2[cols] = weighted_sum(mem_m.w2, sub, axis=0)

        # Threshold derived from the (still clean) intermediate data before
        # faults may strike it.
        eta_mem_mid = (
            self.thresholds.eta_memory(
                mem_m.w1, intermediate, weight_rms=consts.w1_m_rms
            )
            if self.memory_ft
            else 0.0
        )

        injector.visit(FaultSite.INTERMEDIATE, intermediate)

        # ----- between the parts: verify intermediate, DMR twiddle ----------
        if self.memory_ft:
            mid_pair = _Pair(mid_s1, mid_s2)
            self._verify_columns(
                intermediate, slice(0, k), mem_m, mid_pair, eta_mem_mid, report, "pre-twiddle-mcv"
            )

        r_k = consts.r_k
        c_k = dmr_elementwise(
            lambda: input_checksum_weights_naive(k),
            injector=injector,
            site=FaultSite.CHECKSUM_COMPUTE,
            index=1,
            report=report,
            label="checksum-vector-dmr",
        )

        twiddled = dmr_elementwise(
            lambda: intermediate * plan.twiddles,
            injector=injector,
            site=FaultSite.TWIDDLE_COMPUTE,
            report=report,
            label="twiddle-dmr",
        )
        injector.visit(FaultSite.STAGE2_INPUT, twiddled)

        # Regenerated row checksums for the second-part inputs (the third MCG
        # the naive scheme pays for; the optimized scheme builds these
        # incrementally instead).
        if self.memory_ft:
            row_pair = mem_k.generate(twiddled, axis=1)
            eta_mem_row = self.thresholds.eta_memory(
                mem_k.w1, twiddled, weight_rms=consts.w1_k_rms
            )
        else:
            row_pair = None
            eta_mem_row = 0.0

        # ----- part 2: m k-point FFTs ----------------------------------------
        result = np.empty_like(twiddled)
        out_s1 = np.empty(m, dtype=np.complex128) if self.memory_ft else None
        out_s2 = np.empty(m, dtype=np.complex128) if self.memory_ft else None

        for start in range(0, m, group):
            stop = min(start + group, m)
            rows = slice(start, stop)

            if self.memory_ft:
                self._verify_rows(
                    twiddled, rows, mem_k, row_pair, eta_mem_row, report, "stage2-input-mcv"
                )

            ccg2 = weighted_sum(c_k, twiddled[rows, :], axis=1)

            sub = plan.stage2_rows(twiddled, start, stop)
            for j in range(start, stop):
                injector.visit(FaultSite.STAGE2_COMPUTE, sub[j - start, :], index=j)

            residuals = np.abs(weighted_sum(r_k, sub, axis=1) - ccg2)
            report.bump("verifications", stop - start)
            for local in np.nonzero(residual_exceeds(residuals, eta2))[0]:
                j = start + int(local)
                report.record_verification("stage2-ccv", j, float(residuals[local]), eta2, True)
                corrected = self._recover_stage2(
                    twiddled, sub, j, start, c_k, r_k, eta2, mem_k, row_pair, eta_mem_row,
                    injector, report, retries,
                )
                if not corrected:
                    report.record_uncorrectable(f"stage2 sub-FFT {j} could not be corrected")

            result[rows, :] = sub

            if self.memory_ft:
                out_s1[rows] = weighted_sum(mem_k.w1, sub, axis=1)
                out_s2[rows] = weighted_sum(mem_k.w2, sub, axis=1)

        # ----- final output and last MCV --------------------------------------
        output = plan.scatter_output(result)
        if self.real:
            # Packed-spectrum OUTPUT site + locating MCV (base helper); the
            # full-layout per-column checksums refer to bins about to be
            # discarded, so the packed pair takes over output protection.
            return self._finalize_output(output, injector, report)
        injector.visit(FaultSite.OUTPUT, output)

        if self.memory_ft:
            self._final_output_check(output, mem_k, out_s1, out_s2, report)

        return output

    # ------------------------------------------------------------------
    # fault-free fast path
    # ------------------------------------------------------------------
    def _run_vectorized(
        self, work, injector, report, c_m, r_m, eta1, eta2,
        mem_m, mem_k, in_pair, eta_mem_col, retries,
    ) -> np.ndarray:
        """Whole-stage execution of the naive scheme (no live injector).

        Every redundant pass of Fig. 2 - input MCV before use, per-sub-FFT
        CCG/CCV, intermediate MCG + pre-twiddle MCV, regenerated row MCG +
        MCV, output MCG and the final MCV - is still performed (the naive
        scheme's overhead is the point of the ablation benchmarks); only the
        group loop is replaced by batched calls.
        """

        plan = self.plan
        m, k = plan.m, plan.k
        consts = self.constants

        # ----- part 1 ------------------------------------------------------
        if self.memory_ft:
            self._verify_columns(
                work, slice(0, k), mem_m, in_pair, eta_mem_col, report, "stage1-input-mcv"
            )
        ccg = weighted_sum(c_m, work, axis=0)
        intermediate = plan.stage1(work)
        residuals = np.abs(weighted_sum(r_m, intermediate, axis=0) - ccg)
        report.bump("verifications", k)
        for local in np.nonzero(residual_exceeds(residuals, eta1))[0]:
            i = int(local)
            report.record_verification("stage1-ccv", i, float(residuals[i]), eta1, True)
            corrected = self._recover_stage1(
                work, intermediate, i, 0, c_m, r_m, eta1, mem_m, in_pair, eta_mem_col,
                injector, report, retries,
            )
            if not corrected:
                report.record_uncorrectable(f"stage1 sub-FFT {i} could not be corrected")

        # ----- between the parts -------------------------------------------
        if self.memory_ft:
            mid_pair = _Pair(
                weighted_sum(mem_m.w1, intermediate, axis=0),
                weighted_sum(mem_m.w2, intermediate, axis=0),
            )
            eta_mem_mid = self.thresholds.eta_memory(
                mem_m.w1, intermediate, weight_rms=consts.w1_m_rms
            )
            self._verify_columns(
                intermediate, slice(0, k), mem_m, mid_pair, eta_mem_mid, report,
                "pre-twiddle-mcv",
            )

        r_k = consts.r_k
        c_k = consts.c_k
        twiddled = dmr_elementwise(
            lambda: intermediate * plan.twiddles,
            report=report,
            label="twiddle-dmr",
        )
        if self.memory_ft:
            row_pair = mem_k.generate(twiddled, axis=1)
            eta_mem_row = self.thresholds.eta_memory(
                mem_k.w1, twiddled, weight_rms=consts.w1_k_rms
            )
            self._verify_rows(
                twiddled, slice(0, m), mem_k, row_pair, eta_mem_row, report,
                "stage2-input-mcv",
            )
        else:
            row_pair = None
            eta_mem_row = 0.0

        # ----- part 2 ------------------------------------------------------
        ccg2 = weighted_sum(c_k, twiddled, axis=1)
        result = plan.stage2(twiddled)
        residuals2 = np.abs(weighted_sum(r_k, result, axis=1) - ccg2)
        report.bump("verifications", m)
        for local in np.nonzero(residual_exceeds(residuals2, eta2))[0]:
            j = int(local)
            report.record_verification("stage2-ccv", j, float(residuals2[j]), eta2, True)
            corrected = self._recover_stage2(
                twiddled, result, j, 0, c_k, r_k, eta2, mem_k, row_pair, eta_mem_row,
                injector, report, retries,
            )
            if not corrected:
                report.record_uncorrectable(f"stage2 sub-FFT {j} could not be corrected")

        output = plan.scatter_output(result)
        if self.real:
            return self._finalize_output(output, injector, report)
        if self.memory_ft:
            out_s1 = weighted_sum(mem_k.w1, result, axis=1)
            out_s2 = weighted_sum(mem_k.w2, result, axis=1)
            self._final_output_check(output, mem_k, out_s1, out_s2, report)
        return output

    # ------------------------------------------------------------------
    # recovery helpers
    # ------------------------------------------------------------------
    def _recover_stage1(
        self, work, sub, index, group_start, c_m, r_m, eta1,
        mem_m, in_pair, eta_mem, injector, report, retries,
    ) -> bool:
        """Recover first-part sub-FFT ``index``; returns ``True`` on success."""

        for _ in range(retries):
            # Memory error on the input column?  Verify before recomputing.
            if self.memory_ft:
                column = work[:, index]
                residual = float(np.abs(np.dot(mem_m.w1, column) - in_pair.s1[index]))
                if residual_exceeds(residual, eta_mem):
                    report.record_verification("stage1-recovery-mcv", index, residual, eta_mem, True)
                    located = mem_m.correct(column, in_pair.s1[index], in_pair.s2[index])
                    if located is None:
                        report.record_uncorrectable(
                            f"stage1 input column {index}: corruption could not be located"
                        )
                        return False
                    report.record_correction(
                        "memory-correct", "stage1-input", index, f"element {located[0]} repaired"
                    )
            fresh = self.plan.stage1_single(work, index)
            injector.visit(FaultSite.STAGE1_COMPUTE, fresh, index=index)
            residual = float(np.abs(np.dot(r_m, fresh) - np.dot(c_m, work[:, index])))
            ok = residual <= eta1
            report.record_verification("stage1-ccv-retry", index, residual, eta1, not ok)
            report.record_correction("recompute", "stage1", index, "m-point sub-FFT recomputed")
            if ok:
                sub[:, index - group_start] = fresh
                return True
        return False

    def _recover_stage2(
        self, twiddled, sub, index, group_start, c_k, r_k, eta2,
        mem_k, row_pair, eta_mem, injector, report, retries,
    ) -> bool:
        """Recover second-part sub-FFT ``index``; returns ``True`` on success."""

        for _ in range(retries):
            if self.memory_ft:
                row = twiddled[index, :]
                residual = float(np.abs(np.dot(mem_k.w1, row) - row_pair.s1[index]))
                if residual_exceeds(residual, eta_mem):
                    report.record_verification("stage2-recovery-mcv", index, residual, eta_mem, True)
                    located = mem_k.correct(row, row_pair.s1[index], row_pair.s2[index])
                    if located is None:
                        report.record_uncorrectable(
                            f"stage2 input row {index}: corruption could not be located"
                        )
                        return False
                    report.record_correction(
                        "memory-correct", "stage2-input", index, f"element {located[0]} repaired"
                    )
            fresh = self.plan.stage2_single(twiddled, index)
            injector.visit(FaultSite.STAGE2_COMPUTE, fresh, index=index)
            residual = float(np.abs(np.dot(r_k, fresh) - np.dot(c_k, twiddled[index, :])))
            ok = residual <= eta2
            report.record_verification("stage2-ccv-retry", index, residual, eta2, not ok)
            report.record_correction("recompute", "stage2", index, "k-point sub-FFT recomputed")
            if ok:
                sub[index - group_start, :] = fresh
                return True
        return False

    # ------------------------------------------------------------------
    # memory verification helpers
    # ------------------------------------------------------------------
    def _verify_columns(self, data, cols, mem, pair, eta, report, label) -> None:
        """Verify (and repair) the memory checksums of a slice of columns."""

        current = weighted_sum(mem.w1, data[:, cols], axis=0)
        stored = np.asarray(pair.s1)[cols]
        residuals = np.abs(current - stored)
        count = residuals.shape[0]
        report.bump("memory-verifications", count)
        violations = residual_exceeds(residuals, eta)
        if not np.any(violations):
            return
        offset = cols.start or 0
        for local_index in np.nonzero(violations)[0]:
            index = int(offset + local_index)
            report.record_verification(label, index, float(residuals[local_index]), eta, True)
            located = mem.correct(
                data[:, index], np.asarray(pair.s1)[index], np.asarray(pair.s2)[index]
            )
            if located is None:
                report.record_uncorrectable(f"{label}: column {index} could not be located")
            else:
                report.record_correction("memory-correct", label, index, f"element {located[0]} repaired")

    def _verify_rows(self, data, rows, mem, pair, eta, report, label) -> None:
        """Verify (and repair) the memory checksums of a slice of rows."""

        current = weighted_sum(mem.w1, data[rows, :], axis=1)
        stored = np.asarray(pair.s1)[rows]
        residuals = np.abs(current - stored)
        count = residuals.shape[0]
        report.bump("memory-verifications", count)
        violations = residual_exceeds(residuals, eta)
        if not np.any(violations):
            return
        offset = rows.start or 0
        for local_index in np.nonzero(violations)[0]:
            index = int(offset + local_index)
            report.record_verification(label, index, float(residuals[local_index]), eta, True)
            located = mem.correct(
                data[index, :], np.asarray(pair.s1)[index], np.asarray(pair.s2)[index]
            )
            if located is None:
                report.record_uncorrectable(f"{label}: row {index} could not be located")
            else:
                report.record_correction("memory-correct", label, index, f"element {located[0]} repaired")

    def _final_output_check(self, output, mem_k, out_s1, out_s2, report) -> None:
        """Verify the scattered output against the per-row output checksums.

        ``output.reshape(k, m)[j1, j2]`` equals ``result[j2, j1]``, so the
        stored checksum of result-row ``j2`` applies to column ``j2`` of the
        reshaped output.
        """

        m, k = self.plan.m, self.plan.k
        view = output.reshape(k, m)
        current = weighted_sum(mem_k.w1, view, axis=0)  # length m, indexed by j2
        eta = self.thresholds.eta_memory(
            mem_k.w1, view, weight_rms=self.constants.w1_k_rms
        )
        residuals = np.abs(current - out_s1)
        report.bump("memory-verifications", m)
        violations = residual_exceeds(residuals, eta)
        if not np.any(violations):
            return
        for j2 in np.nonzero(violations)[0]:
            j2 = int(j2)
            report.record_verification("final-mcv", j2, float(residuals[j2]), eta, True)
            located = mem_k.correct(view[:, j2], out_s1[j2], out_s2[j2])
            if located is None:
                report.record_uncorrectable(f"final output column {j2} could not be located")
            else:
                report.record_correction("memory-correct", "output", j2, f"element {located[0]} repaired")


class _Pair:
    """Tiny (s1, s2) holder mirroring :class:`ChecksumPair` for local arrays."""

    __slots__ = ("s1", "s2")

    def __init__(self, s1, s2) -> None:
        self.s1 = s1
        self.s2 = s2

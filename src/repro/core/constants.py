"""Plan-time ABFT constants: the :class:`SchemeConstants` bundle.

Every checksum weight vector the schemes use is a pure function of the
transform size and the configuration - the computational vector ``r``
(powers of ``omega_3``), the closed-form/naive input checksum encodings
``rA``, the classic and modified memory-locating pairs, and the RMS
magnitudes the threshold policy derives from the weight vectors.  The seed
rebuilt all of them on *every* ``run()``; this module computes them exactly
once per plan (``FTPlan.__init__`` builds one bundle and threads it into the
scheme it constructs; schemes built directly create their own).

Fault-injection semantics are preserved: when a *live* injector is present,
the online schemes still regenerate their ``rA`` vectors under DMR so the
``CHECKSUM_COMPUTE`` fault site behaves exactly as in the paper (and as in
the seed).  The bundle is only the fault-free fast path - and because every
vector is produced by the same deterministic expressions the schemes used
per-run, the fault-free results are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.core.checksums import (
    MemoryChecksumVectors,
    computational_weights,
    halfcomplex_weights,
    input_checksum_weights,
    input_checksum_weights_naive,
    memory_weights_classic,
    memory_weights_modified,
)
from repro.fftlib.two_layer import TwoLayerDecomposition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config builds schemes)
    from repro.core.config import FTConfig

__all__ = ["SchemeConstants", "weight_rms"]


def weight_rms(weights: Optional[np.ndarray]) -> float:
    """RMS magnitude of a weight vector (the threshold policy's input).

    Matches the expression inside
    :meth:`repro.core.thresholds.ThresholdPolicy.eta_memory` exactly so that
    precomputed values are bit-identical to per-call ones.
    """

    if weights is None:
        return 0.0
    weights = np.asarray(weights)
    n = weights.shape[0]
    return float(np.sqrt(np.mean(np.abs(weights) ** 2))) if n else 0.0


@dataclass(frozen=True, eq=False)
class SchemeConstants:
    """Frozen, data-independent state of one protected transform.

    Built once at plan time by :meth:`for_config` (or the scheme-specific
    constructors below); fields that a configuration does not need are
    ``None``.  Arrays must be treated as immutable - they are shared between
    the plan, the scheme, and (for the modified pairs) each other.
    """

    n: int
    m: int
    k: int

    # --- per-stage computational checksum vectors (online schemes) -------
    r_m: Optional[np.ndarray] = None
    c_m: Optional[np.ndarray] = None
    r_k: Optional[np.ndarray] = None
    c_k: Optional[np.ndarray] = None

    # --- end-to-end vectors (offline scheme, batched protection) ---------
    r_n: Optional[np.ndarray] = None
    c_n: Optional[np.ndarray] = None

    # --- memory-locating pairs -------------------------------------------
    #: input columns (length m)
    w1_m: Optional[np.ndarray] = None
    w2_m: Optional[np.ndarray] = None
    #: output rows (length k)
    w1_k: Optional[np.ndarray] = None
    w2_k: Optional[np.ndarray] = None
    #: classic pair for the incrementally built row checksums (length k)
    u1_k: Optional[np.ndarray] = None
    u2_k: Optional[np.ndarray] = None
    #: end-to-end pair (length n)
    w1_n: Optional[np.ndarray] = None
    w2_n: Optional[np.ndarray] = None
    #: naive-scheme helper objects (classic weights + locate/correct)
    mem_m: Optional[MemoryChecksumVectors] = None
    mem_k: Optional[MemoryChecksumVectors] = None

    # --- precomputed threshold inputs (weight-vector RMS magnitudes) -----
    w1_m_rms: float = 0.0
    w1_k_rms: float = 0.0
    u1_k_rms: float = 0.0
    w1_n_rms: float = 0.0

    # --- real-input (packed half-complex) transform state ----------------
    #: the transform consumes n real samples and returns bins = n//2 + 1
    real: bool = False
    bins: int = 0
    #: conjugate-even fold of ``r_n`` onto the packed layout:
    #: ``r . X_full == hc_a . P + hc_b . conj(P)`` (so the closed-form rA
    #: input encodings keep working unchanged on real data)
    hc_a: Optional[np.ndarray] = None
    hc_b: Optional[np.ndarray] = None
    #: locating pair over the packed spectrum itself (output memory FT)
    p1_h: Optional[np.ndarray] = None
    p2_h: Optional[np.ndarray] = None
    p1_h_rms: float = 0.0
    #: interior verification of the compiled real fast path (even n only):
    #: the computational/input checksum pair of the cached *half-length*
    #: complex sub-transform, so ``c_h . z = r_h . Z`` is checked before the
    #: disentangle pass - faults are caught mid-pipeline, not only
    #: end-to-end.
    r_h: Optional[np.ndarray] = None
    c_h: Optional[np.ndarray] = None

    # --- in-place (overwrite) execution state ----------------------------
    #: the checksum-carried input surrogate of the in-place path: with
    #: ``F`` the (symmetric) DFT matrix, ``w1 . X == (F w1) . x``, so
    #: encoding ``(F w1) . x`` and ``(F w2) . x`` *before* the transform
    #: destroys the input yields the locating pair of the OUTPUT - a
    #: detected single-element corruption of the overwritten buffer is
    #: located and repaired without ever re-reading the (gone) input,
    #: the paper's Fig. 4 backup discipline carried by checksums instead
    #: of copies.  ``fw1_n``/``fw2_n`` are ``F w1_n``/``F w2_n`` (one
    #: compiled FFT each at plan time).
    inplace: bool = False
    fw1_n: Optional[np.ndarray] = None
    fw2_n: Optional[np.ndarray] = None
    #: the same carried pair for real plans, folded onto the packed
    #: ``n//2 + 1`` layout: ``p1_h . P == (F [p1_h; 0]) . x`` with the
    #: packed weights zero-extended to length ``n``.
    fp1_h: Optional[np.ndarray] = None
    fp2_h: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def with_real(self, memory_ft: bool, *, optimized: bool = True) -> "SchemeConstants":
        """This bundle extended with the packed-layout (rfft) vectors.

        Folds the end-to-end computational vector onto the ``n//2 + 1``
        layout and, with memory fault tolerance, adds a classic locating
        pair defined directly on the packed spectrum (the weights must be a
        function of the *stored* layout for single-bin location to work).
        Even sizes also get the half-length interior pair ``(r_h, c_h)``
        used by the compiled fast path's mid-pipeline verification, with
        the encoding (closed-form vs naive) matching ``optimized``.
        """

        bins = self.n // 2 + 1
        r_n = self.r_n if self.r_n is not None else computational_weights(self.n)
        hc_a, hc_b = halfcomplex_weights(r_n)
        p1_h = p2_h = None
        p1_h_rms = 0.0
        if memory_ft:
            p1_h, p2_h = memory_weights_classic(bins)
            p1_h_rms = weight_rms(p1_h)
        r_h = c_h = None
        if self.n % 2 == 0 and self.n > 2:
            half = self.n // 2
            r_h = computational_weights(half)
            encode = input_checksum_weights if optimized else input_checksum_weights_naive
            c_h = encode(half)
        return replace(
            self,
            real=True,
            bins=bins,
            r_n=r_n,
            hc_a=hc_a,
            hc_b=hc_b,
            p1_h=p1_h,
            p2_h=p2_h,
            p1_h_rms=p1_h_rms,
            r_h=r_h,
            c_h=c_h,
        )

    # ------------------------------------------------------------------
    def with_inplace(self) -> "SchemeConstants":
        """This bundle extended with the in-place carried locating pairs.

        Uses the compiled executor to evaluate ``F w`` once per weight
        vector at plan time (the vectors are data-independent, like every
        other field here).  Without memory fault tolerance there is no
        locating pair to carry, so a detected in-place violation is
        honestly uncorrectable - the input no longer exists to recompute
        from - and the bundle only gains the ``inplace`` marker.
        """

        from repro.fftlib.executor import fft as compiled_fft

        fw1 = fw2 = None
        if self.w1_n is not None and self.w2_n is not None:
            fw1 = compiled_fft(np.asarray(self.w1_n, dtype=np.complex128))
            fw2 = compiled_fft(np.asarray(self.w2_n, dtype=np.complex128))
        fp1 = fp2 = None
        if self.real and self.p1_h is not None and self.p2_h is not None:
            ext1 = np.zeros(self.n, dtype=np.complex128)
            ext1[: self.bins] = self.p1_h
            ext2 = np.zeros(self.n, dtype=np.complex128)
            ext2[: self.bins] = self.p2_h
            fp1 = compiled_fft(ext1)
            fp2 = compiled_fft(ext2)
        return replace(
            self, inplace=True, fw1_n=fw1, fw2_n=fw2, fp1_h=fp1, fp2_h=fp2
        )

    # ------------------------------------------------------------------
    @classmethod
    def for_plain(
        cls, n: int, m: Optional[int] = None, k: Optional[int] = None, *, real: bool = False
    ) -> "SchemeConstants":
        """The (empty) bundle of the unprotected baseline."""

        decomp = TwoLayerDecomposition.for_size(n, m, k)
        bundle = cls(n=decomp.n, m=decomp.m, k=decomp.k)
        return replace(bundle, real=True, bins=decomp.n // 2 + 1) if real else bundle

    @classmethod
    def for_offline(
        cls,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        optimized: bool,
        memory_ft: bool,
        real: bool = False,
    ) -> "SchemeConstants":
        """End-to-end vectors of Algorithm 1 (naive or optimized encoding)."""

        decomp = TwoLayerDecomposition.for_size(n, m, k)
        c_n = input_checksum_weights(n) if optimized else input_checksum_weights_naive(n)
        r_n = computational_weights(n)
        w1_n = w2_n = None
        if memory_ft:
            if optimized:
                # Section 4.1: rA doubles as the first locating vector (the
                # shared helper keeps the degenerate-weights guard for 3 | n).
                w1_n, w2_n = memory_weights_modified(n, base=c_n)
            else:
                w1_n, w2_n = memory_weights_classic(n)
        bundle = cls(
            n=decomp.n,
            m=decomp.m,
            k=decomp.k,
            r_n=r_n,
            c_n=c_n,
            w1_n=w1_n,
            w2_n=w2_n,
            w1_n_rms=weight_rms(w1_n),
        )
        return bundle.with_real(memory_ft, optimized=optimized) if real else bundle

    @classmethod
    def for_online(
        cls,
        n: int,
        m: Optional[int] = None,
        k: Optional[int] = None,
        *,
        optimized: bool,
        memory_ft: bool,
        modified_checksums: bool,
        real: bool = False,
    ) -> "SchemeConstants":
        """Per-stage vectors of Algorithm 2 / the Section 4 optimized scheme."""

        decomp = TwoLayerDecomposition.for_size(n, m, k)
        m_, k_ = decomp.m, decomp.k
        encode = input_checksum_weights if optimized else input_checksum_weights_naive
        c_m = encode(m_)
        c_k = encode(k_)
        kwargs: Dict[str, Any] = dict(
            n=decomp.n,
            m=m_,
            k=k_,
            r_m=computational_weights(m_),
            c_m=c_m,
            r_k=computational_weights(k_),
            c_k=c_k,
        )
        if memory_ft:
            if optimized:
                if modified_checksums:
                    w1_m = c_m
                    w2_m = c_m * np.arange(1, m_ + 1, dtype=np.float64)
                    w1_k = c_k
                    w2_k = c_k * np.arange(1, k_ + 1, dtype=np.float64)
                else:
                    w1_m, w2_m = memory_weights_classic(m_)
                    w1_k, w2_k = memory_weights_classic(k_)
                u1_k, u2_k = memory_weights_classic(k_)
                kwargs.update(
                    w1_m=w1_m,
                    w2_m=w2_m,
                    w1_k=w1_k,
                    w2_k=w2_k,
                    u1_k=u1_k,
                    u2_k=u2_k,
                    w1_m_rms=weight_rms(w1_m),
                    w1_k_rms=weight_rms(w1_k),
                    u1_k_rms=weight_rms(u1_k),
                )
            else:
                mem_m = MemoryChecksumVectors(m_, modified=False)
                mem_k = MemoryChecksumVectors(k_, modified=False)
                kwargs.update(
                    mem_m=mem_m,
                    mem_k=mem_k,
                    w1_m_rms=weight_rms(mem_m.w1),
                    w1_k_rms=weight_rms(mem_k.w1),
                )
        bundle = cls(**kwargs)
        return bundle.with_real(memory_ft, optimized=optimized) if real else bundle

    @classmethod
    def for_config(cls, n: int, config: "FTConfig") -> "SchemeConstants":
        """Build the bundle an :class:`~repro.core.config.FTConfig` needs.

        This is what ``FTPlan.__init__`` calls once per plan; the resulting
        bundle is threaded into the scheme constructor and reused for the
        plan's own batched end-to-end protection vectors.
        """

        real = bool(getattr(config, "real", False))
        inplace = bool(getattr(config, "inplace", False))
        if config.kind == "plain":
            return cls.for_plain(n, config.m, config.k, real=real)
        if config.kind == "offline":
            bundle = cls.for_offline(
                n, config.m, config.k,
                optimized=config.optimized,
                memory_ft=config.memory_ft,
                real=real,
            )
            return bundle.with_inplace() if inplace else bundle
        flags = config.flags
        modified = True if flags is None else bool(flags.modified_checksums)
        if not config.optimized:
            modified = False
        bundle = cls.for_online(
            n, config.m, config.k,
            optimized=config.optimized,
            memory_ft=config.memory_ft,
            modified_checksums=modified,
            real=real,
        )
        # The plan's batched end-to-end protection (execute_many) needs the
        # full-length vectors as well; build them with the same rules the
        # offline scheme uses so the two share one bundle.
        end_to_end = cls.for_offline(
            n, config.m, config.k,
            optimized=config.optimized,
            memory_ft=config.memory_ft,
        )
        bundle = replace(
            bundle,
            r_n=end_to_end.r_n,
            c_n=end_to_end.c_n,
            w1_n=end_to_end.w1_n,
            w2_n=end_to_end.w2_n,
            w1_n_rms=end_to_end.w1_n_rms,
        )
        return bundle.with_inplace() if inplace else bundle

"""The plan-centric public API: :func:`plan`, :class:`FTPlan`, the wisdom cache.

The paper's premise is FFTW's *plan once, execute many*: all checksum weight
vectors, twiddle tables, and sub-plans of a protected transform are
size-dependent but data-independent, so they should be paid for once.  This
module is that split for the ABFT schemes:

>>> import numpy as np, repro
>>> p = repro.plan(4096)                       # cached FTPlan (opt-online+mem)
>>> x = np.random.default_rng(0).standard_normal(4096) + 0j
>>> bool(np.allclose(p.execute(x).output, np.fft.fft(x)))
True
>>> repro.plan(4096) is p                      # wisdom: same object back
True

``plan()`` consults a thread-safe, size-bounded LRU cache keyed by
``(n, FTConfig)`` - the analogue of FFTW wisdom.  The returned
:class:`FTPlan` owns the scheme instance plus the batched-protection weight
vectors and exposes three execution entry points:

``execute(x)``
    The protected forward transform of one vector (the scheme's native
    fault-tolerance machinery: per-sub-FFT online verification etc.).
``inverse(X)``
    The protected inverse via the conjugation identity, so the same coverage
    applies in both directions.
``execute_many(X, axis=-1)``
    Batched execution.  The whole batch moves through the two-layer pipeline
    as one 3-D array (no per-row Python loop) and protection is *vectorized*:
    per-row end-to-end checksums are generated with one matrix-vector
    product, verified with one residual comparison, and only rows whose
    verification fails drop into the scalar recovery path (memory repair via
    the locating checksum pair, then re-execution under the fully protected
    scheme).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.core.base import SchemeResult
from repro.core.checksums import (
    repair_single_error,
    weighted_sum,
)
from repro.core.config import FTConfig
from repro.core.constants import SchemeConstants
from repro.core.detection import FTReport
from repro.core.thresholds import residual_exceeds
from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.models import FaultSite
from repro.fftlib.backends import resolve_backend_name
from repro.utils.validation import ensure_positive_int

__all__ = [
    "BatchResult",
    "FTPlan",
    "PlanCacheInfo",
    "plan",
    "plan_cache_info",
    "clear_plan_cache",
    "set_plan_cache_limit",
]


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

@dataclass
class BatchResult:
    """Output of one batched protected execution (see ``execute_many``)."""

    output: np.ndarray
    report: FTReport
    #: flat indices (into the flattened batch) of rows that failed the
    #: vectorized verification and went through scalar recovery
    fallback_rows: Tuple[int, ...] = ()

    @property
    def detected(self) -> bool:
        return self.report.detected

    @property
    def corrected(self) -> bool:
        return self.report.corrected

    @property
    def uncorrectable(self) -> bool:
        return self.report.has_uncorrectable


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------

class FTPlan:
    """A reusable, cached, fault-tolerant transform of one size and config.

    Create via :func:`plan` (which caches) or directly (which does not).
    Plans hold no per-execution state, so one plan may be shared freely
    across threads and executed concurrently.
    """

    def __init__(self, n: int, config: Union[FTConfig, str, None] = None) -> None:
        if config is None:
            config = FTConfig()
        elif isinstance(config, str):
            config = FTConfig.from_name(config)
        self.n = ensure_positive_int(n, name="n")
        self.config = config
        # All data-independent ABFT state - checksum weight vectors,
        # closed-form rA encodings, locating pairs, threshold weight-RMS
        # inputs - is computed exactly once here and threaded into the
        # scheme; execute() never rebuilds it.
        self.constants = SchemeConstants.for_config(self.n, config)
        self.scheme = config.build(self.n, constants=self.constants)
        self.dtype = np.dtype(config.dtype)
        self._protected = config.kind != "plain"
        if self._protected:
            # Batched-protection state: end-to-end computational checksum
            # vector (c = rA) and, with memory FT, the locating pair
            # (Section 4.1 reuse with the 3 | n degenerate-weights guard,
            # all from the shared plan-time bundle).
            self._c = self.constants.c_n
            self._r = self.constants.r_n
            self._w1 = self.constants.w1_n
            self._w2 = self.constants.w2_n
        # Recovery retry budget: explicit flags win; otherwise inherit the
        # built scheme's own effective default so execute() and
        # execute_many() agree on what "uncorrectable" means.
        flags = config.flags
        if flags is not None:
            self._max_retries = int(flags.max_retries)
        elif hasattr(self.scheme, "flags"):
            self._max_retries = int(self.scheme.flags.max_retries)
        else:
            self._max_retries = int(getattr(self.scheme, "max_retries", 2))

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.scheme.plan.m

    @property
    def k(self) -> int:
        return self.scheme.plan.k

    @property
    def backend(self) -> str:
        return self.scheme.plan.backend

    @property
    def scheme_name(self) -> str:
        return self.scheme.name

    @property
    def thresholds(self):
        return self.scheme.thresholds

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Protected forward transform of one length-``n`` vector."""

        result = self.scheme.execute(x, injector)
        return self._cast_result(result)

    def __call__(self, x: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        return self.execute(x, injector)

    def inverse(self, spectrum: np.ndarray, injector: Optional[FaultInjector] = None) -> SchemeResult:
        """Protected inverse transform.

        Implemented with the conjugation identity
        ``ifft(X) = conj(fft(conj(X))) / n`` so the exact same protected
        forward machinery (and therefore the same coverage) applies.
        """

        spectrum = np.asarray(spectrum, dtype=np.complex128)
        result = self.scheme.execute(np.conj(spectrum), injector)
        output = np.conj(result.output) / self.n
        return self._cast_result(
            SchemeResult(output=output, report=result.report, scheme=result.scheme)
        )

    # ------------------------------------------------------------------
    def execute_many(
        self,
        X: np.ndarray,
        axis: int = -1,
        injector: Optional[FaultInjector] = None,
    ) -> BatchResult:
        """Protected transform of every length-``n`` slice of ``X`` along ``axis``.

        The batch is transformed as one array (vectorized two-layer pipeline)
        and protected by vectorized per-row end-to-end checksums; see the
        module docstring.  With an injector, faults may strike the batched
        input and output arrays (:attr:`FaultSite.INPUT` /
        :attr:`FaultSite.OUTPUT`); stage-interior sites never fire in a
        batched run (recovery re-executions are deliberately injector-free
        so a persistent spec cannot re-corrupt its own repair) - use
        :meth:`execute` to exercise interior fault sites.
        """

        X = np.asarray(X)
        if X.ndim == 0:
            raise ValueError("execute_many expects at least a 1-D array")
        moved = np.moveaxis(np.asarray(X, dtype=np.complex128), axis, -1)
        if moved.shape[-1] != self.n:
            raise ValueError(
                f"axis {axis} has length {moved.shape[-1]}, expected {self.n}"
            )
        batch_shape = moved.shape[:-1]
        # The working array must be private: the schemes never mutate caller
        # data, and the batch path must not either (the injector corrupts -
        # and recovery repairs - this array in place).  Reshaping a
        # non-contiguous moveaxis view already copies, so only copy when the
        # reshape still aliases the caller's buffer.
        rows = moved.reshape(-1, self.n)
        if np.may_share_memory(rows, X):
            rows = rows.copy()
        batch = rows.shape[0]
        injector = injector or NullInjector()
        report = FTReport(scheme=f"{self.scheme.name}[batch]")
        fallback: List[int] = []

        if not self._protected:
            injector.visit(FaultSite.INPUT, rows)
            out = self._transform_rows(rows)
            injector.visit(FaultSite.OUTPUT, out)
        else:
            # --- vectorized encoding (one matmul per checksum vector) ----
            cx = rows @ self._c
            etas = self.thresholds.eta_offline_batch(self.n, rows)
            if self.config.memory_ft:
                s1 = rows @ self._w1
                s2 = rows @ self._w2
                eta_mem = self.thresholds.eta_memory_batch(
                    self._w1, rows, weight_rms=self.constants.w1_n_rms
                )
            else:
                s1 = s2 = None
            report.bump("checksum-generations", batch)

            # Faults may strike only once the protection exists (the paper's
            # fault model excludes corruption during checksum generation).
            injector.visit(FaultSite.INPUT, rows)

            # --- vectorized transform + vectorized verification ----------
            out = self._transform_rows(rows)
            injector.visit(FaultSite.OUTPUT, out)
            residuals = np.abs(out @ self._r - cx)
            report.bump("verifications", batch)
            comp_violations = residual_exceeds(residuals, etas)
            violations = comp_violations
            if self.config.memory_ft:
                # Also verify the input rows against their stored locating
                # checksums (one matmul): this catches input corruption even
                # at the 3 | n sizes where the end-to-end vector rA is
                # nearly degenerate and the computational residual is blind.
                mem_residuals = np.abs(rows @ self._w1 - s1)
                report.bump("memory-verifications", batch)
                violations = violations | residual_exceeds(mem_residuals, eta_mem)
            bad = np.nonzero(violations)[0]

            # --- scalar recovery for the (rare) flagged rows --------------
            for idx in bad:
                idx = int(idx)
                # Rows flagged only by the memory check get their
                # "batch-mcv" record inside _recover_row; don't fabricate a
                # computational violation for them here.
                if comp_violations[idx]:
                    report.record_verification(
                        "batch-ccv", idx, float(residuals[idx]), float(etas[idx]), True
                    )
                fallback.append(idx)
                ok = self._recover_row(rows, out, idx, cx, etas, s1, s2, report)
                if not ok:
                    report.record_uncorrectable(
                        f"batch row {idx} still failing after {self._max_retries} retries"
                    )

        output = out.reshape(batch_shape + (self.n,))
        output = np.moveaxis(output, -1, axis)
        if self.dtype != np.complex128:
            output = output.astype(self.dtype)
        return BatchResult(output=output, report=report, fallback_rows=tuple(fallback))

    # ------------------------------------------------------------------
    def _transform_rows(self, rows: np.ndarray) -> np.ndarray:
        """Unprotected vectorized two-layer transform of a ``(batch, n)`` array."""

        tl = self.scheme.plan
        batch = rows.shape[0]
        work = rows.reshape(batch, tl.m, tl.k)
        inner = tl.inner_plan.execute_batch(work, axis=1)
        twiddled = inner * tl.twiddles[None, :, :]
        outer = tl.outer_plan.execute_batch(twiddled, axis=2)
        # scatter_output, batched: result[j2, j1] holds frequency j1*m + j2.
        return np.ascontiguousarray(outer.transpose(0, 2, 1)).reshape(batch, self.n)

    def _recover_row(self, rows, out, idx, cx, etas, s1, s2, report) -> bool:
        """Recover flagged row ``idx``; mirrors the offline restart loop."""

        row = rows[idx]
        for _ in range(max(1, self._max_retries)):
            if self.config.memory_ft:
                eta_mem = self.thresholds.eta_memory(
                    self._w1, row, weight_rms=self.constants.w1_n_rms
                )
                residual = float(np.abs(weighted_sum(self._w1, row) - s1[idx]))
                if residual_exceeds(residual, eta_mem):
                    report.record_verification("batch-mcv", idx, residual, eta_mem, True)
                    repaired = repair_single_error(row, self._w1, self._w2, s1[idx], s2[idx])
                    if repaired is None:
                        report.record_uncorrectable(
                            f"batch row {idx}: input corruption could not be located"
                        )
                        return False
                    report.record_correction(
                        "memory-correct", "batch-input", idx, f"element {repaired[0]} repaired"
                    )
            # Re-execute through the fully protected scalar scheme so the
            # recovery inherits the scheme's own sub-FFT-level machinery.
            result = self.scheme.execute(row)
            report.merge(result.report)
            report.record_correction("recompute", "batch", idx, "row re-executed under full protection")
            residual = float(np.abs(weighted_sum(self._r, result.output) - cx[idx]))
            ok = not bool(residual_exceeds(residual, float(etas[idx])))
            report.record_verification("batch-ccv-retry", idx, residual, float(etas[idx]), not ok)
            if ok:
                out[idx] = result.output
                return True
        return False

    # ------------------------------------------------------------------
    def _cast_result(self, result: SchemeResult) -> SchemeResult:
        if self.dtype != np.complex128:
            result.output = result.output.astype(self.dtype)
        return result

    def describe(self) -> str:
        return (
            f"FTPlan(n={self.n} = {self.m} x {self.k}, scheme={self.scheme.name}, "
            f"backend={self.backend}, dtype={self.dtype.name})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# ----------------------------------------------------------------------
# the plan cache ("wisdom")
# ----------------------------------------------------------------------

class PlanCacheInfo(NamedTuple):
    hits: int
    misses: int
    size: int
    limit: int


_DEFAULT_CACHE_LIMIT = 32

_cache_lock = threading.RLock()
_cache: "OrderedDict[Tuple[int, FTConfig], FTPlan]" = OrderedDict()
_cache_limit = _DEFAULT_CACHE_LIMIT
_hits = 0
_misses = 0


def plan(n: int, config: Union[FTConfig, str, None] = None, **overrides) -> FTPlan:
    """A cached :class:`FTPlan` for an ``n``-point protected transform.

    Parameters
    ----------
    n:
        Transform length.
    config:
        An :class:`FTConfig`, a legacy registry name (``"opt-online+mem"``),
        or ``None`` for the default configuration.
    **overrides:
        Individual :class:`FTConfig` fields to override, e.g.
        ``plan(4096, backend="numpy")`` or
        ``plan(4096, "offline", memory_ft=True)``.

    Repeated calls with an equal ``(n, config)`` return the *same* plan
    object from a thread-safe, size-bounded LRU cache, so planning cost
    (checksum weight vectors, twiddle tables, sub-plans) is paid once per
    configuration - FFTW wisdom for the protected transform.
    """

    if config is None:
        config = FTConfig(**overrides)
    elif isinstance(config, str):
        config = FTConfig.from_name(config, **overrides)
    elif isinstance(config, FTConfig):
        if overrides:
            config = config.replace(**overrides)
    else:
        raise TypeError(f"config must be FTConfig, str, or None, got {type(config).__name__}")

    # Resolve backend=None to the *current* process default before keying:
    # otherwise a later set_default_backend() would keep returning plans
    # built under the old default, and backend=None / backend="fftlib"
    # would cache duplicate plans for the same kernel.
    resolved = resolve_backend_name(config.backend)
    if config.backend != resolved:
        config = config.replace(backend=resolved)

    key = (int(n), config)
    global _hits, _misses
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _hits += 1
            _cache.move_to_end(key)
            return cached
    # Build outside the lock: planning is the expensive part (checksum
    # weight vectors, twiddle warm-up) and must not serialize unrelated
    # threads.  On a race the first inserted plan wins and the duplicate
    # construction is discarded.
    created = FTPlan(n, config)
    with _cache_lock:
        existing = _cache.get(key)
        if existing is not None:
            _hits += 1
            _cache.move_to_end(key)
            return existing
        _misses += 1
        _cache[key] = created
        while len(_cache) > _cache_limit:
            _cache.popitem(last=False)
        return created


def plan_cache_info() -> PlanCacheInfo:
    """Hit/miss/size statistics of the plan cache."""

    with _cache_lock:
        return PlanCacheInfo(hits=_hits, misses=_misses, size=len(_cache), limit=_cache_limit)


def clear_plan_cache() -> None:
    """Drop all cached plans and reset the statistics."""

    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def set_plan_cache_limit(limit: int) -> None:
    """Bound the cache to ``limit`` plans (evicting least-recently-used)."""

    global _cache_limit
    limit = ensure_positive_int(limit, name="limit")
    with _cache_lock:
        _cache_limit = limit
        while len(_cache) > _cache_limit:
            _cache.popitem(last=False)

"""The plan-centric public API: :func:`plan`, :class:`FTPlan`, the wisdom cache.

The paper's premise is FFTW's *plan once, execute many*: all checksum weight
vectors, twiddle tables, and sub-plans of a protected transform are
size-dependent but data-independent, so they should be paid for once.  This
module is that split for the ABFT schemes:

>>> import numpy as np, repro
>>> p = repro.plan(4096)                       # cached FTPlan (opt-online+mem)
>>> x = np.random.default_rng(0).standard_normal(4096) + 0j
>>> bool(np.allclose(p.execute(x).output, np.fft.fft(x)))
True
>>> repro.plan(4096) is p                      # wisdom: same object back
True

``plan()`` consults a thread-safe, size-bounded LRU cache keyed by
``(n, FTConfig)`` - the analogue of FFTW wisdom.  The returned
:class:`FTPlan` owns the scheme instance plus the batched-protection weight
vectors and exposes three execution entry points:

``execute(x)``
    The protected forward transform of one vector (the scheme's native
    fault-tolerance machinery: per-sub-FFT online verification etc.).
``inverse(X)``
    The protected inverse via the conjugation identity, so the same coverage
    applies in both directions.
``execute_many(X, axis=-1)``
    Batched execution.  The whole batch moves through the two-layer pipeline
    as one 3-D array (no per-row Python loop) and protection is *vectorized*:
    per-row end-to-end checksums are generated with one matrix-vector
    product, verified with one residual comparison, and only rows whose
    verification fails drop into the scalar recovery path (memory repair via
    the locating checksum pair, then re-execution under the fully protected
    scheme).

With ``FTConfig.threads`` above 1, fault-free batches additionally run
*chunk-parallel* on the process-wide worker pool (:mod:`repro.runtime`):
each worker transforms a contiguous slice of rows and verifies its own
slice's end-to-end checksums before returning - per-worker ABFT, the
shared-memory analogue of the paper's per-rank FFT2 protection - so a
corrupted worker's chunk is located and recovered independently of the
others.  The chunk layout depends only on ``(batch, threads)``, never on
the pool, keeping threaded results deterministic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import SchemeResult
from repro.core.checksums import (
    halfcomplex_sum,
    repair_single_error,
    weighted_sum,
)
from repro.core.config import FTConfig
from repro.core.constants import SchemeConstants
from repro.core.detection import FTReport
from repro.core.thresholds import ThresholdPolicy, residual_exceeds
from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.models import FaultSite
from repro.fftlib.backends import get_backend, resolve_backend_name
from repro.runtime.pool import get_pool, resolve_thread_count, split_ranges
from repro.telemetry import trace as _trace
from repro.utils.validation import as_complex_vector, ensure_positive_int

__all__ = [
    "BatchResult",
    "FTPlan",
    "PlanCacheInfo",
    "plan",
    "plan_cache_info",
    "clear_plan_cache",
    "set_plan_cache_limit",
]


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

@dataclass
class BatchResult:
    """Output of one batched protected execution (see ``execute_many``)."""

    output: np.ndarray
    report: FTReport
    #: flat indices (into the flattened batch) of rows that failed the
    #: vectorized verification and went through scalar recovery
    fallback_rows: Tuple[int, ...] = ()
    #: flat indices of rows whose recovery ultimately failed; per-row
    #: consumers (the serving batcher) read this instead of parsing the
    #: report's free-text ``uncorrectable`` messages
    uncorrectable_rows: Tuple[int, ...] = ()

    @property
    def detected(self) -> bool:
        return self.report.detected

    @property
    def corrected(self) -> bool:
        return self.report.corrected

    @property
    def uncorrectable(self) -> bool:
        return self.report.has_uncorrectable


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------

class FTPlan:
    """A reusable, cached, fault-tolerant transform of one size and config.

    Create via :func:`plan` (which caches) or directly (which does not).
    Plans hold no per-execution state, so one plan may be shared freely
    across threads and executed concurrently.
    """

    def __init__(self, n: int, config: Union[FTConfig, str, None] = None) -> None:
        if config is None:
            config = FTConfig()
        elif isinstance(config, str):
            config = FTConfig.from_name(config)
        self.n = ensure_positive_int(n, name="n")
        self.config = config
        # All data-independent ABFT state - checksum weight vectors,
        # closed-form rA encodings, locating pairs, threshold weight-RMS
        # inputs - is computed exactly once here and threaded into the
        # scheme; execute() never rebuilds it.
        self.constants = SchemeConstants.for_config(self.n, config)
        self.scheme = config.build(self.n, constants=self.constants)
        self.dtype = np.dtype(config.dtype)
        self._protected = config.kind != "plain"
        #: real-input mode: float64 input, packed n//2 + 1 output layout
        self._real = bool(config.real)
        self.bins = self.n // 2 + 1
        #: shared-memory parallelism: chunk count of fault-free batched
        #: executions (``None`` -> 1 = serial, ``0`` -> the pool's size)
        self.threads = resolve_thread_count(config.threads)
        if self._protected:
            # Batched-protection state: end-to-end computational checksum
            # vector (c = rA) and, with memory FT, the locating pair
            # (Section 4.1 reuse with the 3 | n degenerate-weights guard,
            # all from the shared plan-time bundle).  Real plans additionally
            # carry the conjugate-even fold of r onto the packed layout and
            # a locating pair over the packed spectrum itself.
            self._c = self.constants.c_n
            self._r = self.constants.r_n
            self._w1 = self.constants.w1_n
            self._w2 = self.constants.w2_n
            self._hc_a = self.constants.hc_a
            self._hc_b = self.constants.hc_b
        # Compiled real program (fftlib backend): fetched from the shared
        # program LRU at plan time, so real execution pays no lowering cost.
        self._real_program = None
        if self._real and self.backend == "fftlib":
            from repro.fftlib.executor import get_real_program

            self._real_program = get_real_program(self.n, native=config.native)
        #: in-place execution (``FTConfig.inplace``): the compiled Stockham
        #: program behind the ``out=`` overwrite paths of ``execute`` /
        #: ``execute_many`` (complex plans, fftlib backend, supported sizes;
        #: ``None`` keeps the overwrite *semantics* via transform-and-copy).
        self._inplace = bool(config.inplace)
        self._inplace_program = None
        if (
            self._inplace
            and not self._real
            and self.backend == "fftlib"
        ):
            from repro.fftlib.executor import get_stockham_program, stockham_supported

            if stockham_supported(self.n):
                self._inplace_program = get_stockham_program(
                    self.n, native=config.native
                )
        #: Compiled direct program for batched complex rows (fftlib backend):
        #: execute_many transforms the whole batch through the one-shot stage
        #: program instead of the two-layer pipeline.
        self._batch_program = None
        #: Fused protected program (tentpole of the fused execution path):
        #: protection compiled into the transform - per-stage taps, frozen
        #: verification operators - used by the fault-free single-vector
        #: ``execute``/``inverse``.  Live injectors always take the
        #: paper-exact scheme path.
        self._fused_program = None
        self._fused_eta = None
        self._fused_eta_memory = None
        if not self._real and self.backend == "fftlib":
            from repro.fftlib.executor import get_program

            # Native stage bodies for the batched fault-free path (the fused
            # protected program keeps its own pure-NumPy lowering - its
            # interleaved verification taps have no native kernels).
            self._batch_program = get_program(self.n, native=config.native)
            if self._protected:
                from repro.fftlib.planner import get_default_planner
                from repro.fftlib.protected import get_protected_program

                self._fused_program = get_protected_program(
                    self.n, optimized=config.optimized, memory_ft=config.memory_ft
                )
                # Threshold derivations, pre-bound at plan time (bit-identical
                # to eta_offline / eta_memory, see ThresholdPolicy).
                self._fused_eta = self.thresholds.offline_threshold_fn(self.n)
                self._fused_eta_memory = self.thresholds.memory_threshold_fn(self.n)
                # MEASURE-mode planners time fused-vs-scheme once per size
                # and remember the winner in wisdom; ESTIMATE trusts the
                # fused lowering (it wraps the fastest compiled program).
                if not get_default_planner().fused_wins(
                    self.n,
                    lambda v: self._execute_fused(v),
                    lambda v: self.scheme.execute(v),
                ):
                    self._fused_program = None
        # Recovery retry budget: explicit flags win; otherwise inherit the
        # built scheme's own effective default so execute() and
        # execute_many() agree on what "uncorrectable" means.
        flags = config.flags
        if flags is not None:
            self._max_retries = int(flags.max_retries)
        elif hasattr(self.scheme, "flags"):
            self._max_retries = int(self.scheme.flags.max_retries)
        else:
            self._max_retries = int(getattr(self.scheme, "max_retries", 2))

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.scheme.plan.m

    @property
    def k(self) -> int:
        return self.scheme.plan.k

    @property
    def backend(self) -> str:
        return self.scheme.plan.backend

    @property
    def scheme_name(self) -> str:
        return self.scheme.name

    @property
    def thresholds(self) -> ThresholdPolicy:
        return self.scheme.thresholds

    # ------------------------------------------------------------------
    def execute(
        self,
        x: np.ndarray,
        injector: Optional[FaultInjector] = None,
        *,
        out: Optional[np.ndarray] = None,
    ) -> SchemeResult:
        """Protected forward transform of one length-``n`` vector.

        Real plans accept ``n`` float64 samples and return the packed
        ``n//2 + 1`` spectrum (``numpy.fft.rfft`` layout) with the same
        detection/correction guarantees: a live injector routes through the
        scheme's full interior machinery (packed-layout OUTPUT site and
        locating checksums included), fault-free runs take the compiled
        half-complex program with end-to-end conjugate-even verification.

        ``out`` selects the overwrite path (Section 5 of the paper): the
        result is written into the given buffer, which for complex plans
        may be ``x`` itself - the transform then runs genuinely in place
        (Stockham lowering, one half-size scratch) and the input is
        *destroyed*.  Verification still works because the checksums
        encoded before the transform carry an input surrogate: with memory
        fault tolerance the locating pair is re-encoded onto the output
        side (``w . X = (F w) . x``), so a detected single-element
        corruption of the overwritten buffer is located and repaired
        without the input; without memory FT a detected violation is
        honestly uncorrectable.  Like the batched path, the overwrite path
        visits only the INPUT/OUTPUT fault sites - use the out-of-place
        ``execute`` to exercise stage-interior sites.
        """

        if out is not None:
            if self._real:
                return self._execute_real_out(x, injector, out)
            return self._execute_out(x, injector, out)
        if self._real:
            return self._execute_real(x, injector)
        return self._cast_result(self._execute_complex(x, injector))

    def __call__(
        self,
        x: np.ndarray,
        injector: Optional[FaultInjector] = None,
        *,
        out: Optional[np.ndarray] = None,
    ) -> SchemeResult:
        return self.execute(x, injector, out=out)

    def _execute_complex(
        self, x: np.ndarray, injector: Optional[FaultInjector]
    ) -> SchemeResult:
        """Route one complex vector: fused fast path or paper-exact scheme.

        The fused program handles fault-free runs only; any live injector
        gets the scheme's full interior machinery so every instrumented
        fault site keeps firing exactly as the paper describes.
        """

        if self._fused_program is not None and (injector is None or not injector.is_live):
            return self._execute_fused(x)
        return self.scheme.execute(x, injector)

    def inverse(
        self, spectrum: np.ndarray, injector: Optional[FaultInjector] = None
    ) -> SchemeResult:
        """Protected inverse transform.

        Implemented with the conjugation identity
        ``ifft(X) = conj(fft(conj(X))) / n`` so the exact same protected
        forward machinery (and therefore the same coverage) applies.  Real
        plans map the packed spectrum back to ``n`` real samples, protected
        end-to-end through the same checksum identity (``c . x = r . X``
        with the packed-layout fold on the spectrum side).
        """

        if self._real:
            return self._inverse_real(spectrum, injector)
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        result = self._execute_complex(np.conj(spectrum), injector)
        output = np.conj(result.output) / self.n
        return self._cast_result(
            SchemeResult(output=output, report=result.report, scheme=result.scheme)
        )

    # ------------------------------------------------------------------
    # fused protected execution (fault-free fast path)
    # ------------------------------------------------------------------
    def _execute_fused(self, x: np.ndarray) -> SchemeResult:
        """One vector through the fused protected program.

        Protection compiled into the transform: the reference checksums for
        every tap come from one :meth:`ProtectedStageProgram.encode` pass
        (telescoping folds, ~2n complex ops), the transform itself is the
        compiled stage program with per-stage tap reductions interleaved,
        and all verification operators were frozen at plan time.  The
        spectrum is bit-identical to the unprotected compiled transform;
        the end-to-end check (``taps[-1]`` vs ``c . x``) is the paper's
        offline verification with the exact thresholds the legacy scheme
        uses.  Detected violations follow the same discipline as
        :meth:`_protected_rfft`: memory-verify and repair the input via the
        locating pair, then restart, up to the retry budget.
        """

        prog = self._fused_program
        original = x
        x = as_complex_vector(x, name="x")
        if x.size != self.n:
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        # The input is only copied if a repair must mutate it (fault-free
        # runs never pay for the legacy path's defensive copy).
        private = x is not original
        report = FTReport(scheme=self.scheme.name)
        thresholds = self.thresholds
        memory = self.config.memory_ft

        refs = prog.encode(x)
        cx = complex(refs[-1])
        x_rms = thresholds.magnitude_rms(x)
        sigma0 = float(x_rms / np.sqrt(2.0))
        eta = self._fused_eta(sigma0)
        if memory:
            # With the optimized scheme w1 *is* the rA encoding, so the
            # first locating checksum is the input checksum already in hand.
            # Same np.dot / suppressed-overflow contract as weighted_sum,
            # one errstate entry for both checksums.
            with np.errstate(over="ignore", invalid="ignore"):
                s1 = cx if prog.reuse_input_checksum else complex(np.dot(self._w1, x))
                s2 = complex(np.dot(self._w2, x))
            eta_mem = self._fused_eta_memory(self.constants.w1_n_rms, x_rms)
        report.bump("checksum-generations", 1)

        def _repair_input() -> bool:
            """Memory-verify ``x``, repair a located corruption, re-encode.

            Returns ``False`` only when corruption was detected but could
            not be located (uncorrectable).  Mirrors the discipline of
            :meth:`_protected_rfft`.
            """

            nonlocal x, private, refs, cx, s1
            if not memory:
                return True
            mem_residual = float(np.abs(weighted_sum(self._w1, x) - s1))
            if residual_exceeds(mem_residual, eta_mem):
                report.record_verification("fused-mcv", None, mem_residual, eta_mem, True)
                if not private:
                    x = x.copy()
                    private = True
                repaired = repair_single_error(x, self._w1, self._w2, s1, s2)
                if repaired is None:
                    report.record_uncorrectable(
                        "fused: input corruption could not be located"
                    )
                    return False
                report.record_correction(
                    "memory-correct", "fused-input", None,
                    f"element {repaired[0]} repaired",
                )
                # The tap references were encoded from the pre-repair data
                # and would otherwise flag every subsequent (correct) run.
                refs = prog.encode(x)
                cx = complex(refs[-1])
                if prog.reuse_input_checksum:
                    s1 = cx
            return True

        attempts = 0
        single_tap = len(prog.taps) == 1
        while True:
            attempts += 1
            output, taps = prog.execute_tapped(x)
            report.bump("verifications", len(prog.taps))
            if single_tap:
                # Scalar path: a Python float comparison with the same
                # NaN-is-violation semantics as residual_exceeds.
                final_residual = float(np.abs(taps[0] - refs[0]))
                detected = not final_residual <= eta
                report.record_verification(
                    "fused-ccv", None, final_residual, eta, detected
                )
            else:
                residuals = np.abs(taps - refs)
                violations = residual_exceeds(residuals, eta)
                detected = bool(violations.any())
                report.record_verification(
                    "fused-ccv", None, float(residuals[-1]), eta, bool(violations[-1])
                )
                if detected and not bool(violations[-1]):
                    # Interior-only violation: the earliest flagged tap names
                    # the first corrupted stage.
                    stage = int(np.nonzero(violations)[0][0])
                    report.record_verification(
                        "fused-interior-ccv", stage, float(residuals[stage]), eta, True
                    )
            if not detected:
                break
            if not _repair_input():
                break
            if attempts > self._max_retries:
                report.record_uncorrectable(
                    f"fused: verification still failing after "
                    f"{self._max_retries} restarts"
                )
                break
            report.record_correction(
                "restart", "fused", None, "fused transform recomputed"
            )
        return SchemeResult(output=output, report=report, scheme=self.scheme.name)

    # ------------------------------------------------------------------
    # real-input execution
    # ------------------------------------------------------------------
    def _as_real(self, data: np.ndarray, name: str = "x") -> np.ndarray:
        """A private float64 copy of ``data`` (complex inputs must be real)."""

        data = np.asarray(data)
        if np.iscomplexobj(data):
            if np.any(data.imag != 0.0):
                raise ValueError(f"real plan expects real-valued {name}")
            data = data.real
        return np.array(data, dtype=np.float64)

    def _transform_real(self, rows: np.ndarray) -> np.ndarray:
        """Unprotected packed transform (compiled program or backend rfft)."""

        if self._real_program is not None:
            return self._real_program.execute(rows)
        return get_backend(self.backend).rfft(rows, axis=-1)

    def _inverse_transform_real(self, spectrum: np.ndarray) -> np.ndarray:
        if self._real_program is not None:
            return self._real_program.execute_inverse(spectrum)
        return get_backend(self.backend).irfft(spectrum, n=self.n, axis=-1)

    def _output_checksum(self, packed: np.ndarray) -> Union[np.complexfloating, np.ndarray]:
        """End-to-end output reduction; the conjugate-even fold in real mode.

        Works on one spectrum (last axis = bins/n) or a batch of them.
        """

        if self._real:
            return halfcomplex_sum(
                self._hc_a, self._hc_b, packed, axis=1 if packed.ndim == 2 else 0
            )
        return packed @ self._r

    def _execute_real(self, x: np.ndarray, injector: Optional[FaultInjector]) -> SchemeResult:
        injector = injector or NullInjector()
        xr = self._as_real(x)
        if xr.shape != (self.n,):
            raise ValueError(f"input has length {xr.size}, expected {self.n}")
        if injector.is_live:
            # Paper-exact path: full interior machinery on the complexified
            # input, packed OUTPUT site + packed locating MCV in the scheme.
            return self._cast_result(self.scheme.execute(xr, injector))
        report = FTReport(scheme=self.scheme.name)
        if not self._protected:
            output = self._transform_real(xr)
        else:
            output = self._protected_rfft(xr, report)
        return self._cast_result(
            SchemeResult(output=output, report=report, scheme=self.scheme.name)
        )

    def _protected_rfft(self, xr: np.ndarray, report: FTReport) -> np.ndarray:
        """End-to-end protected compiled rfft (fault-free fast path).

        Offline-style protection around the half-complex program: the input
        checksum ``c . x`` uses the unchanged closed-form ``rA`` encoding
        (real samples), the output side folds onto the packed layout, and a
        violation repairs the input via the locating pair before
        recomputing.  On even sizes the cached half-length complex
        sub-transform is additionally verified *before* the disentangle pass
        (``c_h . z = r_h . Z``), so a fault inside the compiled pipeline is
        caught and recomputed mid-pipeline instead of surfacing only in the
        end-to-end check.
        """

        consts = self.constants
        cx = weighted_sum(self._c, xr)
        x_rms = self.thresholds.magnitude_rms(xr)
        sigma0 = float(x_rms / np.sqrt(2.0))
        eta = self.thresholds.eta_offline(self.n, xr, sigma0=sigma0)
        if self.config.memory_ft:
            s1 = weighted_sum(self._w1, xr)
            s2 = weighted_sum(self._w2, xr)
            eta_mem = self.thresholds.eta_memory(
                self._w1, xr, weight_rms=consts.w1_n_rms, data_rms=x_rms
            )
        program = self._real_program
        interior = (
            program is not None
            and getattr(program, "half", 0) > 0
            and consts.c_h is not None
        )
        cz = eta_h = z = None
        if interior:
            # The packed view z aliases xr, so a memory repair of the input
            # is visible here without re-packing.
            z = program.pack(xr)
            cz = weighted_sum(consts.c_h, z)
            eta_h = self.thresholds.eta_offline(program.half, z)

        def _repair_input() -> bool:
            """Memory-verify ``xr`` and repair a located corruption.

            Returns ``False`` only when corruption was detected but could
            not be located (uncorrectable).  Both the interior and the
            end-to-end detection branches route through this, so a
            persistent input fault is repaired no matter which check
            catches it first.  A repair re-encodes the interior checksum:
            ``cz`` was computed from the pre-repair view and would
            otherwise flag every subsequent (correct) half transform.
            """

            nonlocal cz, eta_h
            if not self.config.memory_ft:
                return True
            mem_residual = float(np.abs(weighted_sum(self._w1, xr) - s1))
            if residual_exceeds(mem_residual, eta_mem):
                report.record_verification("real-mcv", None, mem_residual, eta_mem, True)
                repaired = repair_single_error(xr, self._w1, self._w2, s1, s2)
                if repaired is None:
                    report.record_uncorrectable(
                        "real: input corruption could not be located"
                    )
                    return False
                report.record_correction(
                    "memory-correct", "real-input", None, f"element {repaired[0]} repaired"
                )
                if interior:
                    cz = weighted_sum(consts.c_h, z)
                    eta_h = self.thresholds.eta_offline(program.half, z)
            return True
        output = None
        attempts = 0
        while True:
            attempts += 1
            if interior:
                half_spectrum = program.transform_half(z)
                residual_h = float(
                    np.abs(weighted_sum(consts.r_h, half_spectrum) - cz)
                )
                detected_h = bool(residual_exceeds(residual_h, eta_h))
                report.record_verification(
                    "real-interior-ccv", None, residual_h, eta_h, detected_h
                )
                if detected_h:
                    # A corrupted *input* also trips the interior check (it
                    # reads z, a view of xr), so the locating pair must get
                    # its repair chance before the restart recomputes from
                    # the same data.
                    if not _repair_input():
                        output = program.disentangle(half_spectrum)
                        break
                    if attempts > self._max_retries:
                        report.record_uncorrectable(
                            f"real: interior verification still failing after "
                            f"{self._max_retries} restarts"
                        )
                        output = program.disentangle(half_spectrum)
                        break
                    report.record_correction(
                        "restart", "real-interior", None,
                        "half-length transform recomputed before disentangle",
                    )
                    continue
                output = program.disentangle(half_spectrum)
            else:
                output = self._transform_real(xr)
            residual = float(np.abs(self._output_checksum(output) - cx))
            detected = bool(residual_exceeds(residual, eta))
            report.record_verification("real-ccv", None, residual, eta, detected)
            if not detected:
                break
            if not _repair_input():
                break
            if attempts > self._max_retries:
                report.record_uncorrectable(
                    f"real: verification still failing after {self._max_retries} restarts"
                )
                break
            report.record_correction("restart", "real", None, "packed transform recomputed")
        return output

    def _inverse_real(
        self, spectrum: np.ndarray, injector: Optional[FaultInjector]
    ) -> SchemeResult:
        """Packed spectrum -> real signal, protected end-to-end.

        Uses the same identity as the forward direction with the roles
        swapped: ``c . x_out`` must match the conjugate-even fold of ``r``
        over the (stored, pre-transform) packed spectrum.  Interior fault
        sites do not fire here (the compiled half-complex inverse has no
        instrumented sub-FFT stages); INPUT strikes the packed spectrum,
        OUTPUT the real signal.
        """

        injector = injector or NullInjector()
        packed = np.array(np.asarray(spectrum), dtype=np.complex128)
        if packed.shape != (self.bins,):
            raise ValueError(
                f"real plan expects {self.bins} packed bins, got shape {packed.shape}"
            )
        report = FTReport(scheme=self.scheme.name)
        if not self._protected:
            injector.visit(FaultSite.INPUT, packed)
            output = self._inverse_transform_real(packed)
            injector.visit(FaultSite.OUTPUT, output)
            return self._cast_result(
                SchemeResult(output=output, report=report, scheme=self.scheme.name)
            )
        consts = self.constants
        target = complex(self._output_checksum(packed))  # r . X, stored before faults
        if self.config.memory_ft:
            p1, p2 = consts.p1_h, consts.p2_h
            s1 = weighted_sum(p1, packed)
            s2 = weighted_sum(p2, packed)
            eta_mem = self.thresholds.eta_memory(p1, packed, weight_rms=consts.p1_h_rms)
        injector.visit(FaultSite.INPUT, packed)
        output = None
        attempts = 0
        while True:
            attempts += 1
            output = self._inverse_transform_real(packed)
            injector.visit(FaultSite.OUTPUT, output)
            eta = self.thresholds.eta_offline(self.n, output)
            residual = float(np.abs(weighted_sum(self._c, output) - target))
            detected = bool(residual_exceeds(residual, eta))
            report.record_verification("real-inverse-ccv", None, residual, eta, detected)
            if not detected:
                break
            if self.config.memory_ft:
                mem_residual = float(np.abs(weighted_sum(p1, packed) - s1))
                if residual_exceeds(mem_residual, eta_mem):
                    report.record_verification("real-inverse-mcv", None, mem_residual, eta_mem, True)
                    repaired = repair_single_error(packed, p1, p2, s1, s2)
                    if repaired is None:
                        report.record_uncorrectable(
                            "real inverse: spectrum corruption could not be located"
                        )
                        break
                    report.record_correction(
                        "memory-correct", "real-inverse-input", None,
                        f"bin {repaired[0]} repaired",
                    )
            if attempts > self._max_retries:
                report.record_uncorrectable(
                    f"real inverse: verification still failing after {self._max_retries} restarts"
                )
                break
            report.record_correction("restart", "real-inverse", None, "real inverse recomputed")
        return self._cast_result(
            SchemeResult(output=output, report=report, scheme=self.scheme.name)
        )

    # ------------------------------------------------------------------
    # in-place / overwrite execution (``out=``)
    # ------------------------------------------------------------------
    def _check_out(self, out: np.ndarray, shape: Tuple[int, ...], dtype: type) -> np.ndarray:
        if self.dtype != np.complex128:
            raise ValueError(
                "the overwrite path runs in the buffer itself and cannot "
                "down-cast; out= requires dtype='complex128'"
            )
        if (
            not isinstance(out, np.ndarray)
            or out.shape != shape
            or out.dtype != dtype
            or not out.flags.c_contiguous
            or not out.flags.writeable
        ):
            raise ValueError(
                f"out must be a writeable C-contiguous {np.dtype(dtype).name} "
                f"array of shape {shape}"
            )
        return out

    def _inplace_constants(self) -> SchemeConstants:
        """The constants bundle with the carried surrogate pairs present.

        Plans configured with ``inplace=True`` built them at plan time;
        a plan whose caller discovers ``out=`` later gets them lazily here
        (one compiled FFT per weight vector, cached on the plan - a benign
        race recomputes identical arrays), so surrogate recovery never
        silently degrades just because the config lacked the flag.
        """

        consts = self.constants
        if self.config.memory_ft and not consts.inplace:
            consts = self.constants = consts.with_inplace()
        return consts

    def _transform_inplace(self, rows: np.ndarray) -> None:
        """Overwrite ``(batch, n)`` (or 1-D) rows with their spectra.

        The Stockham program when the plan lowered one (caller's buffer
        plus the half-size thread-local scratch); otherwise the ordinary
        out-of-place pipeline with a copy back, preserving the overwrite
        contract for unsupported sizes and foreign backends.
        """

        if self._inplace_program is not None:
            self._inplace_program.execute_inplace(rows)
        elif rows.ndim == 1:
            rows[...] = self._transform_rows(rows[None, :])[0]
        else:
            rows[...] = self._transform_rows(rows)

    def _repair_output(
        self,
        buf: np.ndarray,
        S1: Optional[np.complexfloating],
        S2: Optional[np.complexfloating],
        weights: Tuple[Optional[np.ndarray], Optional[np.ndarray]],
        report: FTReport,
        label: str,
        index: Optional[int] = None,
    ) -> bool:
        """Locate/repair one corrupted element of the overwritten buffer.

        ``S1``/``S2`` are the carried surrogate sums encoded from the
        (destroyed) input; ``weights`` is the matching locating pair over
        the output layout.  Returns ``False`` when no surrogate exists or
        location fails - the in-place path has nothing left to recompute
        from, so the caller records the violation as uncorrectable.
        """

        if S1 is None:
            report.record_uncorrectable(
                f"{label}: input overwritten and no locating surrogate "
                f"(the plan has no memory fault tolerance)"
            )
            return False
        w1, w2 = weights
        repaired = repair_single_error(buf, w1, w2, S1, S2)
        if repaired is None:
            report.record_uncorrectable(
                f"{label}: corruption of the overwritten buffer could not be located"
            )
            return False
        report.record_correction(
            "memory-correct", label, index,
            f"element {repaired[0]} repaired from the carried surrogate",
        )
        return True

    def _execute_out(
        self,
        x: np.ndarray,
        injector: Optional[FaultInjector],
        out: np.ndarray,
    ) -> SchemeResult:
        """Complex overwrite path: ``out`` (possibly ``x`` itself) is transformed in place."""

        out = self._check_out(out, (self.n,), np.complex128)
        x = np.asarray(x)
        if x.shape != (self.n,):
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        if out is not x:
            np.copyto(out, x.astype(np.complex128, copy=False))
        injector = injector or NullInjector()
        report = FTReport(scheme=f"{self.scheme.name}[inplace]")
        if not self._protected:
            injector.visit(FaultSite.INPUT, out)
            self._transform_inplace(out)
            injector.visit(FaultSite.OUTPUT, out)
            return SchemeResult(output=out, report=report, scheme=self.scheme.name)

        consts = self._inplace_constants()
        # --- encode while the input still exists --------------------------
        cx = weighted_sum(self._c, out)
        eta = self.thresholds.eta_offline(self.n, out)
        s1 = s2 = S1 = S2 = None
        if self.config.memory_ft:
            s1 = weighted_sum(self._w1, out)
            s2 = weighted_sum(self._w2, out)
            eta_mem = self.thresholds.eta_memory(
                self._w1, out, weight_rms=consts.w1_n_rms
            )
            if consts.fw1_n is not None:
                # The carried surrogate: these two sums ARE w1 . X / w2 . X
                # of the not-yet-computed output.
                S1 = weighted_sum(consts.fw1_n, out)
                S2 = weighted_sum(consts.fw2_n, out)
        report.bump("checksum-generations", 1)

        injector.visit(FaultSite.INPUT, out)

        # --- last-chance input verification (the buffer is about to go) ---
        if self.config.memory_ft:
            mem_residual = float(np.abs(weighted_sum(self._w1, out) - s1))
            if residual_exceeds(mem_residual, eta_mem):
                report.record_verification("inplace-mcv", None, mem_residual, eta_mem, True)
                repaired = repair_single_error(out, self._w1, self._w2, s1, s2)
                if repaired is None:
                    report.record_uncorrectable(
                        "in-place: input corruption could not be located before overwrite"
                    )
                else:
                    report.record_correction(
                        "memory-correct", "inplace-input", None,
                        f"element {repaired[0]} repaired before the transform",
                    )

        # --- transform (destroys the input) + output verification ---------
        self._transform_inplace(out)
        injector.visit(FaultSite.OUTPUT, out)
        attempts = 0
        while True:
            residual = float(np.abs(weighted_sum(self._r, out) - cx))
            detected = bool(residual_exceeds(residual, eta))
            report.record_verification("inplace-ccv", None, residual, eta, detected)
            if not detected:
                break
            attempts += 1
            if attempts > self._max_retries:
                report.record_uncorrectable(
                    f"in-place: verification still failing after {self._max_retries} repairs"
                )
                break
            if not self._repair_output(
                out, S1, S2, (self._w1, self._w2), report, "inplace-output"
            ):
                break
        return SchemeResult(output=out, report=report, scheme=self.scheme.name)

    def _execute_real_out(
        self,
        x: np.ndarray,
        injector: Optional[FaultInjector],
        out: np.ndarray,
    ) -> SchemeResult:
        """Real overwrite path: ``x``'s buffer is consumed, ``out`` gets the bins.

        The packed view of the caller's float buffer is transformed in
        place by the half-length Stockham program, so the real samples are
        destroyed; the carried surrogate is the packed locating pair
        re-encoded from the input (``p . P = (F [p; 0]) . x``).
        """

        out = self._check_out(out, (self.bins,), np.complex128)
        x = np.asarray(x)
        if x.shape != (self.n,):
            raise ValueError(f"input has length {x.size}, expected {self.n}")
        # The overwrite contract applies to the caller's buffer only when it
        # is directly consumable; otherwise work on a private copy (the
        # caller's data survives, the out= result is identical).
        if (
            isinstance(x, np.ndarray)
            and x.dtype == np.float64
            and x.flags.c_contiguous
            and x.flags.writeable
        ):
            xr = x
        else:
            xr = self._as_real(x)
        injector = injector or NullInjector()
        report = FTReport(scheme=f"{self.scheme.name}[inplace]")
        program = self._real_program
        consts = self._inplace_constants() if self._protected else self.constants

        def _transform() -> None:
            if program is not None:
                out[...] = program.execute_overwrite(xr)
            else:
                out[...] = get_backend(self.backend).rfft(xr, axis=-1)

        if not self._protected:
            injector.visit(FaultSite.INPUT, xr)
            _transform()
            injector.visit(FaultSite.OUTPUT, out)
            return SchemeResult(output=out, report=report, scheme=self.scheme.name)

        # --- encode while the input still exists --------------------------
        cx = weighted_sum(self._c, xr)
        x_rms = self.thresholds.magnitude_rms(xr)
        sigma0 = float(x_rms / np.sqrt(2.0))
        eta = self.thresholds.eta_offline(self.n, xr, sigma0=sigma0)
        s1 = s2 = S1 = S2 = None
        if self.config.memory_ft:
            s1 = weighted_sum(self._w1, xr)
            s2 = weighted_sum(self._w2, xr)
            eta_mem = self.thresholds.eta_memory(
                self._w1, xr, weight_rms=consts.w1_n_rms, data_rms=x_rms
            )
            if consts.fp1_h is not None:
                S1 = weighted_sum(consts.fp1_h, xr)
                S2 = weighted_sum(consts.fp2_h, xr)
        report.bump("checksum-generations", 1)

        injector.visit(FaultSite.INPUT, xr)

        # --- last-chance input verification --------------------------------
        if self.config.memory_ft:
            mem_residual = float(np.abs(weighted_sum(self._w1, xr) - s1))
            if residual_exceeds(mem_residual, eta_mem):
                report.record_verification("inplace-mcv", None, mem_residual, eta_mem, True)
                repaired = repair_single_error(xr, self._w1, self._w2, s1, s2)
                if repaired is None:
                    report.record_uncorrectable(
                        "real in-place: input corruption could not be located before overwrite"
                    )
                else:
                    report.record_correction(
                        "memory-correct", "inplace-input", None,
                        f"element {repaired[0]} repaired before the transform",
                    )

        # --- transform (destroys the input) + packed-output verification --
        _transform()
        injector.visit(FaultSite.OUTPUT, out)
        attempts = 0
        while True:
            residual = float(np.abs(self._output_checksum(out) - cx))
            detected = bool(residual_exceeds(residual, eta))
            report.record_verification("inplace-ccv", None, residual, eta, detected)
            if not detected:
                break
            attempts += 1
            if attempts > self._max_retries:
                report.record_uncorrectable(
                    f"real in-place: verification still failing after "
                    f"{self._max_retries} repairs"
                )
                break
            if not self._repair_output(
                out, S1, S2, (consts.p1_h, consts.p2_h), report, "inplace-output"
            ):
                break
        return SchemeResult(output=out, report=report, scheme=self.scheme.name)

    # ------------------------------------------------------------------
    def execute_many(
        self,
        X: np.ndarray,
        axis: int = -1,
        injector: Optional[FaultInjector] = None,
        *,
        out: Optional[np.ndarray] = None,
    ) -> BatchResult:
        """Protected transform of every length-``n`` slice of ``X`` along ``axis``.

        The batch is transformed as one array (vectorized two-layer pipeline)
        and protected by vectorized per-row end-to-end checksums; see the
        module docstring.  With an injector, faults may strike the batched
        input and output arrays (:attr:`FaultSite.INPUT` /
        :attr:`FaultSite.OUTPUT`); stage-interior sites never fire in a
        batched run (recovery re-executions are deliberately injector-free
        so a persistent spec cannot re-corrupt its own repair) - use
        :meth:`execute` to exercise interior fault sites.

        ``out`` selects the batched overwrite path: the spectra land in the
        given buffer, which for complex plans may be ``X`` itself - the
        rows are then transformed chunk-parallel *in place* (Stockham
        lowering, per-worker half-size scratch) and the input rows are
        destroyed.  Protection follows the in-place discipline of
        :meth:`execute`: a last-chance vectorized memory verification
        repairs input corruption just before the overwrite, and flagged
        output rows are repaired from the checksum-carried surrogate
        (``rows @ (F w)`` encoded pre-transform) instead of re-executing.
        Real plans accept a separate preallocated packed-spectrum buffer.
        """

        if out is not None and not self._real:
            return self._execute_many_out(X, axis, injector, out)
        if out is not None:
            # Validate the destination *before* paying for the protected
            # batch: the packed output shape is X's shape with the transform
            # axis replaced by the bin count.
            shape = np.asarray(X).shape
            norm_axis = axis if axis >= 0 else len(shape) + axis
            expected = shape[:norm_axis] + (self.bins,) + shape[norm_axis + 1 :]
            self._check_out(out, expected, np.complex128)
            result = self.execute_many(X, axis, injector)
            np.copyto(out, result.output)
            return BatchResult(
                output=out,
                report=result.report,
                fallback_rows=result.fallback_rows,
                uncorrectable_rows=result.uncorrectable_rows,
            )
        X = np.asarray(X)
        if X.ndim == 0:
            raise ValueError("execute_many expects at least a 1-D array")
        if self._real:
            moved = np.moveaxis(X, axis, -1)
        else:
            moved = np.moveaxis(np.asarray(X, dtype=np.complex128), axis, -1)
        if moved.shape[-1] != self.n:
            raise ValueError(
                f"axis {axis} has length {moved.shape[-1]}, expected {self.n}"
            )
        batch_shape = moved.shape[:-1]
        # The working array must be private: the schemes never mutate caller
        # data, and the batch path must not either (the injector corrupts -
        # and recovery repairs - this array in place).  Reshaping a
        # non-contiguous moveaxis view already copies, so only copy when the
        # reshape still aliases the caller's buffer.  (_as_real always
        # copies.)
        if self._real:
            rows = self._as_real(moved, name="X").reshape(-1, self.n)
        else:
            rows = moved.reshape(-1, self.n)
            if np.may_share_memory(rows, X):
                rows = rows.copy()
        batch = rows.shape[0]
        injector = injector or NullInjector()
        report = FTReport(scheme=f"{self.scheme.name}[batch]")
        fallback: List[int] = []
        dead: List[int] = []

        # Chunk layout of the (possibly) parallel execution: a function of
        # (batch, threads) only, so threaded runs are deterministic.  One
        # chunk keeps the legacy fully-serial path (direct binding of the
        # transform result, whole-batch GEMV verification) bit for bit.
        chunks = min(self.threads, batch) if self.threads > 1 else 1
        ranges = split_ranges(batch, chunks)
        width = self.bins if self._real else self.n
        visit_lock = threading.Lock()

        def _visit_output(segment: np.ndarray, chunk_index: int) -> None:
            # The OUTPUT fault site, per worker chunk - the shared-memory
            # analogue of the paper's per-rank sites.  Specs can pin a
            # worker with ``index=``; the default fire-once spec strikes
            # exactly one chunk.
            if injector.is_live:
                with visit_lock:
                    injector.visit(FaultSite.OUTPUT, segment, index=chunk_index)

        if not self._protected:
            injector.visit(FaultSite.INPUT, rows)
            if chunks == 1:
                out = self._transform_rows(rows)
                injector.visit(FaultSite.OUTPUT, out)
            else:
                out = np.empty((batch, width), dtype=np.complex128)

                def transform_chunk(ci: int, lo: int, hi: int) -> None:
                    out[lo:hi] = self._transform_rows(rows[lo:hi])
                    _visit_output(out[lo:hi], ci)

                self._run_chunks(transform_chunk, ranges)
        else:
            # --- vectorized encoding (one matmul per checksum vector; the
            # robust per-row statistics are sampled once and shared by every
            # threshold that needs them) ----------------------------------
            cx = rows @ self._c
            sigma_rows = self.thresholds.component_sigma_rows(rows)
            etas = self.thresholds.eta_offline_batch(self.n, rows, sigma0=sigma_rows)
            if self.config.memory_ft:
                s1 = rows @ self._w1
                s2 = rows @ self._w2
                eta_mem = self.thresholds.eta_memory_batch(
                    self._w1, rows, weight_rms=self.constants.w1_n_rms, sigma0=sigma_rows
                )
            else:
                s1 = s2 = None
            report.bump("checksum-generations", batch)

            # Faults may strike only once the protection exists (the paper's
            # fault model excludes corruption during checksum generation).
            injector.visit(FaultSite.INPUT, rows)

            # --- transform + verification (whole-batch when serial, ------
            # per-worker chunks when threaded; real plans: packed output,
            # conjugate-even reduction).  The memory verification of the
            # input rows against their stored locating checksums catches
            # input corruption even at the 3 | n sizes where the end-to-end
            # vector rA is nearly degenerate and the computational residual
            # is blind.
            if chunks == 1:
                out = self._transform_rows(rows)
                injector.visit(FaultSite.OUTPUT, out)
                residuals = np.abs(self._output_checksum(out) - cx)
                comp_violations = residual_exceeds(residuals, etas)
                violations = comp_violations
                if self.config.memory_ft:
                    mem_residuals = np.abs(rows @ self._w1 - s1)
                    violations = violations | residual_exceeds(mem_residuals, eta_mem)
            else:
                out = np.empty((batch, width), dtype=np.complex128)
                residuals = np.empty(batch, dtype=np.float64)
                comp_violations = np.zeros(batch, dtype=bool)
                violations = np.zeros(batch, dtype=bool)

                def verify_chunk(ci: int, lo: int, hi: int) -> None:
                    # Per-worker ABFT: each worker transforms its own slice
                    # of rows, exposes the OUTPUT site, and verifies its
                    # slice's end-to-end checksums before returning - a
                    # corrupted worker's chunk is located independently of
                    # the others.
                    out[lo:hi] = self._transform_rows(rows[lo:hi])
                    _visit_output(out[lo:hi], ci)
                    residuals[lo:hi] = np.abs(
                        self._output_checksum(out[lo:hi]) - cx[lo:hi]
                    )
                    viol = residual_exceeds(residuals[lo:hi], etas[lo:hi])
                    comp_violations[lo:hi] = viol
                    if self.config.memory_ft:
                        mem_residuals = np.abs(rows[lo:hi] @ self._w1 - s1[lo:hi])
                        viol = viol | residual_exceeds(mem_residuals, eta_mem[lo:hi])
                    violations[lo:hi] = viol

                self._run_chunks(verify_chunk, ranges)
            report.bump("verifications", batch)
            if self.config.memory_ft:
                report.bump("memory-verifications", batch)
            bad = np.nonzero(violations)[0]

            # --- scalar recovery for the (rare) flagged rows --------------
            for idx in bad:
                idx = int(idx)
                # Rows flagged only by the memory check get their
                # "batch-mcv" record inside _recover_row; don't fabricate a
                # computational violation for them here.
                if comp_violations[idx]:
                    report.record_verification(
                        "batch-ccv", idx, float(residuals[idx]), float(etas[idx]), True
                    )
                fallback.append(idx)
                ok = self._recover_row(rows, out, idx, cx, etas, s1, s2, report)
                if not ok:
                    dead.append(idx)
                    report.record_uncorrectable(
                        f"batch row {idx} still failing after {self._max_retries} retries"
                    )

        output = out.reshape(batch_shape + (width,))
        output = np.moveaxis(output, -1, axis)
        if self.dtype != np.complex128:
            output = output.astype(self.dtype)
        return BatchResult(
            output=output,
            report=report,
            fallback_rows=tuple(fallback),
            uncorrectable_rows=tuple(dead),
        )

    # ------------------------------------------------------------------
    def _execute_many_out(
        self,
        X: np.ndarray,
        axis: int,
        injector: Optional[FaultInjector],
        out: np.ndarray,
    ) -> BatchResult:
        """Complex batched overwrite path (see :meth:`execute_many`)."""

        X = np.asarray(X)
        if X.ndim == 0:
            raise ValueError("execute_many expects at least a 1-D array")
        out = self._check_out(out, X.shape, np.complex128)
        if out is not X:
            np.copyto(out, np.asarray(X, dtype=np.complex128))
        moved = np.moveaxis(out, axis, -1)
        if moved.shape[-1] != self.n:
            raise ValueError(
                f"axis {axis} has length {moved.shape[-1]}, expected {self.n}"
            )
        rows = moved.reshape(-1, self.n)
        rows_alias_out = np.shares_memory(rows, out) and rows.flags.c_contiguous
        if not rows_alias_out:
            # Non-last-axis layouts work on a private contiguous matrix;
            # the pipeline mutates it and the spectra are scattered back
            # below (the overwrite contract is on `out`, not the layout).
            rows = np.ascontiguousarray(rows)
        batch = rows.shape[0]
        injector = injector or NullInjector()
        report = FTReport(scheme=f"{self.scheme.name}[batch,inplace]")
        fallback: List[int] = []
        dead: List[int] = []

        chunks = min(self.threads, batch) if self.threads > 1 else 1
        ranges = split_ranges(batch, chunks)
        visit_lock = threading.Lock()

        def _visit_output(segment: np.ndarray, chunk_index: int) -> None:
            if injector.is_live:
                with visit_lock:
                    injector.visit(FaultSite.OUTPUT, segment, index=chunk_index)

        if not self._protected:
            injector.visit(FaultSite.INPUT, rows)

            def transform_chunk(ci: int, lo: int, hi: int) -> None:
                self._transform_inplace(rows[lo:hi])
                _visit_output(rows[lo:hi], ci)

            self._run_chunks(transform_chunk, ranges)
        else:
            consts = self._inplace_constants()
            # --- encode while the input rows still exist (batch statistics
            # sampled once, shared across thresholds) ----------------------
            cx = rows @ self._c
            sigma_rows = self.thresholds.component_sigma_rows(rows)
            etas = self.thresholds.eta_offline_batch(self.n, rows, sigma0=sigma_rows)
            S1 = S2 = None
            if self.config.memory_ft:
                s1 = rows @ self._w1
                s2 = rows @ self._w2
                eta_mem = self.thresholds.eta_memory_batch(
                    self._w1, rows, weight_rms=consts.w1_n_rms, sigma0=sigma_rows
                )
                if consts.fw1_n is not None:
                    S1 = rows @ consts.fw1_n
                    S2 = rows @ consts.fw2_n
            report.bump("checksum-generations", batch)

            injector.visit(FaultSite.INPUT, rows)

            # --- last-chance input verification (vectorized) --------------
            if self.config.memory_ft:
                mem_residuals = np.abs(rows @ self._w1 - s1)
                for idx in np.nonzero(residual_exceeds(mem_residuals, eta_mem))[0]:
                    idx = int(idx)
                    report.record_verification(
                        "batch-inplace-mcv", idx,
                        float(mem_residuals[idx]), float(eta_mem[idx]), True,
                    )
                    repaired = repair_single_error(
                        rows[idx], self._w1, self._w2, s1[idx], s2[idx]
                    )
                    if repaired is None:
                        dead.append(idx)
                        report.record_uncorrectable(
                            f"batch row {idx}: input corruption could not be "
                            f"located before overwrite"
                        )
                    else:
                        report.record_correction(
                            "memory-correct", "batch-inplace-input", idx,
                            f"element {repaired[0]} repaired before the transform",
                        )
                report.bump("memory-verifications", batch)

            # --- chunked in-place transform + per-worker verification -----
            residuals = np.empty(batch, dtype=np.float64)
            violations = np.zeros(batch, dtype=bool)

            def verify_chunk(ci: int, lo: int, hi: int) -> None:
                self._transform_inplace(rows[lo:hi])
                _visit_output(rows[lo:hi], ci)
                residuals[lo:hi] = np.abs(rows[lo:hi] @ self._r - cx[lo:hi])
                violations[lo:hi] = residual_exceeds(residuals[lo:hi], etas[lo:hi])

            self._run_chunks(verify_chunk, ranges)
            report.bump("verifications", batch)

            # --- surrogate recovery for flagged rows ----------------------
            for idx in np.nonzero(violations)[0]:
                idx = int(idx)
                report.record_verification(
                    "batch-inplace-ccv", idx, float(residuals[idx]), float(etas[idx]), True
                )
                fallback.append(idx)
                ok = False
                for _ in range(max(1, self._max_retries)):
                    if not self._repair_output(
                        rows[idx],
                        None if S1 is None else complex(S1[idx]),
                        None if S2 is None else complex(S2[idx]),
                        (self._w1, self._w2),
                        report,
                        "batch-inplace-output",
                        idx,
                    ):
                        ok = None  # uncorrectable already recorded
                        break
                    residual = float(np.abs(weighted_sum(self._r, rows[idx]) - cx[idx]))
                    ok = not bool(residual_exceeds(residual, float(etas[idx])))
                    report.record_verification(
                        "batch-inplace-ccv-retry", idx, residual, float(etas[idx]), not ok
                    )
                    if ok:
                        break
                if ok is not True:
                    # ok is None: the surrogate repair itself failed (already
                    # recorded); ok is False: repairs kept failing verification.
                    dead.append(idx)
                if ok is False:
                    report.record_uncorrectable(
                        f"batch row {idx}: in-place verification still failing "
                        f"after {self._max_retries} repairs"
                    )

        if not rows_alias_out:
            moved[...] = rows.reshape(moved.shape)
        return BatchResult(
            output=out,
            report=report,
            fallback_rows=tuple(fallback),
            uncorrectable_rows=tuple(sorted(set(dead))),
        )

    # ------------------------------------------------------------------
    def _run_chunks(
        self, fn: Callable[[int, int, int], None], ranges: Sequence[Tuple[int, int]]
    ) -> None:
        """Run ``fn(chunk_index, lo, hi)`` over every chunk, pooled when > 1.

        Single-chunk runs execute inline on the calling thread (the legacy
        serial path); multi-chunk runs go through the process-wide worker
        pool, which itself falls back to inline execution when it has one
        worker or is re-entered from a worker thread.
        """

        if len(ranges) <= 1:
            for ci, (lo, hi) in enumerate(ranges):
                fn(ci, lo, hi)
            return
        get_pool().run_tasks(
            [
                (lambda ci=ci, lo=lo, hi=hi: fn(ci, lo, hi))
                for ci, (lo, hi) in enumerate(ranges)
            ]
        )

    # ------------------------------------------------------------------
    def _transform_rows(self, rows: np.ndarray) -> np.ndarray:
        """Unprotected vectorized transform of a ``(batch, n)`` array.

        Complex fftlib plans run the whole batch through the compiled
        one-shot stage program (the same lowering the fused protected path
        wraps); other backends fall back to the batched two-layer pipeline.
        Real plans run the compiled half-complex program (packed
        ``(batch, bins)`` output).
        """

        if self._real:
            return self._transform_real(rows)
        if self._batch_program is not None:
            return self._batch_program.execute(rows)
        # Foreign backends (pocketfft & co.): every registered backend's
        # ``fft`` is a full-size transform batched over the leading axes by
        # contract, and compiled kernels beat the decomposed two-layer
        # pipeline ~3x at serving sizes (one library call vs two batched
        # sub-FFT passes plus twiddle multiply and transpose gather).  The
        # batch path's protection is end-to-end - the checksums bracket
        # whatever produces the spectrum - so unlike the scalar scheme it
        # does not need the two-layer stage structure.
        return get_backend(self.backend).fft(rows, axis=-1)

    def _recover_row(
        self,
        rows: np.ndarray,
        out: np.ndarray,
        idx: int,
        cx: np.ndarray,
        etas: np.ndarray,
        s1: Optional[np.ndarray],
        s2: Optional[np.ndarray],
        report: FTReport,
    ) -> bool:
        """Recover flagged row ``idx``; mirrors the offline restart loop."""

        row = rows[idx]
        for _ in range(max(1, self._max_retries)):
            if self.config.memory_ft:
                eta_mem = self.thresholds.eta_memory(
                    self._w1, row, weight_rms=self.constants.w1_n_rms
                )
                residual = float(np.abs(weighted_sum(self._w1, row) - s1[idx]))
                if residual_exceeds(residual, eta_mem):
                    report.record_verification("batch-mcv", idx, residual, eta_mem, True)
                    repaired = repair_single_error(row, self._w1, self._w2, s1[idx], s2[idx])
                    if repaired is None:
                        report.record_uncorrectable(
                            f"batch row {idx}: input corruption could not be located"
                        )
                        return False
                    report.record_correction(
                        "memory-correct", "batch-input", idx, f"element {repaired[0]} repaired"
                    )
            # Re-execute through the fully protected scalar scheme so the
            # recovery inherits the scheme's own sub-FFT-level machinery
            # (real plans: the scheme runs in real mode and returns the
            # packed spectrum, verified below on the packed layout).
            result = self.scheme.execute(row)
            report.merge(result.report)
            report.record_correction("recompute", "batch", idx, "row re-executed under full protection")
            residual = float(np.abs(self._output_checksum(result.output) - cx[idx]))
            ok = not bool(residual_exceeds(residual, float(etas[idx])))
            report.record_verification("batch-ccv-retry", idx, residual, float(etas[idx]), not ok)
            if ok:
                out[idx] = result.output
                return True
        return False

    # ------------------------------------------------------------------
    def _cast_result(self, result: SchemeResult) -> SchemeResult:
        if self.dtype != np.complex128:
            output = result.output
            if np.isrealobj(output):
                # Real time-domain output (real-plan inverse): halve the
                # precision instead of complexifying.
                result.output = output.astype(np.float32)
            else:
                result.output = output.astype(self.dtype)
        return result

    def profile(self, x: np.ndarray) -> "ProfileResult":
        """Timed per-phase breakdown of one fault-free execution (diagnostic).

        Times the checksum encode pass, each lowered transform stage, and
        the fused tap verification of one execution and returns a
        :class:`repro.telemetry.profile.ProfileResult`.  Profiling is a
        diagnostic run outside the hot-path contract (it allocates and
        re-executes freely); the steady-state paths are untouched.
        """

        import time

        from repro.telemetry.profile import ProfileEntry, ProfileResult

        entries: List[ProfileEntry] = []
        fused = self._fused_program
        if self._real and self._real_program is not None:
            xs = np.asarray(x, dtype=np.float64)
            inner = self._real_program.profile(xs)
            entries.extend(inner.entries)
            start = time.perf_counter()
            result = self.execute(xs)
            end_to_end = time.perf_counter() - start
            entries.append(
                ProfileEntry(
                    "protection overhead (checksums + verification)",
                    max(end_to_end - inner.total_seconds, 0.0),
                )
            )
            return ProfileResult(
                n=self.n,
                description=self.describe(),
                # The overhead entry is clamped at zero, so the reported
                # total must take the same floor - otherwise a noisy
                # sub-profile (inner run measured slower than the real
                # execution) breaks sum(entries) == total.
                entries=tuple(entries),
                total_seconds=max(end_to_end, inner.total_seconds),
                output=result.output,
            )
        if fused is not None:
            xs = as_complex_vector(x, name="x")
            start = time.perf_counter()
            fused.encode(xs)
            encode_seconds = time.perf_counter() - start
            entries.append(
                ProfileEntry("encode (checksum references)", encode_seconds)
            )
            inner = fused.program.profile(xs)
            entries.extend(inner.entries)
            start = time.perf_counter()
            output, _taps = fused.execute_tapped(xs)
            tapped_seconds = time.perf_counter() - start
            entries.append(
                ProfileEntry(
                    "tap verification (fused checksum taps)",
                    max(tapped_seconds - inner.total_seconds, 0.0),
                )
            )
            return ProfileResult(
                n=self.n,
                description=self.describe(),
                entries=tuple(entries),
                # Same floor as the tap-verification entry's zero clamp:
                # sum(entries) == total even when the stage sub-profile
                # measured slower than the tapped execution.
                total_seconds=encode_seconds + max(tapped_seconds, inner.total_seconds),
                output=output,
            )
        # No compiled fast path to dissect (foreign backend or plain
        # scheme): time the protected execution end to end.
        start = time.perf_counter()
        result = self.execute(np.asarray(x))
        total = time.perf_counter() - start
        entries.append(ProfileEntry("protected execute (end to end)", total))
        return ProfileResult(
            n=self.n,
            description=self.describe(),
            entries=tuple(entries),
            total_seconds=total,
            output=result.output,
        )

    def describe(self) -> str:
        real = f", real -> {self.bins} bins" if self._real else ""
        if self._inplace:
            # Uniform capability-fallback wording (same shape as the
            # native-fallback report): a requested in-place lowering the
            # size cannot support is called out, never silently dropped.
            if self._inplace_program is not None or self._real:
                inplace = ", inplace"
            else:
                inplace = ", inplace-fallback(no Stockham lowering for this size)"
        else:
            inplace = ""
        native = ""
        if self.config.native:
            from repro.fftlib.plan import _native_program_state

            native = ", native-fallback"
            for program in (self._real_program, self._inplace_program, self._batch_program):
                if program is None:
                    continue
                active, reason = _native_program_state(program)
                native = ", native" if active else f", native-fallback({reason or 'not lowered'})"
                break
        return (
            f"FTPlan(n={self.n} = {self.m} x {self.k}{real}{inplace}{native}, "
            f"scheme={self.scheme.name}, backend={self.backend}, dtype={self.dtype.name})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# ----------------------------------------------------------------------
# the plan cache ("wisdom")
# ----------------------------------------------------------------------

class PlanCacheInfo(NamedTuple):
    hits: int
    misses: int
    size: int
    limit: int


_DEFAULT_CACHE_LIMIT = 32

_cache_lock = threading.RLock()
_cache: "OrderedDict[Tuple[int, FTConfig], FTPlan]" = OrderedDict()
_cache_limit = _DEFAULT_CACHE_LIMIT
_hits = 0
_misses = 0


def plan(n: int, config: Union[FTConfig, str, None] = None, **overrides: Any) -> FTPlan:
    """A cached :class:`FTPlan` for an ``n``-point protected transform.

    Parameters
    ----------
    n:
        Transform length.
    config:
        An :class:`FTConfig`, a legacy registry name (``"opt-online+mem"``),
        or ``None`` for the default configuration.
    **overrides:
        Individual :class:`FTConfig` fields to override, e.g.
        ``plan(4096, backend="numpy")`` or
        ``plan(4096, "offline", memory_ft=True)``.

    Repeated calls with an equal ``(n, config)`` return the *same* plan
    object from a thread-safe, size-bounded LRU cache, so planning cost
    (checksum weight vectors, twiddle tables, sub-plans) is paid once per
    configuration - FFTW wisdom for the protected transform.
    """

    if config is None:
        config = FTConfig(**overrides)
    elif isinstance(config, str):
        config = FTConfig.from_name(config, **overrides)
    elif isinstance(config, FTConfig):
        if overrides:
            config = config.replace(**overrides)
    else:
        raise TypeError(f"config must be FTConfig, str, or None, got {type(config).__name__}")

    # Resolve backend=None to the *current* process default before keying:
    # otherwise a later set_default_backend() would keep returning plans
    # built under the old default, and backend=None / backend="fftlib"
    # would cache duplicate plans for the same kernel.
    resolved = resolve_backend_name(config.backend)
    if config.backend != resolved:
        config = config.replace(backend=resolved)

    key = (int(n), config)
    global _hits, _misses
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _hits += 1
            _cache.move_to_end(key)
            return cached
    # Build outside the lock: planning is the expensive part (checksum
    # weight vectors, twiddle warm-up) and must not serialize unrelated
    # threads.  On a race the first inserted plan wins and the duplicate
    # construction is discarded.
    created = FTPlan(n, config)
    with _cache_lock:
        existing = _cache.get(key)
        if existing is not None:
            _hits += 1
            _cache.move_to_end(key)
            return existing
        _misses += 1
        _cache[key] = created
        while len(_cache) > _cache_limit:
            _cache.popitem(last=False)
    if _trace.active:
        _trace.emit(
            "plan-compile",
            n=int(n),
            scheme=created.scheme.name,
            backend=resolved,
            real=bool(config.real),
            inplace=bool(config.inplace),
            native=bool(config.native),
        )
    return created


def plan_cache_info() -> PlanCacheInfo:
    """Hit/miss/size statistics of the plan cache."""

    with _cache_lock:
        return PlanCacheInfo(hits=_hits, misses=_misses, size=len(_cache), limit=_cache_limit)


def clear_plan_cache() -> None:
    """Drop all cached plans and reset the statistics."""

    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def set_plan_cache_limit(limit: int) -> None:
    """Bound the cache to ``limit`` plans (evicting least-recently-used)."""

    global _cache_limit
    limit = ensure_positive_int(limit, name="limit")
    with _cache_lock:
        _cache_limit = limit
        while len(_cache) > _cache_limit:
            _cache.popitem(last=False)

"""Round-off error modelling and detection-threshold selection (Section 8).

Floating-point round-off makes the two sides of a checksum identity differ
even in fault-free runs, so every verification compares the residual against
a threshold :math:`\\eta`.  Picking :math:`\\eta` trades *throughput* (the
probability a fault-free run is not flagged) against *fault coverage* (the
smallest error that can still be detected).

The paper follows Weinstein's floating-point round-off analysis: for an
``m``-point FFT with i.i.d. zero-mean inputs of per-component variance
:math:`\\sigma_0^2`,

.. math::

    \\sigma_e = \\sqrt{2 m \\sigma_0^2 \\sigma_\\epsilon^2 \\log_2 m},
    \\qquad
    \\sigma_{roe} = m\\,\\sigma_e,

where :math:`\\sigma_\\epsilon^2 = 0.21\\cdot 2^{-2t}` is the experimentally
measured variance of a single rounding (``t`` = mantissa bits).  The
threshold is then set to :math:`\\eta = 3\\sqrt{m}\\,\\sigma_{roe}` so that,
by the central-limit argument of Section 8.1, the theoretical throughput is
about 99.7%.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy.stats import norm

__all__ = [
    "MANTISSA_BITS_DOUBLE",
    "RoundoffModel",
    "ThresholdMode",
    "ThresholdPolicy",
    "residual_exceeds",
]


def residual_exceeds(residual, eta):
    """``True`` where a checksum residual violates its threshold.

    Implemented as ``not (residual <= eta)`` rather than ``residual > eta`` so
    that non-finite residuals - which arise when a corrupted value overflows a
    weighted sum to inf/NaN - count as violations instead of silently passing
    the comparison.  Works elementwise on arrays and on scalars.
    """

    return ~(np.asarray(residual) <= eta)

#: Mantissa bits of IEEE-754 binary64 (excluding the implicit leading bit).
MANTISSA_BITS_DOUBLE = 52


def _median_finite(sample: np.ndarray) -> float:
    """``float(np.median(sample))`` for a 1-D finite array, faster.

    ``np.median`` partitions around *both* middle order statistics, which
    costs two introselect passes; one pass around the upper statistic plus a
    ``max`` over the lower partition gives the same two values.  The even
    case averages them exactly as ``np.median`` does (``(a + b) / 2`` - a
    power-of-two division, so bit-identical).  Callers guarantee the sample
    is non-empty and contains no NaN/inf (``np.median`` would propagate
    them; the threshold paths filter first).
    """

    m = sample.size // 2
    if sample.size % 2:
        return float(np.partition(sample, m)[m])
    part = np.partition(sample, m)
    return float((part[:m].max() + part[m]) / 2.0)


@dataclass(frozen=True)
class RoundoffModel:
    """Weinstein-style round-off statistics for floating-point FFTs.

    Parameters
    ----------
    mantissa_bits:
        ``t`` in the paper; 52 for double precision.
    rounding_constant:
        The 0.21 constant from Gentleman & Sande's measurement
        (``sigma_eps^2 = rounding_constant * 2^{-2t}``).
    """

    mantissa_bits: int = MANTISSA_BITS_DOUBLE
    rounding_constant: float = 0.21

    # ------------------------------------------------------------------
    @property
    def sigma_eps(self) -> float:
        """Standard deviation of a single rounding error."""

        return float(np.sqrt(self.rounding_constant) * 2.0 ** (-self.mantissa_bits))

    def noise_to_signal_ratio(self, n: int) -> float:
        """Weinstein's output noise-to-signal ratio ``2 sigma_eps^2 log2 n``."""

        if n < 2:
            return 0.0
        return 2.0 * self.sigma_eps ** 2 * float(np.log2(n))

    def fft_output_sigma(self, n: int, sigma0: float) -> float:
        """Standard deviation of an output element of an ``n``-point FFT."""

        return float(np.sqrt(n) * sigma0)

    def fft_roundoff_sigma(self, n: int, sigma0: float) -> float:
        """``sigma_e``: per-element round-off noise of an ``n``-point FFT."""

        if n < 2:
            return 0.0
        return float(np.sqrt(2.0 * n * sigma0 ** 2 * self.sigma_eps ** 2 * np.log2(n)))

    def checksum_roundoff_sigma(self, n: int, sigma0: float) -> float:
        """``sigma_roe``: round-off of the checksum *difference* (upper bound).

        The checksum sums ``n`` output elements; the paper uses the
        conservative upper bound ``n * sigma_e`` rather than the
        ``sqrt(n)``-scaling of independent errors to improve fault coverage.
        """

        return float(n * self.fft_roundoff_sigma(n, sigma0))

    def second_stage_checksum_sigma(self, k: int, m: int, sigma0: float) -> float:
        """``sigma_roe2`` for the second-part ``k``-point FFTs.

        Their input is the output of the ``m``-point FFTs, hence has
        per-component standard deviation ``sqrt(m) * sigma0``.
        """

        return self.checksum_roundoff_sigma(k, float(np.sqrt(m) * sigma0))

    def summation_sigma(self, n: int, value_rms: float) -> float:
        """Round-off of a plain weighted sum of ``n`` values (memory checksums)."""

        return float(n * value_rms * self.sigma_eps)

    # ------------------------------------------------------------------
    @staticmethod
    def throughput(eta: float, n: int, sigma: float) -> float:
        """Theoretical throughput ``1 / (3 - 2 Phi(eta / (sqrt(n) sigma)))``.

        ``sigma`` is the per-element round-off standard deviation; a
        fault-free run is accepted when the |residual| stays below ``eta``.
        """

        if sigma <= 0:
            return 1.0
        z = eta / (np.sqrt(n) * sigma)
        return float(1.0 / (3.0 - 2.0 * norm.cdf(z)))


class ThresholdMode(enum.Enum):
    """How verification thresholds are derived."""

    #: The paper's variance-based estimate (Section 8.1) with sigma_0
    #: measured from the data being protected.
    PAPER = "paper"
    #: A norm-relative engineering bound: ``eta = factor * eps * scale``.
    RELATIVE = "relative"


@dataclass(frozen=True)
class ThresholdPolicy:
    """Produces the detection thresholds used by the ABFT schemes.

    A single policy instance is shared by a scheme; all thresholds scale
    linearly with the magnitude of the protected data, so the policy is
    applicable to inputs of any scale.

    The dataclass is frozen (and therefore hashable) so that a policy can be
    part of an :class:`repro.core.config.FTConfig` plan-cache key.
    """

    mode: ThresholdMode = ThresholdMode.PAPER
    model: RoundoffModel = RoundoffModel()
    safety_factor: float = 3.0
    #: Extra multiplier applied to memory-checksum thresholds.  Memory
    #: verifications compare sums accumulated in *different orders* (e.g. the
    #: incremental checksums of Section 4.3 against a direct re-summation),
    #: so their fault-free residual can approach the paper's 3-sigma bound;
    #: the margin keeps the throughput at ~100% without materially reducing
    #: coverage (memory faults of interest flip high bits).
    memory_margin: float = 8.0
    relative_factor: float = 5e-12
    floor: float = 1e-300

    #: Number of elements sampled when estimating data statistics.  The
    #: thresholds only need the *scale* of the data; sampling keeps the
    #: estimation cost O(1) relative to the transform instead of adding an
    #: extra full pass per verification boundary.  1024 strided samples pin
    #: the robust RMS to a few percent (concentration ~1/sqrt(2k)), far
    #: inside the 3-sigma safety factor and the paper's conservative
    #: n^(3/2) round-off bound; the median/partition work this saves was
    #: the single largest non-BLAS cost of a protected transform.
    sample_size: int = 1024

    # ------------------------------------------------------------------
    def _sample(self, data: np.ndarray) -> np.ndarray:
        flat = np.asarray(data).reshape(-1)
        if flat.size <= self.sample_size:
            return flat
        step = max(1, flat.size // self.sample_size)
        return flat[::step]

    def _magnitude_rms(self, data: np.ndarray) -> float:
        """Robust RMS of ``|data|`` (sampled).

        Genuine FFT data can be extremely spiky (a narrowband signal's
        spectrum has a handful of huge bins), so a plain median would
        underestimate the scale badly; a plain RMS, on the other hand, can be
        hijacked - or overflowed - by a single corrupted element when a
        threshold is derived from data that already contains the fault.  The
        compromise: RMS over the sample after discarding non-finite values
        and elements more than ``1e6`` times the median magnitude (legitimate
        spikes stay well below that ratio; exponent-bit flips do not).
        """

        sample = np.abs(self._sample(data))
        if sample.size == 0:
            return 0.0
        # One max reduction gates both slow paths: magnitudes are >= 0, so a
        # finite max means every element is finite (NaN poisons np.max), and
        # max <= bound means all <= bound.  The common all-clean case then
        # touches the data twice (max, mean) instead of building two masks.
        amax = float(np.max(sample))
        if not np.isfinite(amax):
            sample = sample[np.isfinite(sample)]
            if sample.size == 0:
                return 0.0
            amax = float(np.max(sample))
        median = _median_finite(sample)
        if median > 0 and not amax <= 1e6 * median:
            sample = sample[sample <= 1e6 * median]
        if sample.size == 0:
            return median
        # In-place square: ``sample`` is always a private array here (np.abs
        # output or a mask copy), and x**2 == np.square(x) bit-for-bit.
        return float(np.sqrt(np.mean(np.square(sample, out=sample))))

    def magnitude_rms(self, data: np.ndarray) -> float:
        """Public robust RMS of ``|data|`` (see :meth:`_magnitude_rms`).

        Exposed so a scheme can sample its input *once* per run and feed the
        value into every threshold that depends on the same data
        (``sigma0 = magnitude_rms / sqrt(2)`` exactly as
        :meth:`component_sigma` computes it).
        """

        return self._magnitude_rms(data)

    def component_sigma(self, data: np.ndarray) -> float:
        """Estimate sigma_0 (per real/imaginary component) from data."""

        rms = self._magnitude_rms(data)
        return float(rms / np.sqrt(2.0))

    # ------------------------------------------------------------------
    def eta_stage1(self, m: int, data: np.ndarray, *, sigma0: Optional[float] = None) -> float:
        """Threshold for verifying one first-part ``m``-point FFT.

        ``sigma0`` may carry a precomputed :meth:`component_sigma` of
        ``data`` (bit-identical, avoids re-sampling the same array).
        """

        if sigma0 is None:
            sigma0 = self.component_sigma(data)
        if self.mode is ThresholdMode.RELATIVE:
            scale = float(np.sqrt(m)) * m * max(sigma0, 1e-30)
            return max(self.relative_factor * scale, self.floor)
        sigma_roe = self.model.checksum_roundoff_sigma(m, sigma0)
        return max(self.safety_factor * float(np.sqrt(m)) * sigma_roe, self.floor)

    def eta_stage2(
        self, k: int, m: int, data: np.ndarray, *, sigma0: Optional[float] = None
    ) -> float:
        """Threshold for verifying one second-part ``k``-point FFT.

        ``data`` is the *original* input (its sigma_0 is amplified by
        ``sqrt(m)`` through the first part, as in the paper's derivation).
        """

        if sigma0 is None:
            sigma0 = self.component_sigma(data)
        if self.mode is ThresholdMode.RELATIVE:
            scale = float(np.sqrt(k)) * k * max(np.sqrt(m) * sigma0, 1e-30)
            return max(self.relative_factor * scale, self.floor)
        sigma_roe2 = self.model.second_stage_checksum_sigma(k, m, sigma0)
        return max(self.safety_factor * float(np.sqrt(k)) * sigma_roe2, self.floor)

    def eta_offline(self, n: int, data: np.ndarray, *, sigma0: Optional[float] = None) -> float:
        """Threshold for the single offline verification of an ``n``-point FFT."""

        return self.eta_stage1(n, data, sigma0=sigma0)

    def offline_threshold_fn(self, n: int) -> "Callable[[float], float]":
        """A ``sigma0 -> eta`` closure bit-identical to :meth:`eta_offline`.

        Every data-independent scalar (``sqrt(n)``, ``log2(n)``,
        ``sigma_eps^2`` and their products) is bound once, in the exact
        evaluation order and dtypes of the per-call formula, so the closure's
        result matches :meth:`eta_offline` bit for bit while costing one
        short multiply chain.  Built at plan time by the fused protected
        path, which derives a threshold on every execution.
        """

        sqrt_n = float(np.sqrt(n))
        floor = self.floor
        if self.mode is ThresholdMode.RELATIVE:
            base = sqrt_n * n  # float(np.sqrt(m)) * m, same association
            rel = self.relative_factor

            def eta_relative(sigma0: float) -> float:
                return max(rel * (base * max(sigma0, 1e-30)), floor)

            return eta_relative
        prefactor = self.safety_factor * sqrt_n
        if n < 2:
            const = max(prefactor * 0.0, floor)
            return lambda sigma0: const
        # fft_roundoff_sigma's radicand, left-associated exactly as written
        # there: (((2.0 * n) * sigma0**2) * sigma_eps**2) * log2(n).
        two_n = 2.0 * n
        eps2 = self.model.sigma_eps ** 2
        log2_n = np.log2(n)  # numpy scalar, preserving the promotion

        def eta_paper(sigma0: float) -> float:
            roundoff = float(np.sqrt(((two_n * sigma0 ** 2) * eps2) * log2_n))
            sigma_roe = float(n * roundoff)
            return max(prefactor * sigma_roe, floor)

        return eta_paper

    def memory_threshold_fn(self, n: int) -> "Callable[[float, float], float]":
        """A ``(weight_rms, data_rms) -> eta`` closure matching :meth:`eta_memory`.

        Same contract as :meth:`offline_threshold_fn`: the weight- and
        data-independent factors are bound once with unchanged evaluation
        order, so results are bit-identical to calling :meth:`eta_memory`
        with precomputed ``weight_rms``/``data_rms``.
        """

        floor = self.floor
        if self.mode is ThresholdMode.RELATIVE:
            rel = self.relative_factor

            def eta_relative(weight_rms: float, data_rms: float) -> float:
                return max(rel * n * (weight_rms * data_rms), floor)

            return eta_relative
        eps = self.model.sigma_eps
        prefactor = self.safety_factor * self.memory_margin

        def eta_paper(weight_rms: float, data_rms: float) -> float:
            sigma = float(n * (weight_rms * data_rms) * eps)
            return max(prefactor * sigma, floor)

        return eta_paper

    def eta_offline_batch(
        self, n: int, rows: np.ndarray, *, sigma0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-row offline thresholds for a ``(batch, n)`` array, vectorized.

        Semantically one :meth:`eta_offline` per row, but computed without a
        Python loop so batched execution (``FTPlan.execute_many``) keeps its
        protection fully vectorized.  Both threshold modes are linear in the
        per-row ``sigma_0``, so the data-independent factor is evaluated once
        and scaled by the vector of per-row sigmas.  ``sigma0`` may carry a
        precomputed :meth:`component_sigma_rows` of ``rows`` (bit-identical,
        lets a caller sample the batch once and share the statistics with
        :meth:`eta_memory_batch`).
        """

        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
        if sigma0 is None:
            sigma0 = self._component_sigma_rows(rows)
        if self.mode is ThresholdMode.RELATIVE:
            unit = self.relative_factor * float(np.sqrt(n)) * n
            etas = unit * np.maximum(sigma0, 1e-30)
        else:
            # checksum_roundoff_sigma(n, s) = s * checksum_roundoff_sigma(n, 1)
            unit = (
                self.safety_factor * float(np.sqrt(n)) * self.model.checksum_roundoff_sigma(n, 1.0)
            )
            etas = unit * sigma0
        return np.maximum(etas, self.floor)

    def component_sigma_rows(self, rows: np.ndarray) -> np.ndarray:
        """Public vectorized per-row :meth:`component_sigma`.

        Exposed so batched callers can sample a batch *once* and feed the
        same statistics into both :meth:`eta_offline_batch` and
        :meth:`eta_memory_batch` (bit-identical thresholds either way).
        """

        return self._component_sigma_rows(rows)

    def _component_sigma_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized per-row :meth:`component_sigma` (robust, sampled)."""

        step = max(1, rows.shape[1] // self.sample_size)
        sample = np.abs(rows[:, ::step])
        finite = np.isfinite(sample)
        if finite.all():
            # Fault-free batches are all-finite, so the median is one C
            # partition per row (np.nanmedian would route through a per-row
            # apply_along_axis that dominates the whole batched protection
            # pipeline).  Calling partition directly skips np.median's
            # _ureduce/moveaxis dispatch - several FFT-sized passes of pure
            # Python per batch - and reproduces its result bit for bit:
            # the midpoint (a+b)*0.5 of the two central order statistics is
            # np.mean of the same pair, and for odd widths the single
            # central statistic.
            width = sample.shape[1]
            mid = width // 2
            if width % 2:
                median = np.partition(sample, mid, axis=1)[:, mid]
            else:
                part = np.partition(sample, (mid - 1, mid), axis=1)
                median = (part[:, mid - 1] + part[:, mid]) * 0.5
        else:
            with np.errstate(invalid="ignore"):
                median = np.nanmedian(np.where(finite, sample, np.nan), axis=1)
            median = np.nan_to_num(median, nan=0.0)
        # Same outlier rule as _magnitude_rms: drop non-finite values and
        # values more than 1e6 x the per-row median (rows whose median is 0
        # keep everything finite, mirroring the scalar path).
        keep = finite & (
            (median[:, None] <= 0.0) | (sample <= 1e6 * median[:, None])
        )
        counts = keep.sum(axis=1)
        sums = np.square(np.where(keep, sample, 0.0)).sum(axis=1)
        rms = np.sqrt(sums / np.maximum(counts, 1))
        rms = np.where(counts > 0, rms, median)
        return rms / np.sqrt(2.0)

    def eta_memory(
        self,
        weights: np.ndarray,
        data: np.ndarray,
        *,
        weight_rms: Optional[float] = None,
        data_rms: Optional[float] = None,
    ) -> float:
        """Threshold for a memory-checksum verification.

        The residual of a fault-free weighted sum is bounded by the round-off
        of summing ``len(weights)`` terms of magnitude ``|w_j x_j|``; the RMS
        of those terms is measured from the data so the bound adapts to the
        modified (non-uniform) weights as well.  ``weight_rms`` may carry the
        weight-vector RMS precomputed at plan time
        (:func:`repro.core.constants.weight_rms` uses the identical
        expression, so the threshold is bit-identical either way).
        """

        weights = np.asarray(weights)
        n = weights.shape[0]
        # |w_j x_j| RMS approximated as rms(|w|) * robust-rms(|x|) on a sample
        # of the data; the threshold only needs the right order of magnitude
        # and this keeps verification from re-reading whole arrays.  The data
        # scale is outlier-filtered (see _magnitude_rms) so that a threshold
        # derived from already-corrupted data is not inflated - or overflowed
        # - by the corruption it is supposed to expose.
        if weight_rms is None:
            weight_rms = float(np.sqrt(np.mean(np.abs(weights) ** 2))) if n else 0.0
        value_rms = weight_rms * (
            data_rms if data_rms is not None else self._magnitude_rms(data)
        )
        if self.mode is ThresholdMode.RELATIVE:
            return max(self.relative_factor * n * value_rms, self.floor)
        sigma = self.model.summation_sigma(n, value_rms)
        return max(self.safety_factor * self.memory_margin * sigma, self.floor)

    def eta_memory_batch(
        self,
        weights: np.ndarray,
        rows: np.ndarray,
        *,
        weight_rms: Optional[float] = None,
        sigma0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-row memory-checksum thresholds for a ``(batch, n)`` array.

        Semantically one :meth:`eta_memory` per row, vectorized: both modes
        are linear in the per-row data RMS, so the weight/data-independent
        factor is computed once and scaled by the vector of row RMS values.
        ``weight_rms`` optionally carries the plan-time precomputed
        weight-vector RMS (see :meth:`eta_memory`); ``sigma0`` a precomputed
        :meth:`component_sigma_rows` of ``rows`` (see
        :meth:`eta_offline_batch`).
        """

        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
        weights = np.asarray(weights)
        n = weights.shape[0]
        if weight_rms is None:
            weight_rms = float(np.sqrt(np.mean(np.abs(weights) ** 2))) if n else 0.0
        if sigma0 is None:
            sigma0 = self._component_sigma_rows(rows)
        # component sigma is rms/sqrt(2); undo to get magnitude RMS.
        value_rms = weight_rms * sigma0 * float(np.sqrt(2.0))
        if self.mode is ThresholdMode.RELATIVE:
            etas = self.relative_factor * n * value_rms
        else:
            etas = (
                self.safety_factor
                * self.memory_margin
                * self.model.summation_sigma(n, 1.0)
                * value_rms
            )
        return np.maximum(etas, self.floor)

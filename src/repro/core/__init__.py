"""The paper's contribution: offline and online ABFT schemes for the FFT.

Layout
------

``checksums``
    The checksum algebra: the :math:`\\omega_3` computational checksum vector
    of Wang & Jha, the closed-form input checksum vector ``rA``, the classic
    and modified (Section 4.1) memory checksum pairs, and the
    locate-and-correct procedure for memory errors.
``thresholds``
    Round-off error modelling and the selection of the detection threshold
    :math:`\\eta` (Section 8).
``detection``
    Verification / correction bookkeeping shared by all schemes.
``dmr``
    Double/triple modular redundancy helpers used for the twiddle stage and
    checksum generation.
``plain``
    The unprotected baseline (our FFTW stand-in).
``offline``
    The classical offline ABFT scheme (Algorithm 1), naive and optimized,
    with optional memory fault tolerance.
``online``
    The paper's two-layer online ABFT scheme (Algorithm 2) and the memory
    fault tolerance hierarchy of Fig. 2, without the Section 4 optimizations.
``optimized``
    The fully optimized online scheme of Fig. 3 (modified checksums,
    verification postponing, incremental checksum generation, contiguous
    buffering), with individual optimizations toggleable for ablations.
``constants``
    :class:`SchemeConstants`: the frozen plan-time bundle of every
    data-independent weight vector and threshold input, built once per plan
    and threaded into all four schemes.
``config``
    :class:`FTConfig`: the frozen, validated, hashable description of a
    protected transform (scheme kind, factors, thresholds, flags, dtype,
    backend) with legacy registry-name conversion.
``ftplan``
    The plan-centric public API: ``repro.plan`` (thread-safe LRU "wisdom"
    cache), :class:`FTPlan` with ``execute`` / ``inverse`` / batched
    ``execute_many``.
``api``
    Legacy ``FaultTolerantFFT`` facade and string registry, kept as
    deprecation shims over the plan API.
"""

from repro.core.base import FTScheme, OptimizationFlags, SchemeResult
from repro.core.checksums import (
    ChecksumPair,
    MemoryChecksumVectors,
    computational_weights,
    input_checksum_weights,
    input_checksum_weights_naive,
    locate_single_error,
    memory_weights_classic,
    memory_weights_modified,
    omega3,
    weighted_sum,
)
from repro.core.constants import SchemeConstants
from repro.core.thresholds import RoundoffModel, ThresholdPolicy
from repro.core.detection import CorrectionRecord, FTReport, VerificationRecord
from repro.core.dmr import dmr_elementwise, dmr_scalar
from repro.core.plain import PlainFFT
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.config import FTConfig, SCHEME_KINDS, legacy_scheme_names
from repro.core.ftplan import (
    BatchResult,
    FTPlan,
    PlanCacheInfo,
    clear_plan_cache,
    plan,
    plan_cache_info,
    set_plan_cache_limit,
)
from repro.core.api import FaultTolerantFFT, available_schemes, create_scheme, ft_fft

__all__ = [
    "FTConfig",
    "SCHEME_KINDS",
    "legacy_scheme_names",
    "BatchResult",
    "FTPlan",
    "PlanCacheInfo",
    "clear_plan_cache",
    "plan",
    "plan_cache_info",
    "set_plan_cache_limit",
    "FTScheme",
    "OptimizationFlags",
    "SchemeResult",
    "ChecksumPair",
    "MemoryChecksumVectors",
    "computational_weights",
    "input_checksum_weights",
    "input_checksum_weights_naive",
    "locate_single_error",
    "memory_weights_classic",
    "memory_weights_modified",
    "omega3",
    "weighted_sum",
    "SchemeConstants",
    "RoundoffModel",
    "ThresholdPolicy",
    "CorrectionRecord",
    "FTReport",
    "VerificationRecord",
    "dmr_elementwise",
    "dmr_scalar",
    "PlainFFT",
    "OfflineABFT",
    "OnlineABFT",
    "OptimizedOnlineABFT",
    "FaultTolerantFFT",
    "available_schemes",
    "create_scheme",
    "ft_fft",
]

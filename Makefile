# Developer entry points.  `make lint` is the single local command that
# mirrors the blocking static-analysis CI jobs: ruff (style), reprolint
# (the repo's own AST invariant checker), and mypy (types).  ruff and mypy
# are optional dev dependencies - when one is not installed the target
# says so and moves on, so `make lint` is still useful in minimal
# environments; reprolint is stdlib-only and always runs.

PYTHON ?= python

.PHONY: lint reprolint format typecheck test

lint: reprolint
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check . && $(PYTHON) -m ruff format --check .; \
	else \
		echo "ruff not installed - skipping style check (pip install ruff)"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed - skipping type check (pip install mypy)"; \
	fi

reprolint:
	$(PYTHON) -m reprolint src tests benchmarks

format:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff format .; \
	else \
		echo "ruff not installed - cannot format (pip install ruff)"; exit 1; \
	fi

typecheck:
	$(PYTHON) -m mypy

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works with legacy (non-PEP-517) editable installs
in offline environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()

"""Nightly differential sweep: fused protected execution vs the legacy scheme.

PR 7 compiled the ABFT into the transform: fault-free protected runs go
through :class:`repro.fftlib.protected.ProtectedStageProgram` instead of
the paper-exact group-wise scheme.  That fast path is only sound if it is
*indistinguishable* from the legacy path on everything except speed, so
this harness sweeps randomized trials (``REPRO_BENCH_TRIALS``, 200 in the
nightly run) over both protected schemes and asserts, per trial:

* **spectrum** - the fused output is *bitwise* identical to the unprotected
  compiled stage program and within roundoff of the legacy scheme path
  (the legacy path uses the same sub-FFTs but different reduction order);
* **decision** - both paths agree the run is clean: no detected
  verification, no corrections, no uncorrectable faults;
* **routing/coverage** - a live injector on the *same plan object* routes
  through the paper-exact scheme machinery and every random high-bit flip
  (the Table 6 fault model) is detected, corrected, and leaves < 1e-8
  relative output error.

The strict fault campaign is gated behind
``REPRO_BENCH_REQUIRE_FULL_COVERAGE=1`` like the Table 6 gate; the
fault-free differential is deterministic and always runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from _harness import campaign_trials, env_int, plan_for, save_table
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.fftlib import get_program
from repro.utils.reporting import Table

SCHEMES = ["opt-offline+mem", "opt-online+mem"]
SITES = [FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT]


def _size() -> int:
    return env_int("REPRO_BENCH_COVERAGE_N", 2**12)


def _trial_input(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)


def _clean_report(report) -> bool:
    return (
        not any(v.detected for v in report.verifications)
        and not report.corrections
        and not report.uncorrectable
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fused_fault_free_differential(scheme):
    """Fused path == compiled program (bitwise) == legacy scheme (roundoff)."""

    n = _size()
    p = plan_for(scheme, n)
    assert p._fused_program is not None, "protected plan must carry a fused program"
    program = get_program(n)
    rng = np.random.default_rng(20170712)
    trials = campaign_trials()
    for trial in range(trials):
        x = _trial_input(rng, n)
        fused = p.execute(x)
        compiled = program.execute(x.reshape(1, n)).reshape(n)
        assert np.array_equal(fused.output, compiled), (
            f"{scheme} trial {trial}: fused spectrum is not bitwise-identical "
            "to the compiled stage program"
        )
        legacy = p.scheme.execute(x)
        assert np.allclose(fused.output, legacy.output, rtol=1e-9, atol=1e-9), (
            f"{scheme} trial {trial}: fused and legacy spectra diverge"
        )
        assert _clean_report(fused.report) and _clean_report(legacy.report), (
            f"{scheme} trial {trial}: paths disagree on the clean-run decision"
        )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fused_batch_differential(scheme):
    """``execute_many`` (amortized thresholds) matches per-vector fused runs."""

    n = _size()
    p = plan_for(scheme, n)
    rng = np.random.default_rng(20171112)
    batch = max(4, min(32, campaign_trials() // 8))
    xs = np.stack([_trial_input(rng, n) for _ in range(batch)])
    many = p.execute_many(xs)
    singles = np.stack([p.execute(x).output for x in xs])
    assert np.array_equal(np.asarray(many.output), singles), (
        f"{scheme}: batched fused spectra differ from per-vector fused spectra"
    )
    assert _clean_report(many.report)


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_REQUIRE_FULL_COVERAGE") != "1",
    reason="nightly-only strict gate (set REPRO_BENCH_REQUIRE_FULL_COVERAGE=1)",
)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fused_plan_fault_campaign(scheme):
    """Random high-bit flips on the fused plan: 100% detection and correction.

    The injector is live, so the plan must route around the fused program
    into the paper-exact scheme path; the Table 6 fault model (one random
    bit 50-62 flip at a random site/element) must then be fully detected
    and corrected exactly as it is without a fused program.
    """

    n = _size()
    p = plan_for(scheme, n)
    assert p._fused_program is not None
    rng = np.random.default_rng(20171112)
    trials = campaign_trials()
    undetected, uncorrected, dirty = [], [], []
    for trial in range(trials):
        x = _trial_input(rng, n)
        injector = FaultInjector().arm_bitflip(
            SITES[trial % len(SITES)],
            element=int(rng.integers(0, n)),
            bit=int(rng.integers(50, 63)),
            imaginary=bool(rng.integers(0, 2)),
        )
        result = p.execute(x, injector)
        assert injector.events, f"{scheme} trial {trial}: fault never fired"
        report = result.report
        if not any(v.detected for v in report.verifications):
            undetected.append(trial)
        if not report.corrections or report.uncorrectable:
            uncorrected.append(trial)
        reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
        err = float(np.max(np.abs(result.output - reference)) / np.max(np.abs(reference)))
        if err > 1e-8:
            dirty.append(trial)
    table = Table(
        f"Fused differential fault campaign - {scheme} (n={n}, {trials} trials)",
        ["metric", "count"],
    )
    table.add_row("trials", trials)
    table.add_row("undetected", len(undetected))
    table.add_row("uncorrected", len(uncorrected))
    table.add_row("residual error > 1e-8", len(dirty))
    save_table(table, f"fused_differential_{scheme}.txt")
    assert not undetected, f"{scheme}: trials {undetected} went undetected"
    assert not uncorrected, f"{scheme}: trials {uncorrected} were not corrected"
    assert not dirty, f"{scheme}: trials {dirty} left residual output error"

"""Thread-scaling benchmark: the six-step runtime at 1/2/4/8 workers.

Times, per size, the serial compiled :class:`StageProgram` against the
shared-memory :class:`~repro.runtime.threaded.ThreadedSixStepProgram` with
the process pool resized to each worker count, plus the chunk-parallel
protected batched path (``FTPlan.execute_many`` with ``threads=t``).  This
is the shared-memory counterpart of the paper's strong-scaling figures
(Fig. 8) - the README "Multicore execution" table is regenerated from it.

Scaling is bounded by the host: the results record the visible core count,
and worker counts beyond it only measure chunking overhead (the pool runs
chunks inline when it has a single worker).

Environment knobs: ``REPRO_BENCH_SIZES`` (default ``1048576``),
``REPRO_BENCH_THREAD_COUNTS`` (default ``1 2 4 8``),
``REPRO_BENCH_REPEATS`` (default 5), ``REPRO_BENCH_BATCH`` (default 8).
"""

from __future__ import annotations

import numpy as np

from _harness import env_int, env_int_list, interleaved_best, make_input, save_table

import repro
from repro.runtime import configure_pool, default_thread_count, get_pool, get_threaded_program
from repro.fftlib.executor import get_program
from repro.utils.reporting import Table

DEFAULT_SIZES = (1048576,)
DEFAULT_THREAD_COUNTS = (1, 2, 4, 8)


def run() -> dict:
    sizes = env_int_list("REPRO_BENCH_SIZES", DEFAULT_SIZES)
    thread_counts = env_int_list("REPRO_BENCH_THREAD_COUNTS", DEFAULT_THREAD_COUNTS)
    repeats = env_int("REPRO_BENCH_REPEATS", 5)
    batch = env_int("REPRO_BENCH_BATCH", 8)

    table = Table(
        f"six-step thread scaling ({default_thread_count()} visible cores)",
        ["n", "threads", "serial [ms]", "threaded [ms]", "speedup",
         f"batch x{batch} serial [ms]", f"batch x{batch} threaded [ms]", "batch speedup"],
    )
    results = []
    original_workers = get_pool().workers  # read without resizing
    try:
        for n in sizes:
            n = int(n)
            x = make_input(n)
            X = np.tile(x, (batch, 1))
            serial_program = get_program(n)
            serial_plan = repro.plan(n, backend="fftlib")
            for t in thread_counts:
                t = int(t)
                configure_pool(t)
                threaded_program = get_threaded_program(n, t)
                threaded_plan = repro.plan(n, backend="fftlib", threads=t)
                best = interleaved_best(
                    {
                        "serial": lambda x=x, p=serial_program: p.execute(x),
                        "threaded": lambda x=x, p=threaded_program: p.execute(x),
                        "batch_serial": lambda X=X, p=serial_plan: p.execute_many(X),
                        "batch_threaded": lambda X=X, p=threaded_plan: p.execute_many(X),
                    },
                    repeats=repeats,
                    warmup=1,
                    inner=3,
                )
                speedup = best["serial"] / best["threaded"]
                batch_speedup = best["batch_serial"] / best["batch_threaded"]
                results.append(
                    {
                        "n": n,
                        "threads": t,
                        "batch": batch,
                        "seconds": {name: float(v) for name, v in best.items()},
                        "speedup_threaded_vs_serial": float(speedup),
                        "speedup_batch_threaded_vs_serial": float(batch_speedup),
                    }
                )
                table.add_row(
                    str(n),
                    str(t),
                    f"{best['serial'] * 1e3:.3f}",
                    f"{best['threaded'] * 1e3:.3f}",
                    f"{speedup:.2f}x",
                    f"{best['batch_serial'] * 1e3:.3f}",
                    f"{best['batch_threaded'] * 1e3:.3f}",
                    f"{batch_speedup:.2f}x",
                )
    finally:
        configure_pool(original_workers)

    save_table(table, "thread_scaling.txt")
    return {"benchmark": "bench_thread_scaling", "cores": default_thread_count(), "results": results}


def check(payload: dict) -> None:
    """Assert correctness and (on real multicore hosts) scaling.

    Runs from both the pytest entry point and ``__main__`` (what CI's bench
    smoke executes), so a scaling regression fails the run either way.
    """

    assert payload["results"], "no scaling rows produced"
    for row in payload["results"]:
        n, t = int(row["n"]), int(row["threads"])
        program = get_threaded_program(n, t)
        x = make_input(n)
        # reprolint: fft-ok - raw reference oracle
        assert np.allclose(program.execute(x), np.fft.fft(x)), (n, t)
        # genuine multicore hosts must show scaling at the default sizes
        if default_thread_count() >= 4 and t >= 4 and n >= 2**20:
            assert row["speedup_threaded_vs_serial"] > 1.0, row


def test_bench_thread_scaling():
    """Pytest smoke: threaded results stay correct at every worker count."""

    import os

    os.environ.setdefault("REPRO_BENCH_SIZES", "65536")
    os.environ.setdefault("REPRO_BENCH_THREAD_COUNTS", "1 2")
    os.environ.setdefault("REPRO_BENCH_REPEATS", "2")
    check(run())


if __name__ == "__main__":
    payload = run()
    check(payload)
    best = max(r["speedup_threaded_vs_serial"] for r in payload["results"])
    print(f"best threaded-vs-serial speedup: {best:.2f}x on {payload['cores']} visible cores")

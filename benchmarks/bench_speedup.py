"""FFT engine speedup benchmark: compiled stage programs vs the seed paths.

Times, per size, on the same machine and interleaved (so machine-noise
drifts cannot bias the ratios):

* ``recursive`` - the seed-style recursive mixed-radix engine
  (:func:`repro.fftlib.mixed_radix.fft`), i.e. the pre-compiled-path hot
  loop;
* ``compiled``  - ``plan(n, backend="fftlib").execute``: the compiled
  iterative stage program of :mod:`repro.fftlib.executor`;
* ``numpy``     - the pocketfft backend through the same plan interface
  (the compiled-C reference point);
* ``protected`` - the full ``opt-online+mem`` ABFT transform through
  ``repro.plan(n, backend="fftlib")`` (what the paper's overhead figures
  are measured on top of).

Machine-readable results are written to ``BENCH_fft_speed.json`` at the
repository root so the perf trajectory of the compiled path is tracked in
version control; a human-readable table lands in ``benchmarks/results/``.

Environment knobs: ``REPRO_BENCH_SIZES`` (default ``4096 16384 65536``),
``REPRO_BENCH_REPEATS`` (default 7).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

from _harness import env_int, env_int_list, interleaved_best, make_input, save_table

import repro
from repro.fftlib.mixed_radix import fft as recursive_fft
from repro.fftlib.planner import plan_fft
from repro.utils.reporting import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_fft_speed.json"

DEFAULT_SIZES = (4096, 16384, 65536)


def run() -> dict:
    sizes = env_int_list("REPRO_BENCH_SIZES", DEFAULT_SIZES)
    repeats = env_int("REPRO_BENCH_REPEATS", 7)

    table = Table(
        "FFT engine speedup (best-of interleaved timings)",
        [
            "n",
            "recursive [ms]",
            "compiled [ms]",
            "numpy [ms]",
            "protected [ms]",
            "compiled speedup",
            "protected vs compiled",
        ],
    )
    results = []
    for n in sizes:
        x = make_input(int(n))
        compiled_plan = plan_fft(int(n), backend="fftlib")
        numpy_plan = plan_fft(int(n), backend="numpy")
        protected_plan = repro.plan(int(n), backend="fftlib")
        candidates = {
            "recursive": lambda x=x: recursive_fft(x),
            "compiled": lambda x=x, p=compiled_plan: p.execute(x),
            "numpy": lambda x=x, p=numpy_plan: p.execute(x),
            "protected": lambda x=x, p=protected_plan: p.execute(x),
        }
        best = interleaved_best(candidates, repeats=repeats, warmup=1)
        speedup = best["recursive"] / best["compiled"]
        protected_ratio = best["protected"] / best["compiled"]
        results.append(
            {
                "n": int(n),
                "seconds": {name: float(t) for name, t in best.items()},
                "speedup_compiled_vs_recursive": float(speedup),
                "speedup_numpy_vs_recursive": float(best["recursive"] / best["numpy"]),
                "speedup_protected_vs_recursive": float(best["recursive"] / best["protected"]),
                "protected_over_compiled_ratio": float(protected_ratio),
            }
        )
        table.add_row(
            str(n),
            f"{best['recursive'] * 1e3:.3f}",
            f"{best['compiled'] * 1e3:.3f}",
            f"{best['numpy'] * 1e3:.3f}",
            f"{best['protected'] * 1e3:.3f}",
            f"{speedup:.2f}x",
            f"{protected_ratio:.2f}x",
        )

    payload = {
        "benchmark": "bench_speedup",
        "description": (
            "plan(n, backend='fftlib').execute (compiled stage programs) vs the "
            "seed-style recursive mixed-radix engine, the numpy backend, and the "
            "fully protected opt-online+mem plan"
        ),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "repeats": repeats,
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_table(table, "fft_speedup.txt")
    print(f"\nwrote {JSON_PATH}")
    return payload


def test_bench_speedup():
    """Pytest entry point: the compiled path must beat the recursive engine."""

    payload = run()
    for row in payload["results"]:
        assert row["speedup_compiled_vs_recursive"] > 1.0, row


if __name__ == "__main__":
    payload = run()
    worst = min(r["speedup_compiled_vs_recursive"] for r in payload["results"])
    print(f"worst compiled-vs-recursive speedup: {worst:.2f}x")

"""FFT engine speedup benchmark: compiled stage programs vs the seed paths.

Times, per size, on the same machine and interleaved (so machine-noise
drifts cannot bias the ratios):

* ``recursive`` - the seed-style recursive mixed-radix engine
  (:func:`repro.fftlib.mixed_radix.fft`), i.e. the pre-compiled-path hot
  loop;
* ``compiled``  - ``plan(n, backend="fftlib").execute``: the compiled
  iterative stage program of :mod:`repro.fftlib.executor`;
* ``numpy``     - the pocketfft backend through the same plan interface
  (the compiled-C reference point);
* ``protected`` - the full ``opt-online+mem`` ABFT transform through
  ``repro.plan(n, backend="fftlib")`` (what the paper's overhead figures
  are measured on top of);
* ``threaded`` - the shared-memory six-step program
  (``plan_fft(n, threads=T)``; ``T`` from ``REPRO_BENCH_THREADS``, default
  the pool size) - chunked row/column FFT phases on the worker pool;
* ``rfft_compiled`` - the compiled half-complex real-input path
  (``plan_fft(n, real=True)``: half-length complex program + one repack
  pass);
* ``rfft_complex_engine`` - the same real input pushed through the complex
  compiled engine and truncated to ``n//2 + 1`` bins (what real workloads
  paid before real plans existed);
* ``rfft_numpy`` - ``numpy.fft.rfft`` through the real plan interface;
* ``inplace`` - the in-place Stockham program
  (``plan_fft(n, inplace=True)``: caller's buffer + one half-size scratch,
  no ping-pong pair, no output allocation), timed overwrite-style on a
  reused buffer;
* ``native`` - the generated-C codelet tier (``plan_fft(n, native=True)``:
  the same stage schedule executed by compiled combine/base kernels loaded
  via ctypes, one foreign call per transform);
* ``rfft_native`` - the real-input path with the native half-length
  program underneath;
* ``protected_traced`` - the protected path with event tracing enabled
  (ring sink) for the call's duration.  ``telemetry_overhead_ratio`` is
  ``protected_traced / protected`` from the same interleaved run - a
  same-machine ratio like every other column - and ``--check`` enforces
  the :mod:`repro.telemetry` contract that it stays at most
  ``TELEMETRY_RATIO_MAX`` (1.02x): turning the observability layer on may
  not cost the fault-free protected path more than 2%.

The two native columns are recorded as ``null`` (and their gates skipped)
when the tier is unavailable - no working C compiler on the host, or
``REPRO_NO_NATIVE=1``.  When the columns *are* present, ``--check``
enforces absolute floors on the committed reference alongside the
protected budget: ``speedup_native_vs_compiled`` at least 1.25x from 2^16
up, and ``speedup_native_vs_numpy`` at least 0.9x at every size (the
generated kernels must approach pocketfft, the compiled-C reference
point, or the tier is not paying for its complexity).

Machine-readable results are written to ``BENCH_fft_speed.json`` at the
repository root so the perf trajectory of the compiled path is tracked in
version control; a human-readable table lands in ``benchmarks/results/``.

``--check`` turns the script into a CI regression gate: fresh numbers are
compared against the *committed* ``BENCH_fft_speed.json`` (which is then
left untouched) and the run fails when any tracked speedup ratio collapsed
by more than ``REPRO_BENCH_CHECK_TOLERANCE`` (default 2.5x) - generous
enough for machine noise across CI hosts, tight enough that "the compiled
path silently lost its advantage" fails the PR instead of shipping.
``--check`` also enforces the *absolute* fused-protection budget on the
committed reference (``protected_over_compiled_ratio`` at most 2x
everywhere and at most 1.5x from 2^16 up): a regenerated reference that
busts the paper's low-overhead claim fails every subsequent CI run, and
the regenerate path refuses to bless such numbers in the first place.

Environment knobs: ``REPRO_BENCH_SIZES`` (default ``65536 262144 1048576``,
up to the paper's 2^20 benchmark regime; sizes below ~2^14 are dominated by
fixed per-stage Python dispatch cost on every engine, which masks the
flop-level ratios the columns track), ``REPRO_BENCH_REPEATS`` (default 7),
``REPRO_BENCH_INNER`` (default 4: one untimed cache re-warm call plus three
timed steady-state calls per interleaved sample; raise it when regenerating
the reference so the near-equal protected/telemetry ratios average over
more steady-state calls).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

import numpy as np

from _harness import env_int, env_int_list, interleaved_best, make_input, save_table

import repro
from repro.fftlib.mixed_radix import fft as recursive_fft
from repro.fftlib.native import native_supported
from repro.fftlib.planner import plan_fft
from repro.runtime import default_thread_count
from repro.utils.reporting import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_fft_speed.json"

DEFAULT_SIZES = (65536, 262144, 1048576)

#: ratio keys guarded by ``--check``; True = higher is better.
CHECKED_RATIOS = {
    "speedup_compiled_vs_recursive": True,
    "speedup_real_vs_complex_engine": True,
    "speedup_inplace_vs_compiled": True,
    "speedup_native_vs_compiled": True,
    "speedup_native_vs_numpy": True,
    "speedup_rfft_native_vs_compiled": True,
    # protected overhead: lower is better (ratio of protected over compiled)
    "protected_over_compiled_ratio": False,
    # tracing-enabled over tracing-disabled protected time: lower is better
    "telemetry_overhead_ratio": False,
}

#: Absolute budget for the fused protected path: the paper's low-overhead
#: claim, enforced on the *committed* reference numbers (same-machine
#: interleaved timings; fresh CI numbers are only held to the relative
#: tolerance, since a noisy shared runner should not flake an absolute gate).
PROTECTED_RATIO_MAX = 2.0
#: Tighter budget where the O(n) checksum work amortizes (>= 2^16 the
#: transform is memory-bound and the protection adds ~2 passes over the data).
PROTECTED_RATIO_MAX_LARGE = 1.5
PROTECTED_RATIO_LARGE_MIN_N = 65536


#: Absolute floors for the generated-C native tier, enforced (like the
#: protected budget) on the committed reference and at regeneration time.
#: Both gates are skipped for rows whose native columns are null - the
#: machine that produced the reference had no usable C compiler.
NATIVE_VS_COMPILED_MIN = 1.25
NATIVE_VS_COMPILED_MIN_N = 65536
NATIVE_VS_NUMPY_MIN = 0.9

#: Absolute ceiling for ``telemetry_overhead_ratio`` (tracing-enabled over
#: tracing-disabled protected time, same interleaved run): the telemetry
#: subsystem's contract that observability costs the fault-free hot path at
#: most 2%.  Enforced like the protected budget - deterministically on the
#: committed reference, and at regeneration time before blessing new JSON.
TELEMETRY_RATIO_MAX = 1.02


def protected_budget(n: int) -> float:
    """Absolute ``protected_over_compiled_ratio`` bound for size ``n``."""

    return PROTECTED_RATIO_MAX_LARGE if n >= PROTECTED_RATIO_LARGE_MIN_N else PROTECTED_RATIO_MAX


def check_protected_budget(rows: list, label: str) -> list:
    """Absolute overhead violations of the fused protected path, as strings."""

    violations = []
    for row in rows:
        ratio = row.get("protected_over_compiled_ratio")
        if ratio is None:
            continue
        budget = protected_budget(int(row["n"]))
        if ratio > budget:
            violations.append(
                f"n={row['n']}: protected_over_compiled_ratio {ratio:.3f} "
                f"exceeds the {budget}x budget ({label})"
            )
    return violations


def check_telemetry_budget(rows: list, label: str) -> list:
    """Absolute telemetry-overhead violations, as strings (null columns skip)."""

    violations = []
    for row in rows:
        ratio = row.get("telemetry_overhead_ratio")
        if ratio is None:
            continue
        if ratio > TELEMETRY_RATIO_MAX:
            violations.append(
                f"n={row['n']}: telemetry_overhead_ratio {ratio:.3f} exceeds "
                f"the {TELEMETRY_RATIO_MAX}x ceiling ({label})"
            )
    return violations


def check_native_floors(rows: list, label: str) -> list:
    """Absolute native-tier floor violations, as strings (null columns skip)."""

    violations = []
    for row in rows:
        n = int(row["n"])
        vs_compiled = row.get("speedup_native_vs_compiled")
        vs_numpy = row.get("speedup_native_vs_numpy")
        if (
            vs_compiled is not None
            and n >= NATIVE_VS_COMPILED_MIN_N
            and vs_compiled < NATIVE_VS_COMPILED_MIN
        ):
            violations.append(
                f"n={n}: speedup_native_vs_compiled {vs_compiled:.3f} below "
                f"the {NATIVE_VS_COMPILED_MIN}x floor ({label})"
            )
        if vs_numpy is not None and vs_numpy < NATIVE_VS_NUMPY_MIN:
            violations.append(
                f"n={n}: speedup_native_vs_numpy {vs_numpy:.3f} below "
                f"the {NATIVE_VS_NUMPY_MIN}x floor ({label})"
            )
    return violations


def run(write: bool = True) -> dict:
    sizes = env_int_list("REPRO_BENCH_SIZES", DEFAULT_SIZES)
    repeats = env_int("REPRO_BENCH_REPEATS", 7)
    inner = env_int("REPRO_BENCH_INNER", 4)
    threads = env_int("REPRO_BENCH_THREADS", default_thread_count())

    with_native = native_supported()
    table = Table(
        "FFT engine speedup (best-of interleaved timings)",
        [
            "n",
            "recursive [ms]",
            "compiled [ms]",
            "native [ms]",
            "inplace [ms]",
            f"threaded x{threads} [ms]",
            "numpy [ms]",
            "protected [ms]",
            "rfft [ms]",
            "compiled speedup",
            "native vs compiled",
            "native vs numpy",
            "inplace vs compiled",
            "threaded speedup",
            "protected vs compiled",
            "telemetry overhead",
            "rfft speedup",
        ],
    )
    results = []
    for n in sizes:
        x = make_input(int(n))
        xr = np.real(x).copy()
        bins = int(n) // 2 + 1
        compiled_plan = plan_fft(int(n), backend="fftlib")
        inplace_plan = plan_fft(int(n), backend="fftlib", inplace=True)
        threaded_plan = plan_fft(int(n), backend="fftlib", threads=threads)
        numpy_plan = plan_fft(int(n), backend="numpy")
        protected_plan = repro.plan(int(n), backend="fftlib")
        real_plan = plan_fft(int(n), backend="fftlib", real=True)
        real_numpy_plan = plan_fft(int(n), backend="numpy", real=True)
        # overwrite-style timing: refill the reused buffer, transform it in
        # place - what a memory-constrained caller actually pays per call.
        work_buf = np.empty(int(n), dtype=np.complex128)

        def run_inplace(x=x, p=inplace_plan, buf=work_buf):
            np.copyto(buf, x)
            return p.execute_inplace(buf)

        def run_protected_traced(x=x, p=protected_plan):
            # Event tracing on (ring sink only) for exactly this call: the
            # interleaved ratio against the plain protected candidate is the
            # telemetry layer's measured cost on the fault-free hot path.
            repro.telemetry.enable_trace()
            try:
                return p.execute(x)
            finally:
                repro.telemetry.disable_trace()

        candidates = {
            "recursive": lambda x=x: recursive_fft(x),
            "compiled": lambda x=x, p=compiled_plan: p.execute(x),
            "inplace": run_inplace,
            "threaded": lambda x=x, p=threaded_plan: p.execute(x),
            "numpy": lambda x=x, p=numpy_plan: p.execute(x),
            "protected": lambda x=x, p=protected_plan: p.execute(x),
            "protected_traced": run_protected_traced,
            "rfft_compiled": lambda xr=xr, p=real_plan: p.execute(xr),
            # the pre-real-plan cost of a real workload: complexify, run the
            # compiled complex engine, keep the non-redundant bins
            "rfft_complex_engine": lambda xr=xr, p=compiled_plan, b=bins: p.execute(
                xr.astype(np.complex128)
            )[:b],
            "rfft_numpy": lambda xr=xr, p=real_numpy_plan: p.execute(xr),
        }
        if with_native:
            native_plan = plan_fft(int(n), backend="fftlib", native=True)
            real_native_plan = plan_fft(int(n), backend="fftlib", real=True, native=True)
            candidates["native"] = lambda x=x, p=native_plan: p.execute(x)
            candidates["rfft_native"] = lambda xr=xr, p=real_native_plan: p.execute(xr)
        # one cache re-warm call + inner-1 steady-state calls per sample
        # (the candidates share the cache round-robin).  The min estimator
        # keeps per-candidate noise variance out of the near-equal ratios
        # the absolute budgets gate (protected vs compiled, traced vs
        # untraced): floor-to-floor, not mean-to-mean.
        best = interleaved_best(
            candidates, repeats=repeats, warmup=1, inner=inner, estimator="min"
        )
        speedup = best["recursive"] / best["compiled"]
        inplace_speedup = best["compiled"] / best["inplace"]
        threaded_speedup = best["compiled"] / best["threaded"]
        protected_ratio = best["protected"] / best["compiled"]
        telemetry_ratio = best["protected_traced"] / best["protected"]
        real_speedup = best["rfft_complex_engine"] / best["rfft_compiled"]
        if with_native:
            native_vs_compiled = float(best["compiled"] / best["native"])
            native_vs_numpy = float(best["numpy"] / best["native"])
            rfft_native_speedup = float(best["rfft_compiled"] / best["rfft_native"])
        else:
            native_vs_compiled = native_vs_numpy = rfft_native_speedup = None
        results.append(
            {
                "n": int(n),
                "threads": int(threads),
                "seconds": {name: float(t) for name, t in best.items()},
                "speedup_compiled_vs_recursive": float(speedup),
                "speedup_numpy_vs_recursive": float(best["recursive"] / best["numpy"]),
                "speedup_protected_vs_recursive": float(best["recursive"] / best["protected"]),
                "protected_over_compiled_ratio": float(protected_ratio),
                "telemetry_overhead_ratio": float(telemetry_ratio),
                "speedup_threaded_vs_compiled": float(threaded_speedup),
                "speedup_inplace_vs_compiled": float(inplace_speedup),
                "speedup_real_vs_complex_engine": float(real_speedup),
                "speedup_real_vs_numpy_rfft": float(best["rfft_numpy"] / best["rfft_compiled"]),
                "speedup_native_vs_compiled": native_vs_compiled,
                "speedup_native_vs_numpy": native_vs_numpy,
                "speedup_rfft_native_vs_compiled": rfft_native_speedup,
            }
        )
        table.add_row(
            str(n),
            f"{best['recursive'] * 1e3:.3f}",
            f"{best['compiled'] * 1e3:.3f}",
            f"{best['native'] * 1e3:.3f}" if with_native else "-",
            f"{best['inplace'] * 1e3:.3f}",
            f"{best['threaded'] * 1e3:.3f}",
            f"{best['numpy'] * 1e3:.3f}",
            f"{best['protected'] * 1e3:.3f}",
            f"{best['rfft_compiled'] * 1e3:.3f}",
            f"{speedup:.2f}x",
            f"{native_vs_compiled:.2f}x" if with_native else "-",
            f"{native_vs_numpy:.2f}x" if with_native else "-",
            f"{inplace_speedup:.2f}x",
            f"{threaded_speedup:.2f}x",
            f"{protected_ratio:.2f}x",
            f"{telemetry_ratio:.3f}x",
            f"{real_speedup:.2f}x",
        )

    payload = {
        "benchmark": "bench_speedup",
        "description": (
            "plan(n, backend='fftlib').execute (compiled stage programs) vs the "
            "seed-style recursive mixed-radix engine, the numpy backend, and the "
            "fully protected opt-online+mem plan; threaded column is the "
            "shared-memory six-step program on REPRO_BENCH_THREADS workers; "
            "rfft_* columns compare the compiled half-complex real path against "
            "the complex engine on the same real input and numpy.fft.rfft; the "
            "inplace column is the Stockham autosort program overwriting a "
            "reused buffer (half the working set of the ping-pong path); the "
            "native/rfft_native columns are the generated-C codelet tier "
            "(null when the machine has no usable C compiler); "
            "protected_traced is the protected path with event tracing "
            "enabled, so telemetry_overhead_ratio is the measured cost of "
            "turning the observability layer on"
        ),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cores": default_thread_count(),
        },
        "repeats": repeats,
        "inner": inner,
        "threads": int(threads),
        "results": results,
    }
    if write:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {JSON_PATH}")
    save_table(table, "fft_speedup.txt")
    return payload


def check(payload: dict) -> None:
    """Assert the compiled paths beat their baselines.

    Enforced by both the pytest entry point and the ``__main__`` path CI's
    bench smoke actually executes, so a regression fails the run either way.
    """

    for row in payload["results"]:
        assert row["speedup_compiled_vs_recursive"] > 1.0, row
        # Below ~2^14 both engines are dispatch-bound and the half-complex
        # flop advantage sits inside the noise band; only assert where the
        # ratio is meaningful.
        if row["n"] >= 16384:
            assert row["speedup_real_vs_complex_engine"] > 1.0, row
        # The threaded six-step must beat the serial compiled program at the
        # paper's 2^20 regime, but only where real parallelism exists: at
        # least 4 cores and 2 pool workers (a 1-core CI container runs the
        # chunks inline and can only measure the chunking overhead).
        if row["n"] >= 2**20 and default_thread_count() >= 4 and row["threads"] >= 2:
            assert row["speedup_threaded_vs_compiled"] > 1.0, row


def check_against_reference(payload: dict, reference: dict, tolerance: float) -> list:
    """Compare fresh ratios to the committed reference; return regressions.

    Only sizes present in both runs are compared (the CI smoke runs a small
    subset of the committed sweep).  A ratio regresses when it collapsed by
    more than ``tolerance`` relative to the recorded value - e.g. with the
    default 2.5, a recorded 5x compiled-vs-recursive speedup fails below
    2x.  Absolute milliseconds are deliberately not compared: CI hosts and
    the machine that produced the committed numbers differ, ratios of
    same-machine interleaved timings do not.
    """

    ref_rows = {row["n"]: row for row in reference.get("results", [])}
    regressions = []
    for row in payload["results"]:
        ref = ref_rows.get(row["n"])
        if ref is None:
            continue
        for key, higher_is_better in CHECKED_RATIOS.items():
            fresh_value = row.get(key)
            ref_value = ref.get(key)
            if fresh_value is None or ref_value is None:
                continue
            if higher_is_better:
                regressed = fresh_value < ref_value / tolerance
            else:
                regressed = fresh_value > ref_value * tolerance
            if regressed:
                regressions.append(
                    f"n={row['n']}: {key} regressed to {fresh_value:.2f} "
                    f"(recorded {ref_value:.2f}, tolerance {tolerance}x)"
                )
    return regressions


def run_check() -> int:
    """The ``--check`` CI gate: fresh smoke numbers vs the committed JSON."""

    if not JSON_PATH.exists():
        print(f"error: no committed reference at {JSON_PATH}; run without --check first")
        return 2
    reference = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    tolerance = float(os.environ.get("REPRO_BENCH_CHECK_TOLERANCE", "2.5"))
    # The committed numbers themselves must honor the protection budget -
    # this is deterministic (no fresh timing involved), so a regenerated
    # reference that busts the paper's overhead claim fails every CI run.
    budget_violations = check_protected_budget(
        reference.get("results", []), "committed reference"
    )
    budget_violations += check_native_floors(
        reference.get("results", []), "committed reference"
    )
    budget_violations += check_telemetry_budget(
        reference.get("results", []), "committed reference"
    )
    if budget_violations:
        print("\nabsolute benchmark budgets FAILED (committed reference):")
        for line in budget_violations:
            print(f"  - {line}")
        return 1
    payload = run(write=False)  # never clobber the reference in check mode
    check(payload)
    compared = [r["n"] for r in payload["results"]
                if any(ref["n"] == r["n"] for ref in reference.get("results", []))]
    regressions = check_against_reference(payload, reference, tolerance)
    if regressions:
        print("\nbenchmark regression gate FAILED:")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(
        f"\nbenchmark regression gate passed: sizes {compared} within "
        f"{tolerance}x of the committed ratios"
    )
    return 0


def test_bench_speedup():
    """Pytest entry point: the compiled paths must beat their baselines."""

    check(run())


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare fresh numbers against the committed BENCH_fft_speed.json "
             "and exit non-zero on a regression (the committed file is not "
             "overwritten)",
    )
    cli_args = parser.parse_args()
    if cli_args.check:
        raise SystemExit(run_check())
    payload = run()
    check(payload)
    budget_violations = check_protected_budget(payload["results"], "fresh run")
    budget_violations += check_native_floors(payload["results"], "fresh run")
    budget_violations += check_telemetry_budget(payload["results"], "fresh run")
    if budget_violations:
        print("\nabsolute benchmark budgets FAILED for the regenerated numbers:")
        for line in budget_violations:
            print(f"  - {line}")
        print("do not commit this BENCH_fft_speed.json")
        raise SystemExit(1)
    worst = min(r["speedup_compiled_vs_recursive"] for r in payload["results"])
    worst_real = min(r["speedup_real_vs_complex_engine"] for r in payload["results"])
    worst_ip = min(r["speedup_inplace_vs_compiled"] for r in payload["results"])
    print(f"worst compiled-vs-recursive speedup: {worst:.2f}x")
    print(f"worst rfft-vs-complex-engine speedup: {worst_real:.2f}x")
    print(f"worst inplace-vs-compiled ratio: {worst_ip:.2f}x")
    native_ratios = [
        r["speedup_native_vs_compiled"]
        for r in payload["results"]
        if r.get("speedup_native_vs_compiled") is not None
    ]
    if native_ratios:
        print(f"worst native-vs-compiled speedup: {min(native_ratios):.2f}x")

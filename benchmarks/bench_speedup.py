"""FFT engine speedup benchmark: compiled stage programs vs the seed paths.

Times, per size, on the same machine and interleaved (so machine-noise
drifts cannot bias the ratios):

* ``recursive`` - the seed-style recursive mixed-radix engine
  (:func:`repro.fftlib.mixed_radix.fft`), i.e. the pre-compiled-path hot
  loop;
* ``compiled``  - ``plan(n, backend="fftlib").execute``: the compiled
  iterative stage program of :mod:`repro.fftlib.executor`;
* ``numpy``     - the pocketfft backend through the same plan interface
  (the compiled-C reference point);
* ``protected`` - the full ``opt-online+mem`` ABFT transform through
  ``repro.plan(n, backend="fftlib")`` (what the paper's overhead figures
  are measured on top of);
* ``threaded`` - the shared-memory six-step program
  (``plan_fft(n, threads=T)``; ``T`` from ``REPRO_BENCH_THREADS``, default
  the pool size) - chunked row/column FFT phases on the worker pool;
* ``rfft_compiled`` - the compiled half-complex real-input path
  (``plan_fft(n, real=True)``: half-length complex program + one repack
  pass);
* ``rfft_complex_engine`` - the same real input pushed through the complex
  compiled engine and truncated to ``n//2 + 1`` bins (what real workloads
  paid before real plans existed);
* ``rfft_numpy`` - ``numpy.fft.rfft`` through the real plan interface.

Machine-readable results are written to ``BENCH_fft_speed.json`` at the
repository root so the perf trajectory of the compiled path is tracked in
version control; a human-readable table lands in ``benchmarks/results/``.

Environment knobs: ``REPRO_BENCH_SIZES`` (default ``65536 262144 1048576``,
up to the paper's 2^20 benchmark regime; sizes below ~2^14 are dominated by
fixed per-stage Python dispatch cost on every engine, which masks the
flop-level ratios the columns track), ``REPRO_BENCH_REPEATS`` (default 7).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

from _harness import env_int, env_int_list, interleaved_best, make_input, save_table

import repro
from repro.fftlib.mixed_radix import fft as recursive_fft
from repro.fftlib.planner import plan_fft
from repro.runtime import default_thread_count
from repro.utils.reporting import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_fft_speed.json"

DEFAULT_SIZES = (65536, 262144, 1048576)


def run() -> dict:
    sizes = env_int_list("REPRO_BENCH_SIZES", DEFAULT_SIZES)
    repeats = env_int("REPRO_BENCH_REPEATS", 7)
    threads = env_int("REPRO_BENCH_THREADS", default_thread_count())

    table = Table(
        "FFT engine speedup (best-of interleaved timings)",
        [
            "n",
            "recursive [ms]",
            "compiled [ms]",
            f"threaded x{threads} [ms]",
            "numpy [ms]",
            "protected [ms]",
            "rfft [ms]",
            "compiled speedup",
            "threaded speedup",
            "protected vs compiled",
            "rfft speedup",
        ],
    )
    results = []
    for n in sizes:
        x = make_input(int(n))
        xr = np.real(x).copy()
        bins = int(n) // 2 + 1
        compiled_plan = plan_fft(int(n), backend="fftlib")
        threaded_plan = plan_fft(int(n), backend="fftlib", threads=threads)
        numpy_plan = plan_fft(int(n), backend="numpy")
        protected_plan = repro.plan(int(n), backend="fftlib")
        real_plan = plan_fft(int(n), backend="fftlib", real=True)
        real_numpy_plan = plan_fft(int(n), backend="numpy", real=True)
        candidates = {
            "recursive": lambda x=x: recursive_fft(x),
            "compiled": lambda x=x, p=compiled_plan: p.execute(x),
            "threaded": lambda x=x, p=threaded_plan: p.execute(x),
            "numpy": lambda x=x, p=numpy_plan: p.execute(x),
            "protected": lambda x=x, p=protected_plan: p.execute(x),
            "rfft_compiled": lambda xr=xr, p=real_plan: p.execute(xr),
            # the pre-real-plan cost of a real workload: complexify, run the
            # compiled complex engine, keep the non-redundant bins
            "rfft_complex_engine": lambda xr=xr, p=compiled_plan, b=bins: p.execute(
                xr.astype(np.complex128)
            )[:b],
            "rfft_numpy": lambda xr=xr, p=real_numpy_plan: p.execute(xr),
        }
        # inner=4: one cache re-warm call + three steady-state calls per
        # sample (eight candidates share the cache round-robin).
        best = interleaved_best(candidates, repeats=repeats, warmup=1, inner=4)
        speedup = best["recursive"] / best["compiled"]
        threaded_speedup = best["compiled"] / best["threaded"]
        protected_ratio = best["protected"] / best["compiled"]
        real_speedup = best["rfft_complex_engine"] / best["rfft_compiled"]
        results.append(
            {
                "n": int(n),
                "threads": int(threads),
                "seconds": {name: float(t) for name, t in best.items()},
                "speedup_compiled_vs_recursive": float(speedup),
                "speedup_numpy_vs_recursive": float(best["recursive"] / best["numpy"]),
                "speedup_protected_vs_recursive": float(best["recursive"] / best["protected"]),
                "protected_over_compiled_ratio": float(protected_ratio),
                "speedup_threaded_vs_compiled": float(threaded_speedup),
                "speedup_real_vs_complex_engine": float(real_speedup),
                "speedup_real_vs_numpy_rfft": float(best["rfft_numpy"] / best["rfft_compiled"]),
            }
        )
        table.add_row(
            str(n),
            f"{best['recursive'] * 1e3:.3f}",
            f"{best['compiled'] * 1e3:.3f}",
            f"{best['threaded'] * 1e3:.3f}",
            f"{best['numpy'] * 1e3:.3f}",
            f"{best['protected'] * 1e3:.3f}",
            f"{best['rfft_compiled'] * 1e3:.3f}",
            f"{speedup:.2f}x",
            f"{threaded_speedup:.2f}x",
            f"{protected_ratio:.2f}x",
            f"{real_speedup:.2f}x",
        )

    payload = {
        "benchmark": "bench_speedup",
        "description": (
            "plan(n, backend='fftlib').execute (compiled stage programs) vs the "
            "seed-style recursive mixed-radix engine, the numpy backend, and the "
            "fully protected opt-online+mem plan; threaded column is the "
            "shared-memory six-step program on REPRO_BENCH_THREADS workers; "
            "rfft_* columns compare the compiled half-complex real path against "
            "the complex engine on the same real input and numpy.fft.rfft"
        ),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cores": default_thread_count(),
        },
        "repeats": repeats,
        "threads": int(threads),
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_table(table, "fft_speedup.txt")
    print(f"\nwrote {JSON_PATH}")
    return payload


def check(payload: dict) -> None:
    """Assert the compiled paths beat their baselines.

    Enforced by both the pytest entry point and the ``__main__`` path CI's
    bench smoke actually executes, so a regression fails the run either way.
    """

    for row in payload["results"]:
        assert row["speedup_compiled_vs_recursive"] > 1.0, row
        # Below ~2^14 both engines are dispatch-bound and the half-complex
        # flop advantage sits inside the noise band; only assert where the
        # ratio is meaningful.
        if row["n"] >= 16384:
            assert row["speedup_real_vs_complex_engine"] > 1.0, row
        # The threaded six-step must beat the serial compiled program at the
        # paper's 2^20 regime, but only where real parallelism exists: at
        # least 4 cores and 2 pool workers (a 1-core CI container runs the
        # chunks inline and can only measure the chunking overhead).
        if row["n"] >= 2**20 and default_thread_count() >= 4 and row["threads"] >= 2:
            assert row["speedup_threaded_vs_compiled"] > 1.0, row


def test_bench_speedup():
    """Pytest entry point: the compiled paths must beat their baselines."""

    check(run())


if __name__ == "__main__":
    payload = run()
    check(payload)
    worst = min(r["speedup_compiled_vs_recursive"] for r in payload["results"])
    worst_real = min(r["speedup_real_vs_complex_engine"] for r in payload["results"])
    print(f"worst compiled-vs-recursive speedup: {worst:.2f}x")
    print(f"worst rfft-vs-complex-engine speedup: {worst_real:.2f}x")

"""Table 3: parallel weak scaling of opt-FT-FFTW with injected faults.

Same fault scenarios as Table 2 (0 / 2m / 2c / 2m+2c), but the rank count is
fixed and the problem size grows (the paper uses p = 256 and N = 2^31-2^34).
The reproducible claim is again that the fault rows coincide with the
fault-free row while the times grow roughly linearly with N.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np
import pytest

from _harness import interleaved_best, make_input, parallel_ranks, relative_error, save_table
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.parallel import ParallelFTFFT
from repro.utils.reporting import Table

#: Local-size multipliers standing in for the paper's 2^31 ... 2^34 sweep.
SCALES = (1, 2, 4, 8)


def _scenarios() -> Dict[str, Callable[[], FaultInjector]]:
    return {
        "0": lambda: None,
        "2m": lambda: (
            FaultInjector()
            .arm_memory(FaultSite.COMM_BLOCK, rank=0, magnitude=20.0)
            .arm_memory(FaultSite.COMM_BLOCK, rank=1, magnitude=10.0)
        ),
        "2c": lambda: (
            FaultInjector()
            .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=0, magnitude=9.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=4.0)
        ),
        "2m+2c": lambda: (
            FaultInjector()
            .arm_memory(FaultSite.COMM_BLOCK, rank=0, magnitude=20.0)
            .arm_memory(FaultSite.COMM_BLOCK, rank=1, magnitude=10.0)
            .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=2, magnitude=9.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=4.0)
        ),
    }


def _ranks() -> int:
    return parallel_ranks()[-1]


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("scenario", list(_scenarios().keys()))
def test_table3_row_timing(benchmark, scale, scenario):
    ranks = _ranks()
    n = 1024 * ranks * scale
    x = make_input(n)
    reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
    scheme = ParallelFTFFT(n, ranks, overlap=True)
    factory = _scenarios()[scenario]
    scheme.execute(x)

    execution = benchmark(lambda: scheme.execute(x, factory()))
    assert relative_error(reference, execution.output) < 1e-8
    benchmark.extra_info.update({"n": n, "scenario": scenario})


def test_table3_weak_scaling_fault_table(benchmark):
    def run() -> Table:
        ranks = _ranks()
        scenarios = _scenarios()
        sizes = [1024 * ranks * scale for scale in SCALES]
        table = Table(
            f"Table 3 - opt-FT-FFTW weak scaling with faults (wall seconds, p={ranks})",
            ["scenario", *[f"N=2^{n.bit_length() - 1}" for n in sizes]],
            digits=4,
        )
        grid = {name: [] for name in scenarios}
        for n in sizes:
            x = make_input(n)
            reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
            scheme = ParallelFTFFT(n, ranks, overlap=True)

            def make_runner(factory):
                def run_once():
                    execution = scheme.execute(x, factory())
                    assert relative_error(reference, execution.output) < 1e-8
                    return execution

                return run_once

            timings = interleaved_best(
                {name: make_runner(factory) for name, factory in scenarios.items()}, repeats=2
            )
            for name in scenarios:
                grid[name].append(timings[name])
        for name in scenarios:
            table.add_row(f"opt-FT-FFTW ({name})", *grid[name])
        virtual = {
            n: ParallelFTFFT(n, ranks, overlap=True).predict_timeline().elapsed for n in sizes
        }
        table.add_note(
            "virtual time (identical across fault scenarios - recovery cost is negligible): "
            + ", ".join(f"2^{n.bit_length() - 1}: {t:.4f}s" for n, t in virtual.items())
        )
        table.add_note("paper (p=256): 5.45 / 10.35 / 22.45 / 45.63 s for N=2^31..2^34, identical across fault rows")
        table.add_note("shape to check: columns roughly double left to right; rows coincide within noise")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "table3.txt").exists()

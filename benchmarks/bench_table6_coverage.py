"""Table 6: distribution of output errors under random high-bit flips.

1000 independent runs in the paper (configurable here): each run flips one
random high bit of one random element of the input, intermediate or output
array of a 2^25-point transform.  Three protection levels are compared - no
correction, the offline scheme, and the online scheme - and the table
reports the fraction of runs whose relative output error exceeds 1e-6, 1e-8,
1e-10 and 1e-12, plus the fraction of runs whose correction failed outright
("Uncorrected").
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from _harness import campaign_trials, env_int, plan_for, save_table
from repro.analysis.metrics import error_distribution_row
from repro.faults.campaign import CoverageCampaign
from repro.faults.models import FaultKind, FaultSite, FaultSpec
from repro.utils.reporting import Table

BOUNDS = (1e-6, 1e-8, 1e-10, 1e-12)
SITES = [FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT]
SCHEMES = [("No Correction", "fftw"), ("Offline", "opt-offline+mem"), ("Online", "opt-online+mem")]


def _size() -> int:
    return env_int("REPRO_BENCH_COVERAGE_N", 2**12)


def _run_campaign(scheme_name: str, trials: int):
    n = _size()
    scheme = plan_for(scheme_name, n)

    def make_input(trial, rng):
        return rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)

    def make_faults(trial, rng):
        return [
            FaultSpec(
                site=SITES[trial % len(SITES)],
                kind=FaultKind.BIT_FLIP,
                bit=int(rng.integers(50, 63)),
                element=int(rng.integers(0, n)),
                imaginary=bool(rng.integers(0, 2)),
            )
        ]

    def run_trial(x, injector):
        result = scheme.execute(x, injector)
        return (
            result.output,
            result.report.detected,
            result.report.corrected,
            result.report.has_uncorrectable,
        )

    campaign = CoverageCampaign(
        make_input=make_input,
        run_trial=run_trial,
        reference=lambda x: np.fft.fft(x),  # reprolint: fft-ok - raw reference oracle
        make_faults=make_faults,
        seed=20171112,
    )
    return campaign.run(trials)


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_REQUIRE_FULL_COVERAGE") != "1",
    reason="nightly-only strict gate (set REPRO_BENCH_REQUIRE_FULL_COVERAGE=1)",
)
@pytest.mark.parametrize(
    "label,scheme",
    [s for s in SCHEMES if s[1] != "fftw"],
    ids=[s[0] for s in SCHEMES if s[1] != "fftw"],
)
def test_table6_full_coverage(label, scheme):
    """Nightly gate: 100% detection AND correction on the exercised sites.

    The campaign's fault model is one random *high*-bit flip (bits 50-62:
    high mantissa or exponent) per trial - always far above the detection
    thresholds - struck at the input, intermediate, or output site.  Both
    protected schemes must detect every one, correct every one, and leave
    the output within 1e-8 relative error; any silent coverage regression
    (a weakened threshold, a broken locating pair, a skipped verification)
    fails the nightly run even though the statistical Table 6 shape
    assertion of the regular suite would still pass.
    """

    trials = campaign_trials()
    result = _run_campaign(scheme, trials)
    outcomes = [o for o in result.outcomes if o.injected > 0]
    assert outcomes, "campaign injected no faults"
    undetected = [i for i, o in enumerate(outcomes) if not o.detected]
    assert not undetected, f"{label}: trials {undetected} went undetected"
    uncorrected = [i for i, o in enumerate(outcomes) if o.uncorrected]
    assert not uncorrected, f"{label}: trials {uncorrected} were not corrected"
    dirty = [i for i, o in enumerate(outcomes) if o.relative_error > 1e-8]
    assert not dirty, f"{label}: trials {dirty} left residual output error"


@pytest.mark.parametrize("label,scheme", SCHEMES, ids=[s[0] for s in SCHEMES])
def test_table6_campaign(benchmark, label, scheme):
    """Benchmark a small slice of the campaign per scheme (keeps rounds cheap)."""

    result = benchmark.pedantic(
        lambda: _run_campaign(scheme, max(10, campaign_trials() // 10)), rounds=1, iterations=1
    )
    benchmark.extra_info.update({"scheme": label, **result.summary()})


def test_table6_coverage_table(benchmark):
    def run() -> Table:
        trials = campaign_trials()
        n = _size()
        table = Table(
            f"Table 6 - relative output error distribution under one random high-bit flip "
            f"({trials} runs, N=2^{n.bit_length() - 1})",
            ["scheme", "Uncorrected", *[f"> {b:g}" for b in BOUNDS]],
            digits=3,
        )
        rows = {}
        for label, scheme in SCHEMES:
            result = _run_campaign(scheme, trials)
            row = error_distribution_row(
                [o.relative_error for o in result.outcomes],
                uncorrected=[o.uncorrected for o in result.outcomes],
                bounds=BOUNDS,
            )
            rows[label] = row
            table.add_row(label, row["uncorrected"], *[row[f"> {b:g}"] for b in BOUNDS])
        table.add_note("paper: NoCorrection 73-84% above the bounds; Offline 4-36%; Online 2.5-4%")
        table.add_note("shape to check: Online << Offline << NoCorrection at every bound")
        # Headline shape assertion.
        assert rows["Online"]["> 1e-10"] <= rows["Offline"]["> 1e-10"] <= rows["No Correction"]["> 1e-10"]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "table6.txt").exists()

"""Figure 7(b): sequential overhead with computational *and* memory FT.

Same methodology as Fig. 7(a); the schemes additionally generate, carry and
verify the locating memory checksums (Section 3.2 / Fig. 2 vs. the optimized
hierarchy of Fig. 3).
"""

from __future__ import annotations

import pytest

from _harness import interleaved_overhead, make_input, plan_for, save_table, seq_sizes
from repro.perfmodel import predict_sequential
from repro.utils.reporting import Table

#: Figure 7(b) bars, in paper order (all schemes include memory FT except the
#: baseline).
SCHEMES = ["fftw", "offline+mem", "opt-offline+mem", "online+mem", "opt-online+mem"]


@pytest.mark.parametrize("n", seq_sizes())
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig7b_scheme_timing(benchmark, scheme, n):
    x = make_input(n)
    instance = plan_for(scheme, n)
    instance.execute(x)
    result = benchmark(instance.execute, x)
    assert result.output.shape == (n,)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["n"] = n


def test_fig7b_overhead_table(benchmark):
    def run():
        table = Table(
            "Fig. 7(b) - sequential overhead, computational + memory FT (percent over plain FFT)",
            ["N", "Offline", "Opt-Offline", "Online", "Opt-Online"],
            digits=1,
        )
        for n in seq_sizes():
            x = make_input(n)
            schemes = {name: plan_for(name, n) for name in SCHEMES}
            overhead = interleaved_overhead(
                "fftw",
                {name: (lambda s=s, x=x: s.execute(x)) for name, s in schemes.items()},
                repeats=9,
            )
            table.add_row(
                f"2^{n.bit_length() - 1}",
                overhead["offline+mem"],
                overhead["opt-offline+mem"],
                overhead["online+mem"],
                overhead["opt-online+mem"],
            )
        for n_exp in (25, 28):
            preds = {p.scheme: p for p in predict_sequential(2**n_exp)}
            table.add_row(
                f"2^{n_exp} (model)",
                None,
                preds["opt-offline+mem"].overhead_percent,
                None,
                preds["opt-online+mem"].overhead_percent,
            )
        table.add_note("paper: Offline ~100%, Opt-Offline ~35%, Online ~42%, Opt-Online ~36%")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "fig7b.txt").exists()

"""Table 1: sequential execution time when faults are injected.

The paper compares, for N = 2^25 ... 2^28:

* plain FFTW (no faults),
* the optimized offline scheme, fault free and with one memory fault
  (which forces a full re-execution and roughly doubles the runtime), and
* the optimized online scheme, fault free and with 1c, 1m+1c and 1m+2c
  faults (whose recovery recomputes only sqrt(N)-sized sub-FFTs and is
  therefore almost free).

The harness reproduces the same rows at the configured sizes and records
the per-configuration timings with pytest-benchmark; the rendered table is
written to ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np
import pytest

from _harness import interleaved_best, make_input, plan_for, relative_error, save_table, seq_sizes
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.utils.reporting import Table


def _injector_factories() -> Dict[str, Callable[[], FaultInjector]]:
    """The Table 1 fault scenarios (fresh injector per execution)."""

    return {
        "0": lambda: None,
        "1c": lambda: FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, index=3, magnitude=5.0),
        "1m": lambda: FaultInjector().arm_memory(FaultSite.INPUT, magnitude=3.0),
        "1m+1c": lambda: (
            FaultInjector()
            .arm_memory(FaultSite.INTERMEDIATE, magnitude=3.0)
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=7, magnitude=5.0)
        ),
        "1m+2c": lambda: (
            FaultInjector()
            .arm_memory(FaultSite.INTERMEDIATE, magnitude=3.0)
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=7, magnitude=5.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, index=11, magnitude=2.0)
        ),
    }


#: Table 1 rows: (label, scheme, fault scenario)
ROWS = [
    ("FFTW (0)", "fftw", "0"),
    ("Opt-Offline (0)", "opt-offline+mem", "0"),
    ("Opt-Offline (1m)", "opt-offline+mem", "1m"),
    ("Opt-Online (0)", "opt-online+mem", "0"),
    ("Opt-Online (1c)", "opt-online+mem", "1c"),
    ("Opt-Online (1m+1c)", "opt-online+mem", "1m+1c"),
    ("Opt-Online (1m+2c)", "opt-online+mem", "1m+2c"),
]


@pytest.mark.parametrize("label,scheme,scenario", ROWS, ids=[r[0] for r in ROWS])
def test_table1_row_timing(benchmark, label, scheme, scenario):
    """Time one Table 1 row at the smallest configured size."""

    n = seq_sizes()[0]
    x = make_input(n)
    reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
    instance = plan_for(scheme, n)
    factory = _injector_factories()[scenario]
    instance.execute(x)  # warm-up without faults

    def run():
        injector = factory()
        return instance.execute(x, injector)

    result = benchmark(run)
    if scheme != "fftw":
        assert relative_error(reference, result.output) < 1e-8
    benchmark.extra_info.update({"row": label, "n": n})


def test_table1_execution_time_table(benchmark):
    """Regenerate the full Table 1 grid (rows x sizes)."""

    def run() -> Table:
        factories = _injector_factories()
        table = Table(
            "Table 1 - sequential execution time (seconds) with injected faults",
            ["configuration", *[f"N=2^{n.bit_length() - 1}" for n in seq_sizes()]],
            digits=4,
        )
        grid: Dict[str, List[float]] = {label: [] for label, _, _ in ROWS}
        for n in seq_sizes():
            x = make_input(n)
            reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
            schemes = {name: plan_for(name, n) for name in {r[1] for r in ROWS}}

            def make_runner(scheme_name: str, scenario: str):
                instance = schemes[scheme_name]
                factory = factories[scenario]

                def run_once():
                    result = instance.execute(x, factory())
                    if scheme_name != "fftw":
                        assert relative_error(reference, result.output) < 1e-8
                    return result

                return run_once

            callables = {label: make_runner(scheme, scenario) for label, scheme, scenario in ROWS}
            timings = interleaved_best(callables, repeats=3)
            for label, _, _ in ROWS:
                grid[label].append(timings[label])
        for label, _, _ in ROWS:
            table.add_row(label, *grid[label])
        table.add_note("paper (N=2^25): FFTW 3.71s, Opt-Offline 4.88/9.63s (0/1m), Opt-Online 4.64-4.86s (0..1m+2c)")
        table.add_note("shape to check: offline with a fault ~2x its fault-free time; online rows stay flat")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "table1.txt").exists()

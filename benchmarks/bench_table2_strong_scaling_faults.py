"""Table 2: parallel strong scaling of opt-FT-FFTW with injected faults.

The paper injects 2 memory faults (2m), 2 computational faults (2c) and both
(2m+2c) into the protected parallel transform at p = 128 ... 1024 and shows
the execution time is indistinguishable from the fault-free run - recovery
only re-executes tiny sub-FFTs or repairs single elements.

The harness executes the simulated transform at the configured rank counts,
times each scenario with pytest-benchmark, and writes both wall-clock and
virtual-time grids to ``benchmarks/results/table2.txt``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np
import pytest

from _harness import interleaved_best, make_input, parallel_ranks, relative_error, save_table
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.parallel import ParallelFTFFT
from repro.utils.reporting import Table


def _scenarios() -> Dict[str, Callable[[], FaultInjector]]:
    return {
        "0": lambda: None,
        "2m": lambda: (
            FaultInjector()
            .arm_memory(FaultSite.COMM_BLOCK, rank=0, magnitude=20.0)
            .arm_memory(FaultSite.COMM_BLOCK, rank=1, magnitude=10.0)
        ),
        "2c": lambda: (
            FaultInjector()
            .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=0, magnitude=9.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=4.0)
        ),
        "2m+2c": lambda: (
            FaultInjector()
            .arm_memory(FaultSite.COMM_BLOCK, rank=0, magnitude=20.0)
            .arm_memory(FaultSite.COMM_BLOCK, rank=1, magnitude=10.0)
            .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=2, magnitude=9.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=4.0)
        ),
    }


@pytest.mark.parametrize("ranks", parallel_ranks())
@pytest.mark.parametrize("scenario", list(_scenarios().keys()))
def test_table2_row_timing(benchmark, ranks, scenario):
    n = 4096 * ranks
    x = make_input(n)
    reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
    scheme = ParallelFTFFT(n, ranks, overlap=True)
    factory = _scenarios()[scenario]
    scheme.execute(x)  # warm-up

    def run():
        return scheme.execute(x, factory())

    execution = benchmark(run)
    assert relative_error(reference, execution.output) < 1e-8
    benchmark.extra_info.update({"ranks": ranks, "scenario": scenario})


def test_table2_strong_scaling_fault_table(benchmark):
    def run() -> Table:
        scenarios = _scenarios()
        table = Table(
            "Table 2 - opt-FT-FFTW strong scaling with faults (wall seconds of the simulated run)",
            ["scenario", *[f"p={p}" for p in parallel_ranks()]],
            digits=4,
        )
        grid = {name: [] for name in scenarios}
        for ranks in parallel_ranks():
            n = 4096 * ranks
            x = make_input(n)
            reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
            scheme = ParallelFTFFT(n, ranks, overlap=True)

            def make_runner(factory):
                def run_once():
                    execution = scheme.execute(x, factory())
                    assert relative_error(reference, execution.output) < 1e-8
                    return execution

                return run_once

            timings = interleaved_best(
                {name: make_runner(factory) for name, factory in scenarios.items()}, repeats=2
            )
            for name in scenarios:
                grid[name].append(timings[name])
        for name in scenarios:
            table.add_row(f"opt-FT-FFTW ({name})", *grid[name])
        virtual = {
            ranks: ParallelFTFFT(4096 * ranks, ranks, overlap=True).predict_timeline().elapsed
            for ranks in parallel_ranks()
        }
        table.add_note(
            "virtual time (identical across fault scenarios - recovery cost is negligible): "
            + ", ".join(f"p={p}: {t:.4f}s" for p, t in virtual.items())
        )
        table.add_note("paper: all rows within ~1% of the fault-free row at every p (7.8-12.6 s)")
        table.add_note("shape to check: the fault rows do not grow relative to the fault-free row")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "table2.txt").exists()

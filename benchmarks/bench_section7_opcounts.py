"""Section 7 companion: model validation and optimization ablations.

Not a table/figure of its own in the paper, but DESIGN.md calls out the
individual Section 4 optimizations as ablation targets:

* how much each optimization (modified checksums, verification postponing,
  incremental generation, contiguous buffering) contributes to the measured
  cost of the optimized online scheme, and
* how the Section 7 operation counts compare with the measured overhead of
  this implementation at the benchmark sizes.
"""

from __future__ import annotations

import pytest

from _harness import (
    bench_backend,
    interleaved_overhead,
    make_input,
    plan_for,
    save_table,
    seq_sizes,
)
from repro.core import OptimizationFlags
from repro.core.optimized import OptimizedOnlineABFT
from repro.perfmodel import offline_scheme_ops, online_scheme_ops
from repro.utils.reporting import Table

ABLATIONS = {
    "all optimizations": OptimizationFlags(),
    "no modified checksums": OptimizationFlags(modified_checksums=False),
    "no postponed verification": OptimizationFlags(postpone_verification=False),
    "no incremental checksums": OptimizationFlags(incremental_checksums=False),
    "no contiguous buffer": OptimizationFlags(contiguous_buffer=False),
    "none (naive flags)": OptimizationFlags.all_off(),
}


@pytest.mark.parametrize("label", list(ABLATIONS.keys()))
def test_ablation_timing(benchmark, label):
    """Time the optimized online scheme with one optimization disabled."""

    n = seq_sizes()[0]
    x = make_input(n)
    scheme = OptimizedOnlineABFT(n, memory_ft=True, flags=ABLATIONS[label], backend=bench_backend())
    scheme.execute(x)
    result = benchmark(scheme.execute, x)
    assert not result.report.detected
    benchmark.extra_info["ablation"] = label


def test_ablation_table(benchmark):
    def run() -> Table:
        n = seq_sizes()[-1]
        x = make_input(n)
        baseline = plan_for("fftw", n)
        schemes = {"fftw": baseline}
        for label, flags in ABLATIONS.items():
            schemes[label] = OptimizedOnlineABFT(
                n, memory_ft=True, flags=flags, backend=bench_backend()
            )
        overhead = interleaved_overhead(
            "fftw", {name: (lambda s=s: s.execute(x)) for name, s in schemes.items()}, repeats=9
        )
        table = Table(
            f"Ablation of the Section 4 optimizations (overhead % over plain FFT, N=2^{n.bit_length() - 1})",
            ["configuration", "overhead %"],
            digits=1,
        )
        for label in ABLATIONS:
            table.add_row(label, overhead[label])
        table.add_note("expected: every disabled optimization costs at least as much as 'all optimizations'")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "ablations.txt").exists()


def test_model_vs_measured_table(benchmark):
    def run() -> Table:
        table = Table(
            "Section 7 operation-count model vs. measured overhead",
            ["scheme", "model % (2^25)", "model % (bench N)", "measured %"],
            digits=1,
        )
        n = seq_sizes()[-1]
        x = make_input(n)
        names = ["opt-offline", "opt-online", "opt-offline+mem", "opt-online+mem"]
        schemes = {"fftw": plan_for("fftw", n)}
        schemes.update({name: plan_for(name, n) for name in names})
        overhead = interleaved_overhead(
            "fftw", {name: (lambda s=s: s.execute(x)) for name, s in schemes.items()}, repeats=9
        )
        models = {
            "opt-offline": offline_scheme_ops,
            "opt-online": online_scheme_ops,
            "opt-offline+mem": lambda size: offline_scheme_ops(size, memory_ft=True),
            "opt-online+mem": lambda size: online_scheme_ops(size, memory_ft=True),
        }
        for name in names:
            table.add_row(
                name,
                100.0 * models[name](2**25).fault_free_ratio,
                100.0 * models[name](n).fault_free_ratio,
                overhead[name],
            )
        table.add_note("the model predicts C/FFTW-level overheads; measured values reflect the NumPy substrate")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "section7_model_vs_measured.txt").exists()

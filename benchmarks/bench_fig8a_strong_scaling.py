"""Figure 8(a): parallel strong scaling (fixed N, varying rank count).

The paper runs FFTW / FT-FFTW / opt-FFTW / opt-FT-FFTW on TIANHE-2 with
N = 2^26 over 128-1024 cores.  This harness reports:

* the virtual-time predictions of the cost model at the paper's sizes and
  rank counts (the reproducible *shape*: opt-FT-FFTW tracks opt-FFTW, plain
  FT-FFTW pays the un-hidden checksum work), and
* numerically executed simulated runs (all ranks in one process) at
  laptop-scale sizes, timed with pytest-benchmark, to confirm the protected
  transforms remain correct at every rank count.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import make_input, parallel_ranks, relative_error, save_table
from repro.parallel import ParallelFFT, ParallelFTFFT
from repro.utils.reporting import Table

#: The four Fig. 8 configurations.
CONFIGS = ["FFTW", "FT-FFTW", "opt-FFTW", "opt-FT-FFTW"]


def _build(config: str, n: int, ranks: int):
    if config == "FFTW":
        return ParallelFFT(n, ranks)
    if config == "opt-FFTW":
        return ParallelFFT(n, ranks, overlap_twiddle=True)
    if config == "FT-FFTW":
        return ParallelFTFFT(n, ranks, overlap=False)
    if config == "opt-FT-FFTW":
        return ParallelFTFFT(n, ranks, overlap=True)
    raise KeyError(config)


@pytest.mark.parametrize("ranks", parallel_ranks())
@pytest.mark.parametrize("config", CONFIGS)
def test_fig8a_simulated_execution(benchmark, config, ranks):
    """Numerically execute the simulated parallel transform (correctness + wall time)."""

    n = 4096 * ranks  # keeps every rank's local FFT at a meaningful size
    x = make_input(n)
    reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
    scheme = _build(config, n, ranks)
    execution = benchmark(scheme.execute, x)
    assert relative_error(reference, execution.output) < 1e-8
    benchmark.extra_info.update({"config": config, "ranks": ranks, "virtual_time": execution.virtual_time})


def test_fig8a_strong_scaling_table(benchmark):
    """Predicted virtual times at the paper's scale (N = 2^26, p = 128..1024)."""

    def run() -> Table:
        n = 2**26
        table = Table(
            "Fig. 8(a) - strong scaling, predicted virtual time (seconds), N=2^26",
            ["cores", *CONFIGS],
            digits=3,
        )
        for ranks in (128, 256, 512, 1024):
            row = [f"p={ranks}"]
            for config in CONFIGS:
                row.append(_build(config, n, ranks).predict_timeline().elapsed)
            table.add_row(*row)
        table.add_note("shape to check: FT-FFTW > FFTW; opt-FT-FFTW close to opt-FFTW (overlap hides FT work)")
        table.add_note("paper Table 2 reports 7.8-12.5 s for opt-FT-FFTW; the cost model reproduces ordering, not absolute seconds")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "fig8a.txt").exists()

"""Shared plumbing for the benchmark harnesses.

Every ``bench_*.py`` file regenerates one table or figure of the paper.  The
helpers here provide:

* environment-variable configuration (so the harnesses can be scaled up or
  down without editing code),
* interleaved best-of-N timing (the schemes are timed round-robin so that
  machine noise drifts do not bias the overhead percentages), and
* result persistence - each harness renders its table with
  :class:`repro.utils.reporting.Table` and saves it under
  ``benchmarks/results/`` so the regenerated rows survive pytest's output
  capturing.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import FTConfig
from repro.core.ftplan import FTPlan, plan
from repro.utils.reporting import Table

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Default problem sizes for the sequential benchmarks (the paper uses
#: 2^25 - 2^28; pure Python needs smaller defaults, and sizes much below
#: 2^16 make the overhead percentages timer-noise bound).
DEFAULT_SEQ_SIZES = (2**16, 2**17)
#: Default simulated rank counts for the parallel benchmarks (paper: 128-1024).
DEFAULT_RANKS = (4, 8, 16)
#: Default trial counts for statistical campaigns (paper: 1000).
DEFAULT_TRIALS = 120


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def env_int_list(name: str, default: Sequence[int]) -> List[int]:
    value = os.environ.get(name)
    if not value:
        return list(default)
    return [int(part) for part in value.replace(",", " ").split()]


def seq_sizes() -> List[int]:
    """Sequential benchmark sizes (override with ``REPRO_BENCH_SIZES``)."""

    return env_int_list("REPRO_BENCH_SIZES", DEFAULT_SEQ_SIZES)


def parallel_ranks() -> List[int]:
    """Simulated rank counts (override with ``REPRO_BENCH_RANKS``)."""

    return env_int_list("REPRO_BENCH_RANKS", DEFAULT_RANKS)


def campaign_trials() -> int:
    """Trial count for statistical campaigns (override with ``REPRO_BENCH_TRIALS``)."""

    return env_int("REPRO_BENCH_TRIALS", DEFAULT_TRIALS)


def bench_backend() -> Optional[str]:
    """Sub-FFT backend for the benchmarks (override with ``REPRO_BENCH_BACKEND``).

    ``None`` (the default) keeps the process-wide default backend; setting
    ``REPRO_BENCH_BACKEND=numpy`` reruns every harness on pocketfft, which
    isolates checksum overhead from the pure-Python FFT substrate.
    """

    value = os.environ.get("REPRO_BENCH_BACKEND")
    return value or None


def plan_for(name: str, n: int, backend: Optional[str] = None) -> FTPlan:
    """A cached :class:`FTPlan` for a legacy scheme name.

    All harnesses create their schemes through this helper so they exercise
    the public plan API (and its wisdom cache) exactly as users do, and so
    one environment variable switches every benchmark's backend.
    """

    config = FTConfig.from_name(name, backend=backend or bench_backend())
    return plan(n, config)


def make_input(n: int, seed: int = 20170712) -> np.ndarray:
    """The paper's default input: i.i.d. U(-1, 1) real and imaginary parts."""

    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, n) + 1j * rng.uniform(-1.0, 1.0, n)


def interleaved_best(
    callables: Dict[str, Callable[[], object]],
    *,
    repeats: int = 3,
    warmup: int = 1,
    inner: int = 1,
    estimator: str = "mean",
) -> Dict[str, float]:
    """Best-of-``repeats`` wall time per labelled callable, measured round-robin.

    Interleaving the candidates keeps slow drifts of the host machine (other
    tenants, thermal throttling) from systematically favouring whichever
    scheme happened to run last, which matters because the overhead
    percentages of Fig. 7 are differences of nearly equal quantities.

    With ``inner > 1`` each sample makes one *untimed* call that re-warms
    the caches the previous candidate evicted, then records the mean of the
    remaining ``inner - 1`` calls: steady-state throughput, which is what
    bandwidth-bound candidates (e.g. the packed real path) are actually
    compared on.

    ``estimator="min"`` times each of those calls individually and records
    the fastest one instead of their mean.  Ratios of near-equal candidates
    guarded by tight absolute budgets want this: the mean-of-a-few estimator
    carries each candidate's own noise variance into the ratio (the noisier
    candidate's best *sample* stays further above its floor), while
    floor-to-floor minima compare the candidates' actual steady states.
    """

    for _ in range(warmup):
        for fn in callables.values():
            fn()
    times: Dict[str, List[float]] = {name: [] for name in callables}
    timed_calls = inner - 1 if inner > 1 else 1
    use_min = estimator == "min" and timed_calls > 1
    for _ in range(repeats):
        for name, fn in callables.items():
            if inner > 1:
                fn()  # cache re-warm, excluded from the sample
            if use_min:
                best_call = float("inf")
                for _ in range(timed_calls):
                    start = time.perf_counter()
                    fn()
                    best_call = min(best_call, time.perf_counter() - start)
                times[name].append(best_call)
            else:
                start = time.perf_counter()
                for _ in range(timed_calls):
                    fn()
                times[name].append((time.perf_counter() - start) / timed_calls)
    return {name: min(values) for name, values in times.items()}


def interleaved_overhead(
    baseline: str,
    callables: Dict[str, Callable[[], object]],
    *,
    repeats: int = 9,
    warmup: int = 1,
) -> Dict[str, float]:
    """Overhead (percent) of each callable relative to ``baseline``.

    All candidates are timed round-robin (see :func:`interleaved_best`) and
    the overhead is computed from the per-scheme minima.
    """

    if baseline not in callables:
        raise KeyError(f"baseline {baseline!r} missing from callables")
    # The development hosts for this reproduction show periodic external
    # interference (a rotating ~30 ms stall that lands on whichever scheme
    # happens to be executing).  The minimum over many interleaved rounds is
    # the estimator that survives it: with enough rounds every scheme gets at
    # least one undisturbed slot, whereas means/medians inherit the stall.
    best = interleaved_best(callables, repeats=max(repeats, 7), warmup=warmup)
    base = best[baseline]
    return {
        name: 100.0 * (value - base) / base
        for name, value in best.items()
        if name != baseline
    }


def save_table(table: Table, filename: str) -> Path:
    """Render ``table`` and persist it under ``benchmarks/results/``."""

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(table.render() + "\n", encoding="utf-8")
    # Also echo to stdout; visible with ``pytest -s`` and harmless otherwise.
    print()
    print(table.render())
    return path


def relative_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    return float(np.max(np.abs(candidate - reference)) / np.max(np.abs(reference)))

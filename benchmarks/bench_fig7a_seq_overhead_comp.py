"""Figure 7(a): sequential overhead, computational fault tolerance only.

The paper's figure plots the fault-free overhead (relative to plain FFTW) of
four schemes - naive offline, optimized offline, naive online
("CFTO-Online") and optimized online - for N = 2^25 ... 2^28.

This harness reproduces the figure in two ways:

* each scheme is timed with pytest-benchmark at the configured sizes (the
  relative ordering of the bars can be read from the benchmark table), and
* a summary entry measures all schemes interleaved, computes the overhead
  percentages against the plain baseline, and writes the Fig. 7(a)-style
  table to ``benchmarks/results/fig7a.txt`` together with the Section 7
  model's prediction at the paper's sizes.
"""

from __future__ import annotations

import pytest

from _harness import interleaved_overhead, make_input, plan_for, save_table, seq_sizes
from repro.perfmodel import predict_sequential
from repro.utils.reporting import Table

#: Figure 7(a) bars, in paper order.
SCHEMES = ["fftw", "offline", "opt-offline", "online", "opt-online"]


@pytest.mark.parametrize("n", seq_sizes())
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig7a_scheme_timing(benchmark, scheme, n):
    """Raw per-scheme timings (one bar of Fig. 7(a) per parameter point)."""

    x = make_input(n)
    instance = plan_for(scheme, n)
    instance.execute(x)  # warm plan/twiddle caches outside the measurement
    result = benchmark(instance.execute, x)
    assert result.output.shape == (n,)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["n"] = n


def test_fig7a_overhead_table(benchmark):
    """Regenerate the Fig. 7(a) rows (measured + Section 7 model)."""

    def run() -> Table:
        table = Table(
            "Fig. 7(a) - sequential overhead, computational FT only (percent over plain FFT)",
            ["N", "Offline", "Opt-Offline", "CFTO-Online", "Opt-Online"],
            digits=1,
        )
        for n in seq_sizes():
            x = make_input(n)
            schemes = {name: plan_for(name, n) for name in SCHEMES}
            overhead = interleaved_overhead(
                "fftw",
                {name: (lambda s=s, x=x: s.execute(x)) for name, s in schemes.items()},
                repeats=9,
            )
            table.add_row(
                f"2^{n.bit_length() - 1}",
                overhead["offline"],
                overhead["opt-offline"],
                overhead["online"],
                overhead["opt-online"],
            )
        for n_exp in (25, 28):
            preds = {p.scheme: p for p in predict_sequential(2**n_exp)}
            table.add_row(
                f"2^{n_exp} (model)",
                None,
                preds["opt-offline"].overhead_percent,
                None,
                preds["opt-online"].overhead_percent,
            )
        table.add_note("paper: Offline ~55-75%, Opt-Offline ~27%, CFTO-Online ~22%, Opt-Online ~15-20%")
        table.add_note("measured rows use this repository's NumPy FFT substrate; model rows use Section 7 op counts")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    path = save_table(table, "fig7a.txt")
    assert path.exists()

"""Table 4: approximation quality of the round-off threshold estimate.

For inputs drawn from U(-1, 1) and N(0, 1), the paper runs 1000 transforms
of size 2^25 and reports, for the first-part (m-point) and second-part
(k-point) verifications separately:

* the maximum fault-free checksum residual observed (``Max``),
* the Section 8 estimate of the threshold eta (``Est``), and
* the resulting throughput (fraction of fault-free verifications accepted).

The harness runs the same measurement at a configurable size/run count and
writes the four-column table to ``benchmarks/results/table4.txt``.
"""

from __future__ import annotations

import pytest

from _harness import env_int, save_table
from repro.analysis.roundoff import measure_stage1_residuals, measure_stage2_residuals
from repro.utils.reporting import Table


def _size() -> int:
    return env_int("REPRO_BENCH_ROUNDOFF_N", 2**14)


def _runs() -> int:
    return env_int("REPRO_BENCH_ROUNDOFF_RUNS", 20)


@pytest.mark.parametrize("distribution", ["uniform", "normal"])
def test_table4_residual_measurement(benchmark, distribution):
    """Benchmark the residual-collection pass itself (one distribution per row)."""

    study = benchmark.pedantic(
        lambda: measure_stage1_residuals(_size(), runs=3, distribution=distribution, seed=1),
        rounds=1,
        iterations=1,
    )
    assert study.throughput >= 0.99
    benchmark.extra_info.update(study.summary())


def test_table4_roundoff_table(benchmark):
    def run() -> Table:
        n, runs = _size(), _runs()
        table = Table(
            f"Table 4 - round-off error approximation (N=2^{n.bit_length() - 1}, {runs} runs)",
            ["input", "Max 1", "Est 1", "Thput 1", "Max 2", "Est 2", "Thput 2"],
            digits=3,
        )
        for distribution, label in [("uniform", "U(-1,1)"), ("normal", "N(0,1)")]:
            stage1 = measure_stage1_residuals(n, runs=runs, distribution=distribution, seed=7)
            stage2 = measure_stage2_residuals(n, runs=runs, distribution=distribution, seed=7)
            table.add_row(
                label,
                stage1.max_residual,
                stage1.estimated_eta,
                stage1.throughput,
                stage2.max_residual,
                stage2.estimated_eta,
                stage2.throughput,
            )
        table.add_note("paper (N=2^25): Max1 ~1e-8, Est1 ~1.5-2.5e-8, Max2 ~1e-6, Est2 ~4-7e-6, throughput ~100%")
        table.add_note("shape to check: Est >= Max (estimate covers the observed residuals) and throughput ~= 100%")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "table4.txt").exists()

"""Transform-server load benchmark: micro-batched serving vs one-per-execute.

Starts the daemon in-process (:class:`repro.server.app.ServerThread`) twice
per configuration - once with micro-batching on (window 0 = opportunistic
coalescing: concurrent arrivals already queued when the event loop goes
idle share one batch) and once with ``max_batch=1`` (every request runs
alone through ``FTPlan.execute``, the pre-server cost model) - and drives
both with the same closed-loop client threads over keep-alive unix-socket
connections.  Per ``(n, concurrency)`` cell it records:

* ``rps``    - completed requests per second over the whole timed phase;
* ``p50_ms`` / ``p99_ms`` - request latency percentiles across every
  client's samples (micro-batching trades a bounded latency floor - at
  most one window - for throughput; both sides of that trade are
  recorded);
* ``mean_batch`` (batched mode) - mean rows per executed batch, from the
  ``server_transforms`` / ``server_batches`` counter deltas: how much
  coalescing actually happened at that concurrency.

``batched_over_single_rps`` is the headline ratio: how much throughput
micro-batching buys over dispatching each request to its own ``execute``
call.  The win comes from ``execute_many`` amortising plan dispatch,
checksum encoding, and threshold statistics across the rows that coalesce
into one batch; at concurrency 1 there is never a peer to coalesce with
and the ratio sits near 1x by construction.

Machine-readable results land in ``BENCH_serve.json`` at the repository
root (tracked in version control, like ``BENCH_fft_speed.json``); the
human-readable table lands in ``benchmarks/results/serve_load.txt``.

``--check`` turns the script into the CI regression gate: fresh numbers
are compared against the *committed* reference (which is left untouched)
and the run fails when ``batched_over_single_rps`` collapsed by more than
``REPRO_BENCH_CHECK_TOLERANCE`` (default 2.5x) on any cell present in both
runs.  Two absolute floors are enforced on the committed reference (and at
regeneration time, so bad numbers cannot be blessed): the acceptance
criterion that batched serving sustains at least
``BATCHED_MIN_RATIO`` (2x) the single-dispatch requests/sec at
``n >= GATE_N`` (4096) and concurrency >= ``GATE_CONCURRENCY`` (8), and
that no cell's ratio drops below 0.8x (the window must never *cost*
throughput).

``--smoke`` is the CI serve leg: spawn ``python -m repro.cli serve`` as a
real subprocess on a unix socket, assert ``/healthz`` and ``/metrics``
answer, push a small concurrent load through it, then SIGTERM and assert
a clean drained exit (and that the socket file is gone).

Environment knobs: ``REPRO_BENCH_SERVE_SIZES`` (default ``1024 4096``),
``REPRO_BENCH_SERVE_CONCURRENCY`` (default ``1 4 8``),
``REPRO_BENCH_SERVE_REQUESTS`` (default 50: timed requests per client
thread), ``REPRO_BENCH_SERVE_ROUNDS`` (default 3: interleaved
measurement rounds per cell; the best round per mode is reported),
``REPRO_BENCH_SERVE_WINDOW_MS`` (default 0: opportunistic coalescing),
``REPRO_BENCH_SERVE_MAX_BATCH`` (default 32),
``REPRO_BENCH_SERVE_CONFIG`` (default ``opt-online+mem+numpy``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from _harness import env_int, env_int_list, save_table

import repro
from repro import telemetry
from repro.client import Client
from repro.server import ServerThread
from repro.utils.reporting import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"

DEFAULT_SIZES = (1024, 4096)
DEFAULT_CONCURRENCY = (1, 4, 8)
#: The served plan.  The numpy (pocketfft) sub-FFT backend is where
#: batching pays most on this pure-Python + compiled-kernel stack: the
#: scalar path's per-call Python overhead (scheme dispatch, per-vector
#: checksum encodes, threshold statistics) is large relative to one
#: compiled FFT, and ``execute_many`` amortises all of it while pocketfft
#: transforms the whole batch in one call.  The fftlib backend spends its
#: time inside the pure-Python stage programs themselves, which batching
#: cannot amortise - it serves fine, but its batched/single ratio is
#: structurally capped near parity, so it would measure the backend, not
#: the server.
CONFIG = os.environ.get("REPRO_BENCH_SERVE_CONFIG", "opt-online+mem+numpy")

#: ratio keys guarded by ``--check``; True = higher is better.
CHECKED_RATIOS = {"batched_over_single_rps": True}

#: The acceptance floor: micro-batched serving must sustain at least this
#: multiple of the one-request-per-``execute`` throughput once the window
#: has enough concurrent arrivals to fill (enforced on the committed
#: reference and at regeneration time, never on noisy fresh CI numbers).
BATCHED_MIN_RATIO = 2.0
GATE_N = 4096
GATE_CONCURRENCY = 8

#: The window may never *cost* throughput: even at concurrency 1 (where a
#: batch holds one row and the ratio measures pure batcher overhead plus
#: one window of added latency) the ratio must stay near parity.
BATCHED_FLOOR_ANYWHERE = 0.8


def _counter_total(name: str) -> int:
    """Sum of one counter across all label sets (and thread shards)."""

    return sum(
        value for (counter, _labels), value in telemetry.counters().items() if counter == name
    )


#: connections multiplexed per load-generator thread (wrk-style): one
#: thread submits on each of its connections back-to-back, then collects
#: the replies in order.  Python load-generator threads are serialised by
#: the GIL, so one-thread-per-connection would meter arrivals out at the
#: thread-scheduling cadence and measure the generator, not the server;
#: multiplexing lands each thread's requests at the server together, the
#: way ``concurrency`` concurrent requests from real (async or
#: multi-process) clients do.  Both modes are driven identically.
CONNS_PER_THREAD = 4


def _drive(
    address: object,
    n: int,
    concurrency: int,
    requests: int,
    *,
    warmup: int = 2,
) -> Dict[str, float]:
    """Closed-loop load: ``concurrency`` connections x ``requests`` each.

    Connections are multiplexed ``CONNS_PER_THREAD``-per-thread; each
    thread sends its warmup rounds (plan compile, connection setup -
    untimed), parks on a barrier so the timed phase starts simultaneously,
    then repeats submit-all / collect-all rounds.  Each connection has at
    most one request in flight (closed loop); per-request latency runs
    from its own submit to its own reply.  Returns rps over the timed
    phase plus merged latency percentiles.
    """

    rng = np.random.default_rng(20170712 + n)
    x = rng.uniform(-1.0, 1.0, n) + 1j * rng.uniform(-1.0, 1.0, n)
    slots = []
    remaining = concurrency
    while remaining > 0:
        slots.append(min(CONNS_PER_THREAD, remaining))
        remaining -= slots[-1]
    barrier = threading.Barrier(len(slots) + 1)
    latencies: List[List[float]] = [[] for _ in slots]
    errors: List[BaseException] = []

    def worker(slot: int, conns: int) -> None:
        clients = [Client(address) for _ in range(conns)]
        sent = [0.0] * conns
        try:
            for _ in range(warmup):
                for client in clients:
                    client.submit(x, CONFIG)
                for client in clients:
                    client.collect()
            barrier.wait()
            samples = latencies[slot]
            for _ in range(requests):
                for i, client in enumerate(clients):
                    sent[i] = time.perf_counter()
                    client.submit(x, CONFIG)
                for i, client in enumerate(clients):
                    reply = client.collect()
                    samples.append(time.perf_counter() - sent[i])
                    if reply.uncorrectable:
                        raise RuntimeError(
                            f"fault-free row reported uncorrectable: {reply.meta}"
                        )
        except BaseException as exc:  # surfaced after join; a hung client trips the barrier
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass
        finally:
            for client in clients:
                client.close()

    threads = [
        threading.Thread(target=worker, args=(slot, conns))
        for slot, conns in enumerate(slots)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    merged = np.asarray([sample for samples in latencies for sample in samples])
    return {
        "rps": float(concurrency * requests / elapsed),
        "p50_ms": float(np.percentile(merged, 50) * 1e3),
        "p99_ms": float(np.percentile(merged, 99) * 1e3),
    }


def _measure_mode(
    n: int, concurrency: int, requests: int, *, window: float, max_batch: int
) -> Dict[str, float]:
    """One server lifecycle: start, drive, drain; returns the load stats."""

    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    sock = os.path.join(tmp, "serve.sock")
    server = ServerThread(
        port=None, unix_path=sock, window=window, max_batch=max_batch, workers=1
    ).start()
    try:
        transforms_before = _counter_total("server_transforms")
        batches_before = _counter_total("server_batches")
        stats = _drive(server.address, n, concurrency, requests)
        batches = _counter_total("server_batches") - batches_before
        transforms = _counter_total("server_transforms") - transforms_before
        stats["mean_batch"] = float(transforms / batches) if batches else 1.0
        return stats
    finally:
        server.stop()
        if os.path.exists(sock):
            os.unlink(sock)
        os.rmdir(tmp)


def _best_of(rounds: List[Dict[str, float]]) -> Dict[str, float]:
    """The round with the highest throughput.

    Same argument as ``interleaved_best(estimator="min")`` in
    ``_harness.py``: contention noise on a shared box is one-sided - a
    background process can only *steal* CPU from a round, never donate it
    - so each mode's least-disturbed round is the honest estimate, and
    interleaving the modes (round-robin rather than back-to-back blocks)
    keeps a drifting machine from systematically favouring one side.
    """

    return max(rounds, key=lambda stats: stats["rps"])


def run(write: bool = True) -> dict:
    sizes = env_int_list("REPRO_BENCH_SERVE_SIZES", DEFAULT_SIZES)
    concurrency_levels = env_int_list("REPRO_BENCH_SERVE_CONCURRENCY", DEFAULT_CONCURRENCY)
    requests = env_int("REPRO_BENCH_SERVE_REQUESTS", 50)
    rounds = max(1, env_int("REPRO_BENCH_SERVE_ROUNDS", 3))
    window = env_int("REPRO_BENCH_SERVE_WINDOW_MS", 0) / 1000.0
    max_batch = env_int("REPRO_BENCH_SERVE_MAX_BATCH", 32)

    # Warm the process-wide plan cache once so neither mode pays the
    # compile inside its timed phase (the in-process ServerThread shares
    # this cache, exactly like the daemon's --warm flag).
    for n in sizes:
        warm = repro.plan(int(n), CONFIG)
        warm.execute_many(np.zeros((1, warm.n), dtype=np.complex128))

    table = Table(
        "Transform-server load (closed-loop keep-alive clients, unix socket)",
        [
            "n",
            "clients",
            "batched rps",
            "single rps",
            "ratio",
            "mean batch",
            "batched p50/p99 [ms]",
            "single p50/p99 [ms]",
        ],
    )
    results = []
    for n in sizes:
        for concurrency in concurrency_levels:
            batched_rounds: List[Dict[str, float]] = []
            single_rounds: List[Dict[str, float]] = []
            for _ in range(rounds):
                batched_rounds.append(
                    _measure_mode(
                        int(n), int(concurrency), requests,
                        window=window, max_batch=max_batch,
                    )
                )
                single_rounds.append(
                    _measure_mode(
                        int(n), int(concurrency), requests, window=0.0, max_batch=1
                    )
                )
            batched = _best_of(batched_rounds)
            single = _best_of(single_rounds)
            ratio = batched["rps"] / single["rps"]
            results.append(
                {
                    "n": int(n),
                    "concurrency": int(concurrency),
                    "requests_per_client": int(requests),
                    "rounds": rounds,
                    "batched": batched,
                    "single": {k: v for k, v in single.items() if k != "mean_batch"},
                    "batched_over_single_rps": float(ratio),
                }
            )
            table.add_row(
                str(n),
                str(concurrency),
                f"{batched['rps']:.1f}",
                f"{single['rps']:.1f}",
                f"{ratio:.2f}x",
                f"{batched['mean_batch']:.1f}",
                f"{batched['p50_ms']:.2f}/{batched['p99_ms']:.2f}",
                f"{single['p50_ms']:.2f}/{single['p99_ms']:.2f}",
            )

    payload = {
        "benchmark": "bench_serve",
        "description": (
            "closed-loop load against the repro serve daemon over a unix "
            "socket: micro-batched mode (requests grouped per (n, config) "
            "inside the window and executed through FTPlan.execute_many) vs "
            "max_batch=1 (every request dispatched to its own execute call); "
            "rps and latency percentiles per (size, concurrency) cell, "
            "batched_over_single_rps is the throughput the window buys"
        ),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "config": CONFIG,
        "window_ms": window * 1e3,
        "max_batch": max_batch,
        "requests_per_client": requests,
        "results": results,
    }
    if write:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {JSON_PATH}")
    save_table(table, "serve_load.txt")
    return payload


def check(payload: dict) -> None:
    """Sanity: every cell produced positive throughput on both modes."""

    for row in payload["results"]:
        assert row["batched"]["rps"] > 0.0, row
        assert row["single"]["rps"] > 0.0, row
        assert row["batched"]["p50_ms"] <= row["batched"]["p99_ms"], row


def check_batched_floor(rows: list, label: str) -> list:
    """Absolute floor violations for the batching win, as strings.

    The 2x acceptance gate applies where the window can fill (``GATE_N``
    and up, ``GATE_CONCURRENCY`` clients and up); the parity floor applies
    everywhere.  Cells outside the gate region simply do not trip it, so a
    scaled-down CI sweep stays meaningful.
    """

    violations = []
    for row in rows:
        ratio = row.get("batched_over_single_rps")
        if ratio is None:
            continue
        n = int(row["n"])
        concurrency = int(row["concurrency"])
        if n >= GATE_N and concurrency >= GATE_CONCURRENCY and ratio < BATCHED_MIN_RATIO:
            violations.append(
                f"n={n} c={concurrency}: batched_over_single_rps {ratio:.2f} below "
                f"the {BATCHED_MIN_RATIO}x acceptance floor ({label})"
            )
        if ratio < BATCHED_FLOOR_ANYWHERE:
            violations.append(
                f"n={n} c={concurrency}: batched_over_single_rps {ratio:.2f} below "
                f"the {BATCHED_FLOOR_ANYWHERE}x parity floor ({label})"
            )
    return violations


def check_against_reference(payload: dict, reference: dict, tolerance: float) -> list:
    """Compare fresh ratios to the committed reference; return regressions.

    Cells are matched on ``(n, concurrency)``; only cells present in both
    runs are compared (the CI smoke sweep is a subset of the committed
    one).  Absolute rps is deliberately not compared across machines -
    the batched/single ratio of same-process interleaved runs is.
    """

    ref_rows = {(row["n"], row["concurrency"]): row for row in reference.get("results", [])}
    regressions = []
    for row in payload["results"]:
        ref = ref_rows.get((row["n"], row["concurrency"]))
        if ref is None:
            continue
        for key, higher_is_better in CHECKED_RATIOS.items():
            fresh_value = row.get(key)
            ref_value = ref.get(key)
            if fresh_value is None or ref_value is None:
                continue
            if higher_is_better:
                regressed = fresh_value < ref_value / tolerance
            else:
                regressed = fresh_value > ref_value * tolerance
            if regressed:
                regressions.append(
                    f"n={row['n']} c={row['concurrency']}: {key} regressed to "
                    f"{fresh_value:.2f} (recorded {ref_value:.2f}, tolerance {tolerance}x)"
                )
    return regressions


def run_check() -> int:
    """The ``--check`` CI gate: fresh numbers vs the committed JSON."""

    if not JSON_PATH.exists():
        print(f"error: no committed reference at {JSON_PATH}; run without --check first")
        return 2
    reference = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    tolerance = float(os.environ.get("REPRO_BENCH_CHECK_TOLERANCE", "2.5"))
    # Deterministic absolute gate on the committed numbers: a regenerated
    # reference that lost the batching win fails every subsequent CI run.
    violations = check_batched_floor(reference.get("results", []), "committed reference")
    if violations:
        print("\nabsolute serve-benchmark floors FAILED (committed reference):")
        for line in violations:
            print(f"  - {line}")
        return 1
    payload = run(write=False)  # never clobber the reference in check mode
    check(payload)
    compared = [
        (r["n"], r["concurrency"])
        for r in payload["results"]
        if any(
            ref["n"] == r["n"] and ref["concurrency"] == r["concurrency"]
            for ref in reference.get("results", [])
        )
    ]
    regressions = check_against_reference(payload, reference, tolerance)
    if regressions:
        print("\nserve benchmark regression gate FAILED:")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(
        f"\nserve benchmark regression gate passed: cells {compared} within "
        f"{tolerance}x of the committed ratios"
    )
    return 0


def run_smoke() -> int:
    """The CI serve leg: a real ``repro serve`` subprocess end to end."""

    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    sock = os.path.join(tmp, "serve.sock")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix", sock, "--window-ms", "2", "--warm", "256",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60.0
        while not os.path.exists(sock):
            if proc.poll() is not None:
                print(proc.stdout.read() if proc.stdout else "")
                print(f"error: serve exited early with {proc.returncode}")
                return 1
            if time.monotonic() > deadline:
                print("error: serve did not bind its unix socket within 60s")
                return 1
            time.sleep(0.05)

        with Client(f"unix:{sock}") as client:
            health = client.healthz()
            assert health["status"] == "ok", health
            assert any(entry.startswith("unix:") for entry in health["listening"]), health

            stats = _drive(f"unix:{sock}", 256, 2, 8, warmup=1)
            print(f"smoke load: {stats['rps']:.1f} rps, p99 {stats['p99_ms']:.2f} ms")

            rng = np.random.default_rng(7)
            x = rng.uniform(-1.0, 1.0, 256) + 1j * rng.uniform(-1.0, 1.0, 256)
            reply = client.transform(x, CONFIG)
            expected = np.fft.fft(x)  # reprolint: fft-ok - independent oracle for the served spectrum
            assert np.allclose(reply.output, expected), "smoke spectrum mismatch"

            exposition = client.metrics()
            assert exposition.startswith(b"# TYPE repro_"), exposition[:64]
            assert b"repro_server_requests_total" in exposition
            assert b"repro_server_transforms_total" in exposition

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=60.0)
        if proc.returncode != 0:
            print(output)
            print(f"error: serve exited {proc.returncode} after SIGTERM")
            return 1
        if "drained; bye" not in output:
            print(output)
            print("error: serve did not report a graceful drain")
            return 1
        if os.path.exists(sock):
            print("error: serve left its unix socket behind")
            return 1
        print("serve smoke passed: healthz, metrics, load, graceful SIGTERM drain")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if os.path.exists(sock):
            os.unlink(sock)
        os.rmdir(tmp)


def test_bench_serve():
    """Pytest entry point (scaled down): both modes serve, cells are sane."""

    os.environ.setdefault("REPRO_BENCH_SERVE_SIZES", "512")
    os.environ.setdefault("REPRO_BENCH_SERVE_CONCURRENCY", "2")
    os.environ.setdefault("REPRO_BENCH_SERVE_REQUESTS", "10")
    check(run(write=False))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare fresh numbers against the committed BENCH_serve.json "
             "and exit non-zero on a regression (the committed file is not "
             "overwritten)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI serve leg: spawn a real 'repro serve' subprocess on a unix "
             "socket, assert /healthz and /metrics, run a tiny load, SIGTERM, "
             "assert a clean drain",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        raise SystemExit(run_smoke())
    if cli_args.check:
        raise SystemExit(run_check())
    payload = run()
    check(payload)
    violations = check_batched_floor(payload["results"], "fresh run")
    if violations:
        print("\nabsolute serve-benchmark floors FAILED for the regenerated numbers:")
        for line in violations:
            print(f"  - {line}")
        print("do not commit this BENCH_serve.json")
        raise SystemExit(1)
    gate_cells = [
        r for r in payload["results"]
        if r["n"] >= GATE_N and r["concurrency"] >= GATE_CONCURRENCY
    ]
    if gate_cells:
        worst = min(r["batched_over_single_rps"] for r in gate_cells)
        print(f"worst gated batching win (n>={GATE_N}, c>={GATE_CONCURRENCY}): {worst:.2f}x")

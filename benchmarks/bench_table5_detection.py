"""Table 5: minimal magnitude of an injected error that is still detected.

The paper injects an additive error of decreasing magnitude at three
positions - e1: the input right after checksum generation, e2: the input of
the second part, e3: the final output - and reports the smallest magnitude
each scheme still flags.  The offline scheme, whose single threshold must
cover the round-off of the *whole* transform, only notices errors around
1e-2; the online scheme's per-sub-FFT thresholds detect errors five orders
of magnitude smaller.

The harness performs the same decade sweep against the optimized offline and
optimized online (with memory FT) schemes.
"""

from __future__ import annotations

from typing import Dict

import pytest

from _harness import env_int, make_input, plan_for, save_table
from repro.analysis.metrics import minimal_detectable_magnitude
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec
from repro.utils.reporting import Table

#: Fault positions of Table 5.
POSITIONS = {
    "e1": FaultSite.INPUT,          # input, after checksum generation
    "e2": FaultSite.INTERMEDIATE,   # input of the second part
    "e3": FaultSite.OUTPUT,         # final output
}

SCHEMES = {"Offline": "opt-offline+mem", "Online": "opt-online+mem"}


def _size() -> int:
    return env_int("REPRO_BENCH_DETECTION_N", 2**14)


def _detects(scheme, x, site: FaultSite, magnitude: float) -> bool:
    spec = FaultSpec(site=site, element=97, kind=FaultKind.ADD_CONSTANT, magnitude=magnitude)
    injector = FaultInjector(specs=[spec])
    result = scheme.execute(x, injector)
    return bool(result.report.detected)


@pytest.mark.parametrize("scheme_label", list(SCHEMES.keys()))
@pytest.mark.parametrize("position", list(POSITIONS.keys()))
def test_table5_detection_sweep(benchmark, scheme_label, position):
    """Benchmark one (scheme, position) sweep and record its detection limit."""

    n = _size()
    x = make_input(n)
    scheme = plan_for(SCHEMES[scheme_label], n)

    def sweep():
        return minimal_detectable_magnitude(
            lambda mag: _detects(scheme, x, POSITIONS[position], mag),
            magnitudes=[10.0 ** (-d) for d in range(1, 12)],
            label=f"{scheme_label}:{position}",
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert result.minimal_detected is not None, "even 1e-1 errors must be detected"
    benchmark.extra_info.update(
        {"scheme": scheme_label, "position": position, "minimal_detected": result.minimal_detected}
    )


def test_table5_detection_table(benchmark):
    def run() -> Table:
        n = _size()
        x = make_input(n)
        table = Table(
            f"Table 5 - minimal detectable injected-error magnitude (N=2^{n.bit_length() - 1})",
            ["scheme", "e1", "e2", "e3"],
            digits=3,
        )
        limits: Dict[str, Dict[str, float]] = {}
        for scheme_label, scheme_name in SCHEMES.items():
            scheme = plan_for(scheme_name, n)
            limits[scheme_label] = {}
            for position, site in POSITIONS.items():
                sweep = minimal_detectable_magnitude(
                    lambda mag, site=site, scheme=scheme: _detects(scheme, x, site, mag),
                    magnitudes=[10.0 ** (-d) for d in range(1, 12)],
                )
                limits[scheme_label][position] = sweep.minimal_detected
        for scheme_label in SCHEMES:
            table.add_row(scheme_label, *[limits[scheme_label][p] for p in POSITIONS])
        table.add_note("paper: Offline 1e-2 / 1e-2 / 1e-2, Online 1e-7 / 1e-6 / 1e-6")
        table.add_note("shape to check: the online scheme detects errors several orders of magnitude smaller")
        # Shape assertion for the headline claim.
        assert limits["Online"]["e1"] < limits["Offline"]["e1"]
        assert limits["Online"]["e2"] < limits["Offline"]["e2"]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "table5.txt").exists()

"""Figure 8(b): parallel weak scaling (fixed rank count, growing N).

Paper setting: p = 256 ranks, N = 2^31 ... 2^34.  As in Fig. 8(a) the
harness combines cost-model predictions at the paper's sizes with executed
simulated runs at laptop scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import make_input, parallel_ranks, relative_error, save_table
from repro.parallel import ParallelFFT, ParallelFTFFT
from repro.utils.reporting import Table

CONFIGS = ["FFTW", "FT-FFTW", "opt-FFTW", "opt-FT-FFTW"]


def _build(config: str, n: int, ranks: int):
    if config == "FFTW":
        return ParallelFFT(n, ranks)
    if config == "opt-FFTW":
        return ParallelFFT(n, ranks, overlap_twiddle=True)
    if config == "FT-FFTW":
        return ParallelFTFFT(n, ranks, overlap=False)
    return ParallelFTFFT(n, ranks, overlap=True)


@pytest.mark.parametrize("scale", [1, 2, 4])
@pytest.mark.parametrize("config", CONFIGS)
def test_fig8b_simulated_execution(benchmark, config, scale):
    """Executed weak scaling: fixed rank count, local size doubling."""

    ranks = parallel_ranks()[-1]
    n = 2048 * ranks * scale
    x = make_input(n)
    reference = np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
    scheme = _build(config, n, ranks)
    execution = benchmark(scheme.execute, x)
    assert relative_error(reference, execution.output) < 1e-8
    benchmark.extra_info.update({"config": config, "n": n, "virtual_time": execution.virtual_time})


def test_fig8b_weak_scaling_table(benchmark):
    """Predicted virtual times at the paper's scale (p = 256, N = 2^31..2^34)."""

    def run() -> Table:
        ranks = 256
        table = Table(
            "Fig. 8(b) - weak scaling, predicted virtual time (seconds), p=256",
            ["N", *CONFIGS],
            digits=2,
        )
        for exponent in (31, 32, 33, 34):
            n = 2**exponent
            row = [f"2^{exponent}"]
            for config in CONFIGS:
                row.append(_build(config, n, ranks).predict_timeline().elapsed)
            table.add_row(*row)
        table.add_note("paper: FFTW 3.7-35 s band, FT-FFTW above it, opt-FT-FFTW back near opt-FFTW; times roughly double per size step")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert save_table(table, "fig8b.txt").exists()

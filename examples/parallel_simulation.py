#!/usr/bin/env python
"""Simulated-MPI parallel FT-FFT: timeline breakdown and per-rank faults.

Runs the six-step parallel FFT on a simulated communicator in four
configurations (the four bars of the paper's Fig. 8):

* FFTW            - unprotected,
* FT-FFTW         - online ABFT protection, blocking transposes,
* opt-FFTW        - unprotected + twiddle/communication overlap,
* opt-FT-FFTW     - protection + Algorithm 3 overlap,

then injects two memory and two computational faults spread over the ranks
(the Table 2/3 scenario) and shows that the protected transform still
returns the correct spectrum with essentially unchanged virtual time.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.parallel import ParallelFFT, ParallelFTFFT
from repro.simmpi.machine import LAPTOP_LIKE
from repro.utils.reporting import Table

# A low-latency machine model keeps the per-phase differences visible at
# this (deliberately small) problem size; the Fig. 8 benchmarks use the
# TIANHE-2-like model at the paper's sizes instead.
MACHINE = LAPTOP_LIKE
N = 2**14
RANKS = 16


def main() -> None:
    rng = np.random.default_rng(11)
    x = rng.uniform(-1, 1, N) + 1j * rng.uniform(-1, 1, N)
    reference = np.fft.fft(x)

    configurations = {
        "FFTW": ParallelFFT(N, RANKS, machine=MACHINE),
        "FT-FFTW": ParallelFTFFT(N, RANKS, machine=MACHINE, overlap=False),
        "opt-FFTW": ParallelFFT(N, RANKS, machine=MACHINE, overlap_twiddle=True),
        "opt-FT-FFTW": ParallelFTFFT(N, RANKS, machine=MACHINE, overlap=True),
    }

    table = Table(f"Simulated parallel execution (N=2^14, p={RANKS})",
                  ["configuration", "virtual time (s)", "comm bytes/rank", "rel. error"])
    executions = {}
    for name, scheme in configurations.items():
        execution = scheme.execute(x)
        executions[name] = execution
        rel_err = float(np.max(np.abs(execution.output - reference)) / np.max(np.abs(reference)))
        table.add_row(
            name,
            execution.virtual_time,
            execution.communicator.bytes_sent // RANKS,
            rel_err,
        )
    print(table.render())

    print("\nvirtual-time phase breakdown of opt-FT-FFTW:")
    print(executions["opt-FT-FFTW"].timeline.report())

    # ------------------------------------------------------------------
    print("\ninjecting 2 memory + 2 computational faults across the ranks ...")
    injector = (
        FaultInjector()
        .arm_memory(FaultSite.COMM_BLOCK, rank=3, magnitude=25.0)
        .arm_memory(FaultSite.COMM_BLOCK, rank=11, magnitude=13.0)
        .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=5, magnitude=9.0)
        .arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=4.0)
    )
    protected = ParallelFTFFT(N, RANKS, machine=MACHINE, overlap=True)
    execution = protected.execute(x, injector)
    rel_err = float(np.max(np.abs(execution.output - reference)) / np.max(np.abs(reference)))
    print(f"  faults fired            : {injector.fired_count}")
    print(f"  corrections performed   : {execution.report.correction_count}")
    print(f"  blocks repaired in comm : {execution.communicator.corrected_blocks}")
    print(f"  relative output error   : {rel_err:.2e}")
    print(f"  virtual time            : {execution.virtual_time:.4f} s "
          f"(fault-free: {executions['opt-FT-FFTW'].virtual_time:.4f} s)")


if __name__ == "__main__":
    main()

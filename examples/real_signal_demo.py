#!/usr/bin/env python
"""Real-input transforms: protected rfft on a sensor-style signal.

Real workloads (audio, sensors, scientific time series) are the single
biggest scenario family FFTW serves; this demo shows the reproduction's
packed real-input path end to end:

1. spectral analysis of a real sum-of-cosines signal through
   ``repro.plan(n, real=True)`` - the compiled half-complex program, with
   detection/correction on the ``n//2 + 1`` packed layout;
2. a protected round trip (``execute`` then ``inverse``) back to the time
   domain;
3. a miniature fault-injection campaign flipping high bits of the real
   input and of the packed spectrum, Table-6 style.

Equivalent CLI runs::

    repro transform --real -n 4096 --signal tones
    repro inject --real -n 4096 --site output --kind bit-flip --bit 55
"""

from __future__ import annotations

import numpy as np

import repro
from repro.faults.campaign import CoverageCampaign
from repro.faults.models import FaultKind, FaultSite, FaultSpec
from repro.utils.reporting import Table
from repro.utils.rng import RandomSource

N = 2**12
TRIALS = 40
TONES = (N // 16, N // 5)


def spectral_analysis() -> None:
    source = RandomSource(seed=7)
    x = source.real_signal_with_tones(N, tones=TONES, noise=0.02)
    plan = repro.plan(N, real=True)  # opt-online+mem on the packed layout
    print(plan.describe())

    result = plan.execute(x)
    spectrum = result.output
    assert spectrum.shape == (N // 2 + 1,)
    peaks = np.argsort(np.abs(spectrum))[-2:]
    print(f"dominant bins        : {sorted(int(p) for p in peaks)} (expected {sorted(TONES)})")
    err = np.max(np.abs(spectrum - np.fft.rfft(x)))
    print(f"|rfft - numpy.rfft|  : {err:.3e}")

    round_trip = plan.inverse(spectrum)
    print(f"round-trip error     : {np.max(np.abs(round_trip.output - x)):.3e}")
    print(f"errors detected      : {result.report.detected}")


def bitflip_campaign() -> None:
    plan = repro.plan(N, real=True)
    sites = [FaultSite.INPUT, FaultSite.OUTPUT]

    def make_input(trial, rng):
        return rng.uniform(-1.0, 1.0, N)  # real float64 rows

    def make_faults(trial, rng):
        site = sites[trial % len(sites)]
        width = N if site is FaultSite.INPUT else N // 2 + 1
        return [
            FaultSpec(
                site=site,
                kind=FaultKind.BIT_FLIP,
                bit=int(rng.integers(52, 63)),
                element=int(rng.integers(0, width)),
            )
        ]

    def run_trial(x, injector):
        result = plan.execute(x, injector)
        return (
            result.output,
            result.report.detected,
            result.report.corrected,
            result.report.has_uncorrectable,
        )

    campaign = CoverageCampaign(
        make_input=make_input,
        run_trial=run_trial,
        reference=lambda x: np.fft.rfft(x),
        make_faults=make_faults,
        seed=2017,
    )
    result = campaign.run(TRIALS)
    table = Table(
        f"real-input bit-flip campaign (n={N}, {TRIALS} trials, packed layout)",
        ["metric", "value"],
    )
    table.add_row("trials", str(result.trials))
    table.add_row("detection rate", f"{result.detection_rate:.2f}")
    table.add_row("correction rate", f"{result.correction_rate:.2f}")
    table.add_row("coverage @ 1e-8", f"{result.coverage_at(1e-8):.2f}")
    print(table.render())


if __name__ == "__main__":
    spectral_analysis()
    print()
    bitflip_campaign()

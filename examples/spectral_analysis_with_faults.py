#!/usr/bin/env python
"""Domain scenario: spectral analysis of a sensor signal under soft errors.

A typical HPC/DSP workload: find the dominant tones of a long, noisy sensor
recording by looking at the magnitude spectrum.  A soft error that strikes
the FFT silently moves energy to the wrong bins and can create spurious
peaks or bury real ones - the failure mode the paper's introduction
motivates.

The script builds a multi-tone signal, injects a high-bit memory flip into
the transform, and compares three pipelines:

* the unprotected FFT (the corrupted spectrum and the peaks it reports),
* the offline ABFT scheme (detects the error at the end, pays a full
  re-execution),
* the online ABFT scheme (detects the error mid-transform and repairs it by
  recomputing one sub-FFT).
"""

from __future__ import annotations

import numpy as np

import repro
from repro import FaultInjector, FaultSite
from repro.utils.rng import RandomSource


TONES = [311, 1287, 3750, 9000]          # true frequencies (bins)
AMPLITUDES = [1.0, 0.8, 0.6, 0.4]
N = 2**15
NOISE = 0.05


def build_signal() -> np.ndarray:
    source = RandomSource(seed=42)
    t = np.arange(N)
    signal = np.zeros(N, dtype=np.complex128)
    for tone, amplitude in zip(TONES, AMPLITUDES):
        signal += amplitude * np.exp(2j * np.pi * tone * t / N)
    signal += NOISE * source.normal_complex(N)
    return signal


def top_peaks(spectrum: np.ndarray, count: int = 4) -> list[int]:
    magnitude = np.abs(spectrum)
    return sorted(int(i) for i in np.argsort(magnitude)[-count:])


def peak_report(name: str, spectrum: np.ndarray, reference: np.ndarray, report=None) -> None:
    peaks = top_peaks(spectrum)
    rel_err = float(np.max(np.abs(spectrum - reference)) / np.max(np.abs(reference)))
    correct = peaks == sorted(TONES)
    extras = ""
    if report is not None:
        extras = (f"  detected={report.detected} recomputed={report.recompute_count} "
                  f"memory-repairs={report.memory_correction_count}")
    print(f"  {name:<22s} peaks={peaks}  correct={correct}  rel.err={rel_err:.2e}{extras}")


def main() -> None:
    signal = build_signal()
    reference = np.fft.fft(signal)
    print(f"signal: {N} samples, true tones at bins {sorted(TONES)}\n")

    def fresh_injector() -> FaultInjector:
        # One high-bit flip in the intermediate results of the transform -
        # exactly the Table 6 fault model.
        return FaultInjector().arm_bitflip(FaultSite.INTERMEDIATE, bit=60, element=12345)

    print("spectra computed under a single high-bit memory flip:")

    unprotected = repro.plan(N, "fftw").execute(signal, fresh_injector())
    peak_report("unprotected FFTW", unprotected.output, reference)

    offline = repro.plan(N, "opt-offline+mem").execute(signal, fresh_injector())
    peak_report("offline ABFT", offline.output, reference, offline.report)

    online = repro.plan(N, "opt-online+mem").execute(signal, fresh_injector())
    peak_report("online ABFT (FT-FFTW)", online.output, reference, online.report)

    print("\nthe unprotected spectrum is silently wrong (energy leaks across bins);")
    print("both ABFT schemes return the correct spectrum, but the offline scheme")
    print("re-executes the whole transform while the online scheme only recomputes")
    print("the sub-FFT that was hit.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A randomized fault-injection campaign (miniature Table 6).

For each protection level (none / offline ABFT / online ABFT) the campaign
runs many independent transforms, each with one random high-bit flip
injected into the input or output side of the computation, and reports the
distribution of the resulting output error - the paper's fault-coverage
experiment (Section 9.4.3) at laptop scale.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.metrics import error_distribution_row
from repro.faults.campaign import CoverageCampaign
from repro.faults.models import FaultKind, FaultSite, FaultSpec
from repro.utils.reporting import Table

N = 2**12
TRIALS = 60
BOUNDS = (1e-6, 1e-8, 1e-10, 1e-12)
SITES = [FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT]


def run_campaign(scheme_name: str) -> dict:
    scheme = repro.plan(N, scheme_name)

    def make_input(trial, rng):
        return rng.uniform(-1, 1, N) + 1j * rng.uniform(-1, 1, N)

    def make_faults(trial, rng):
        site = SITES[trial % len(SITES)]
        return [
            FaultSpec(
                site=site,
                kind=FaultKind.BIT_FLIP,
                bit=int(rng.integers(52, 63)),
                element=int(rng.integers(0, N)),
            )
        ]

    def run_trial(x, injector):
        result = scheme.execute(x, injector)
        return (
            result.output,
            result.report.detected,
            result.report.corrected,
            result.report.has_uncorrectable,
        )

    campaign = CoverageCampaign(
        make_input=make_input,
        run_trial=run_trial,
        reference=lambda x: np.fft.fft(x),
        make_faults=make_faults,
        seed=2017,
    )
    result = campaign.run(TRIALS)
    row = error_distribution_row(
        [o.relative_error for o in result.outcomes],
        uncorrected=[o.uncorrected for o in result.outcomes],
        bounds=BOUNDS,
    )
    row["detection"] = result.detection_rate
    return row


def main() -> None:
    table = Table(
        f"Fault coverage under one random high-bit flip ({TRIALS} trials, N=2^12)",
        ["scheme", "uncorrected", *[f"err > {b:g}" for b in BOUNDS], "detection rate"],
    )
    for label, scheme in [
        ("No Correction", "fftw"),
        ("Offline ABFT", "opt-offline+mem"),
        ("Online ABFT", "opt-online+mem"),
    ]:
        row = run_campaign(scheme)
        table.add_row(
            label,
            row["uncorrected"],
            *[row[f"> {b:g}"] for b in BOUNDS],
            row["detection"],
        )
    table.add_note("fractions of trials; uncorrected trials count as infinite error")
    table.add_note("paper reference: Table 6 (1000 trials at N=2^25)")
    print(table.render())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Section 7 overhead model vs. measured overheads.

Prints two views of the fault-tolerance cost:

1. the paper's closed-form operation-count model evaluated at the paper's
   own problem sizes (2^25 - 2^28), which reproduces the magnitudes of
   Fig. 7, and
2. measured wall-clock overheads of this repository's Python implementation
   at a laptop-scale size, which reproduces the *ordering* of the schemes.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.perfmodel import (
    communication_overhead_ratio,
    parallel_scheme_ops,
    parallel_space_overhead_ratio,
    predict_sequential,
    sequential_space_overhead,
)
from repro.utils.reporting import Table

MEASURE_N = 2**16
MEASURE_REPEATS = 3
MEASURED_SCHEMES = ["fftw", "offline", "opt-offline", "online", "opt-online",
                    "offline+mem", "opt-offline+mem", "online+mem", "opt-online+mem"]


def model_report() -> None:
    table = Table("Section 7 model: predicted fault-free overhead (% of 5 N log2 N)",
                  ["N", "opt-offline", "opt-offline+mem", "opt-online", "opt-online+mem"])
    for exponent in (25, 26, 27, 28):
        n = 2**exponent
        preds = {p.scheme: p.overhead_percent for p in predict_sequential(n)}
        table.add_row(f"2^{exponent}", preds["opt-offline"], preds["opt-offline+mem"],
                      preds["opt-online"], preds["opt-online+mem"])
    table.add_note("paper Fig. 7 reports ~27%/35% (offline) and ~20%/36% (online) at these sizes")
    print(table.render())

    print()
    local = 2**23
    print("parallel per-rank model (local size 2^23):")
    print(f"  FT-FFTW overhead ops      : {parallel_scheme_ops(local).fault_free / local:.0f} n")
    print(f"  opt-FT-FFTW overhead ops  : {parallel_scheme_ops(local, overlap=True).fault_free / local:.0f} n")
    print(f"  space overhead (p=256)    : {100 * parallel_space_overhead_ratio(256):.2f} %")
    print(f"  comm overhead (p=256)     : {100 * communication_overhead_ratio(local, 256):.4f} %")
    print(f"  sequential extra space    : {sequential_space_overhead(2**26)} complex elements for N=2^26")


def measured_report() -> None:
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, MEASURE_N) + 1j * rng.uniform(-1, 1, MEASURE_N)
    schemes = {name: repro.plan(MEASURE_N, name) for name in MEASURED_SCHEMES}
    for scheme in schemes.values():          # warm up plans and caches
        scheme.execute(x)

    times = {name: [] for name in MEASURED_SCHEMES}
    for _ in range(MEASURE_REPEATS):
        for name, scheme in schemes.items():  # interleave to decorrelate noise
            start = time.perf_counter()
            scheme.execute(x)
            times[name].append(time.perf_counter() - start)

    baseline = min(times["fftw"])
    table = Table(f"Measured overhead of this implementation (N=2^16, best of {MEASURE_REPEATS})",
                  ["scheme", "seconds", "overhead %"])
    for name in MEASURED_SCHEMES:
        best = min(times[name])
        table.add_row(name, best, 100.0 * (best - baseline) / baseline)
    table.add_note("orderings are meaningful; absolute percentages depend on the NumPy backend")
    print(table.render())


def main() -> None:
    model_report()
    print()
    measured_report()


if __name__ == "__main__":
    main()

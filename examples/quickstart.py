#!/usr/bin/env python
"""Quickstart: protected FFTs, fault injection, and recovery reports.

Run with::

    python examples/quickstart.py

The script walks through the public API:

1. create a reusable protected transform (``FaultTolerantFFT``),
2. run it fault-free and check the result against ``numpy.fft``,
3. inject a computational soft error into one sub-FFT and watch the online
   scheme detect and repair it mid-transform,
4. inject a memory bit flip and watch the locating checksums repair the
   exact element,
5. compare the scheme registry entries on the same input.
"""

from __future__ import annotations

import numpy as np

from repro import FaultTolerantFFT, FaultInjector, FaultSite, available_schemes, create_scheme


def relative_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    return float(np.max(np.abs(candidate - reference)) / np.max(np.abs(reference)))


def main() -> None:
    n = 2**14
    rng = np.random.default_rng(7)
    x = rng.uniform(-1.0, 1.0, n) + 1j * rng.uniform(-1.0, 1.0, n)
    reference = np.fft.fft(x)

    # ------------------------------------------------------------------ 1-2
    ft = FaultTolerantFFT(n)  # default: the paper's opt-online scheme + memory FT
    result = ft.forward(x)
    print("fault-free run")
    print(f"  scheme           : {result.scheme}")
    print(f"  relative error   : {relative_error(reference, result.output):.2e}")
    print(f"  errors detected  : {result.report.detected}")

    # ------------------------------------------------------------------ 3
    injector = FaultInjector().arm_computational(
        FaultSite.STAGE1_COMPUTE, index=17, magnitude=42.0
    )
    result = ft.forward(x, injector)
    print("\ncomputational soft error in sub-FFT 17")
    print(f"  faults injected  : {injector.fired_count}")
    print(f"  detected         : {result.report.detected}")
    print(f"  sub-FFTs redone  : {result.report.recompute_count}")
    print(f"  relative error   : {relative_error(reference, result.output):.2e}")

    # ------------------------------------------------------------------ 4
    injector = FaultInjector().arm_bitflip(FaultSite.INTERMEDIATE, bit=58)
    result = ft.forward(x, injector)
    print("\nmemory bit flip in the intermediate array")
    print(f"  memory repairs   : {result.report.memory_correction_count}")
    print(f"  relative error   : {relative_error(reference, result.output):.2e}")

    # ------------------------------------------------------------------ 5
    print("\nscheme comparison on the same faulty run "
          "(computational fault in the first part):")
    print(f"  {'scheme':<18s} {'detected':<9s} {'corrected':<10s} {'rel. error':<12s}")
    for name in available_schemes():
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=5.0)
        res = create_scheme(name, n).execute(x, injector)
        print(
            f"  {name:<18s} {str(res.report.detected):<9s} "
            f"{str(res.report.corrected):<10s} {relative_error(reference, res.output):<12.2e}"
        )

    print("\nNote: the unprotected 'fftw' baseline silently returns a corrupted "
          "spectrum; every ABFT scheme detects the error, and the online schemes "
          "repair it by recomputing a single sqrt(N)-point sub-FFT.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: protected FFT plans, fault injection, batching, and recovery.

Run with::

    python examples/quickstart.py

The script walks through the public plan API:

1. create a cached protected plan (``repro.plan``; the FFTW-style
   plan-once/execute-many entry point),
2. run it fault-free and check the result against ``numpy.fft``,
3. inject a computational soft error into one sub-FFT and watch the online
   scheme detect and repair it mid-transform,
4. inject a memory bit flip and watch the locating checksums repair the
   exact element,
5. run a whole batch of signals through the vectorized ``execute_many``
   path (and on a different FFT backend),
6. compare the scheme configurations on the same input.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import FaultInjector, FaultSite, available_schemes


def relative_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    return float(np.max(np.abs(candidate - reference)) / np.max(np.abs(reference)))


def main() -> None:
    n = 2**14
    rng = np.random.default_rng(7)
    x = rng.uniform(-1.0, 1.0, n) + 1j * rng.uniform(-1.0, 1.0, n)
    reference = np.fft.fft(x)

    # ------------------------------------------------------------------ 1-2
    p = repro.plan(n)  # default: the paper's opt-online scheme + memory FT
    assert repro.plan(n) is p  # plans are cached ("wisdom")
    result = p.execute(x)
    print("fault-free run")
    print(f"  plan             : {p.describe()}")
    print(f"  scheme           : {result.scheme}")
    print(f"  relative error   : {relative_error(reference, result.output):.2e}")
    print(f"  errors detected  : {result.report.detected}")

    # ------------------------------------------------------------------ 3
    injector = FaultInjector().arm_computational(
        FaultSite.STAGE1_COMPUTE, index=17, magnitude=42.0
    )
    result = p.execute(x, injector)
    print("\ncomputational soft error in sub-FFT 17")
    print(f"  faults injected  : {injector.fired_count}")
    print(f"  detected         : {result.report.detected}")
    print(f"  sub-FFTs redone  : {result.report.recompute_count}")
    print(f"  relative error   : {relative_error(reference, result.output):.2e}")

    # ------------------------------------------------------------------ 4
    injector = FaultInjector().arm_bitflip(FaultSite.INTERMEDIATE, bit=58)
    result = p.execute(x, injector)
    print("\nmemory bit flip in the intermediate array")
    print(f"  memory repairs   : {result.report.memory_correction_count}")
    print(f"  relative error   : {relative_error(reference, result.output):.2e}")

    # ------------------------------------------------------------------ 5
    batch = rng.uniform(-1.0, 1.0, (32, n)) + 1j * rng.uniform(-1.0, 1.0, (32, n))
    batch_result = p.execute_many(batch)
    print(f"\nbatched execution ({batch.shape[0]} signals, vectorized protection)")
    print(f"  rows verified    : {batch.shape[0]}")
    print(f"  rows re-protected: {len(batch_result.fallback_rows)}")
    print(f"  relative error   : {relative_error(np.fft.fft(batch, axis=-1), batch_result.output):.2e}")

    fast = repro.plan(n, backend="numpy")  # same protection, pocketfft kernel
    batch_result = fast.execute_many(batch)
    print(f"  numpy backend    : {relative_error(np.fft.fft(batch, axis=-1), batch_result.output):.2e}"
          " (same checksums, compiled sub-FFTs)")

    # ------------------------------------------------------------------ 6
    print("\nscheme comparison on the same faulty run "
          "(computational fault in the first part):")
    print(f"  {'scheme':<18s} {'detected':<9s} {'corrected':<10s} {'rel. error':<12s}")
    for name in available_schemes():
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=5.0)
        res = repro.plan(n, name).execute(x, injector)
        print(
            f"  {name:<18s} {str(res.report.detected):<9s} "
            f"{str(res.report.corrected):<10s} {relative_error(reference, res.output):<12.2e}"
        )

    print("\nNote: the unprotected 'fftw' baseline silently returns a corrupted "
          "spectrum; every ABFT scheme detects the error, and the online schemes "
          "repair it by recomputing a single sqrt(N)-point sub-FFT.")


if __name__ == "__main__":
    main()

"""Rule ``fft-boundary``: ``numpy.fft`` stays behind the backend registry.

Every production FFT in this repository goes through
``repro.fftlib.backends`` so that schemes, plans, the CLI, and the
benchmarks agree on which kernel computed what (and so a registered
third-party backend is a one-line swap).  Direct ``numpy.fft`` use
anywhere else silently bypasses the registry - and, in protected paths,
bypasses the checksum machinery entirely.  Allowed:

* ``src/repro/fftlib/backends.py`` - the one sanctioned call site
  (``NumpyFFTBackend``);
* test code - tests cross-check against ``numpy.fft`` as an oracle.

Benchmarks that want a raw reference spectrum use an explicit
``# reprolint: fft-ok - <why>`` waiver so the exception is visible at the
call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import FileContext, Project, Violation

RULE = "fft-boundary"
WAIVER = "fft-ok"

ALLOWED_FILE = "src/repro/fftlib/backends.py"
NUMPY_ALIASES = frozenset({"np", "numpy"})


def check(ctx: FileContext, project: Project) -> Iterator[Violation]:
    if ctx.matches(ALLOWED_FILE) or ctx.in_tree("tests"):
        return
    for node in ast.walk(ctx.tree):
        label = _boundary_use(node)
        if not label:
            continue
        if ctx.waived(WAIVER, node):
            continue
        yield Violation(
            ctx.rel,
            node.lineno,
            RULE,
            f"{label} outside {ALLOWED_FILE} and tests (route through "
            f"repro.fftlib.backends.get_backend, or waive with "
            f"'# reprolint: {WAIVER} - <why>')",
        )


def _boundary_use(node: ast.AST) -> str:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "numpy.fft" or alias.name.startswith("numpy.fft."):
                return f"import of {alias.name}"
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "numpy.fft" or module.startswith("numpy.fft."):
            return f"import from {module}"
        if module == "numpy" and any(alias.name == "fft" for alias in node.names):
            return "import of numpy.fft"
    elif isinstance(node, ast.Attribute):
        if (
            node.attr == "fft"
            and isinstance(node.value, ast.Name)
            and node.value.id in NUMPY_ALIASES
        ):
            return f"use of {node.value.id}.fft"
    return ""

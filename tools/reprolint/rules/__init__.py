"""The rule registry: one module per repo invariant."""

from __future__ import annotations

from reprolint.rules import boundary, capability, frozen, hotpath, locks

#: scan order is irrelevant; list order is the order of ``--list-rules``
ALL_RULES = [hotpath, locks, frozen, capability, boundary]

__all__ = ["ALL_RULES", "boundary", "capability", "frozen", "hotpath", "locks"]
